/**
 * @file
 * Per-counter bias decomposition — the paper's Figures 5 and 6 and
 * the normalized counts N_bc of its Table 3.
 *
 * For each direction counter c, the substreams incident on c are
 * classified ST / SNT / WB and their lengths normalized by the
 * counter's total traffic. The larger of the ST and SNT shares is
 * the counter's *dominant* class; the smaller is *non-dominant*.
 * A good indexing scheme yields counters with small WB shares
 * (history separates special conditions) AND small non-dominant
 * shares (opposite biases are not mixed) — the two conditions of
 * Section 4.1.
 */

#ifndef BPSIM_ANALYSIS_COUNTER_PROFILE_HH
#define BPSIM_ANALYSIS_COUNTER_PROFILE_HH

#include <vector>

#include "analysis/stream_tracker.hh"

namespace bpsim
{

/** Bias decomposition of one counter's traffic. */
struct CounterBias
{
    std::uint64_t counterId = 0;
    std::uint64_t total = 0;
    std::uint64_t stCount = 0;
    std::uint64_t sntCount = 0;
    std::uint64_t wbCount = 0;

    /** Normalized shares (0..1); 0 for an idle counter. */
    double stShare() const;
    double sntShare() const;
    double wbShare() const;

    /** Share of the more frequent strongly-biased class. */
    double dominantShare() const;

    /** Share of the less frequent strongly-biased class. */
    double nonDominantShare() const;

    /** The dominant class (ST when the counter saw no strongly
     *  biased traffic at all — matching the paper's convention of
     *  always splitting strong traffic into dominant/non-dominant). */
    BiasClass dominantClass() const;
};

/** Whole-table profile plus aggregate areas. */
struct CounterProfile
{
    /** One entry per counter, sorted by ascending WB share (the
     *  paper's Figure 5/6 x-axis ordering). */
    std::vector<CounterBias> counters;

    /** Unweighted mean shares across active counters — the "area"
     *  of each region in Figures 5/6. */
    double meanWbShare = 0.0;
    double meanDominantShare = 0.0;
    double meanNonDominantShare = 0.0;

    /** Traffic-weighted shares (fraction of all dynamic branches). */
    double trafficWbShare = 0.0;
    double trafficDominantShare = 0.0;
    double trafficNonDominantShare = 0.0;

    /** Counters that served at least one branch. */
    std::size_t activeCounters = 0;
};

/**
 * Builds the per-counter profile from tracked streams.
 *
 * @param tracker stream decomposition of a finished run
 * @param numCounters the predictor's directionCounters()
 * @param threshold bias-class threshold (0.9 in the paper)
 */
CounterProfile buildCounterProfile(const StreamTracker &tracker,
                                   std::uint64_t numCounters,
                                   double threshold = 0.9);

} // namespace bpsim

#endif // BPSIM_ANALYSIS_COUNTER_PROFILE_HH
