#include "analysis/bias_class.hh"

namespace bpsim
{

const char *
biasClassName(BiasClass cls)
{
    switch (cls) {
      case BiasClass::StronglyTaken: return "ST";
      case BiasClass::StronglyNotTaken: return "SNT";
      case BiasClass::WeaklyBiased: return "WB";
    }
    return "?";
}

BiasClass
classifyStream(std::uint64_t takenCount, std::uint64_t total,
               double threshold)
{
    if (total == 0)
        return BiasClass::WeaklyBiased;
    // Compare counts against threshold * total rather than fractions
    // against 1 - threshold: the latter misclassifies exact-boundary
    // streams (e.g. 1 taken of 10 at the 90% threshold) because
    // 1.0 - 0.9 is not representable as 0.1 in binary floating point.
    const double cut = threshold * static_cast<double>(total);
    if (static_cast<double>(takenCount) >= cut)
        return BiasClass::StronglyTaken;
    if (static_cast<double>(total - takenCount) >= cut)
        return BiasClass::StronglyNotTaken;
    return BiasClass::WeaklyBiased;
}

} // namespace bpsim
