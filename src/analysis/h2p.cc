#include "analysis/h2p.hh"

#include <algorithm>
#include <ostream>
#include <unordered_set>

#include "util/json.hh"
#include "util/table.hh"

namespace bpsim
{

double
H2PBranch::accuracy() const
{
    if (executions == 0)
        return 0.0;
    return 100.0 *
           static_cast<double>(executions - mispredictions) /
           static_cast<double>(executions);
}

double
H2PReport::coverageOfTop(std::size_t k) const
{
    if (totalMispredictions == 0)
        return 0.0;
    std::uint64_t covered = 0;
    const std::size_t bound = std::min(k, branches.size());
    for (std::size_t i = 0; i < bound; ++i)
        covered += branches[i].mispredictions;
    return 100.0 * static_cast<double>(covered) /
           static_cast<double>(totalMispredictions);
}

H2PReport
buildH2PReport(const SimResult &result, double coverageTarget)
{
    H2PReport report;
    report.predictorName = result.predictorName;
    report.benchmark = result.benchmark;
    report.configText = result.configText;
    report.totalBranches = result.branches;
    report.totalMispredictions = result.mispredictions;
    report.coverageTarget = std::clamp(coverageTarget, 0.0, 1.0);

    report.branches.reserve(result.perBranch.size());
    for (const PerBranchResult &b : result.perBranch) {
        H2PBranch branch;
        branch.pc = b.pc;
        branch.executions = b.executions;
        branch.mispredictions = b.mispredictions;
        branch.takenCount = b.takenCount;
        branch.biasClass = classifyStream(b.takenCount, b.executions);
        if (report.totalMispredictions != 0) {
            branch.missShare =
                100.0 * static_cast<double>(b.mispredictions) /
                static_cast<double>(report.totalMispredictions);
        }
        report.branches.push_back(branch);
    }
    std::sort(report.branches.begin(), report.branches.end(),
              [](const H2PBranch &a, const H2PBranch &b) {
                  if (a.mispredictions != b.mispredictions)
                      return a.mispredictions > b.mispredictions;
                  return a.pc < b.pc;
              });

    // The H2P set: the shortest prefix of the ranking whose
    // mispredictions reach the coverage target. Integer comparison
    // (covered * 1 >= target * total) avoids accumulating rounding.
    const double needed = report.coverageTarget *
                          static_cast<double>(report.totalMispredictions);
    std::uint64_t covered = 0;
    std::size_t count = 0;
    if (report.totalMispredictions != 0) {
        while (count < report.branches.size() &&
               static_cast<double>(covered) < needed) {
            covered += report.branches[count].mispredictions;
            ++count;
        }
    }
    report.h2pCount = count;
    return report;
}

H2PSetComparison
compareH2PSets(const H2PReport &a, const H2PReport &b)
{
    H2PSetComparison cmp;
    cmp.countA = std::min(a.h2pCount, a.branches.size());
    cmp.countB = std::min(b.h2pCount, b.branches.size());
    std::unordered_set<std::uint64_t> inA;
    inA.reserve(cmp.countA);
    for (std::size_t i = 0; i < cmp.countA; ++i)
        inA.insert(a.branches[i].pc);
    for (std::size_t i = 0; i < cmp.countB; ++i)
        cmp.shared += inA.count(b.branches[i].pc);
    const std::size_t unionSize = cmp.countA + cmp.countB - cmp.shared;
    if (unionSize != 0) {
        cmp.jaccard = static_cast<double>(cmp.shared) /
                      static_cast<double>(unionSize);
    }
    return cmp;
}

namespace
{

std::size_t
emittedRows(const H2PReport &report, std::size_t maxRows)
{
    if (maxRows == 0)
        return report.branches.size();
    return std::min(maxRows, report.branches.size());
}

} // namespace

void
writeH2PCsv(std::ostream &os, const H2PReport &report,
            std::size_t maxRows)
{
    os << "rank,pc,executions,mispredictions,taken,accuracy,"
          "missShare,bias,h2p\n";
    const std::size_t rows = emittedRows(report, maxRows);
    for (std::size_t i = 0; i < rows; ++i) {
        const H2PBranch &b = report.branches[i];
        os << (i + 1) << ',' << b.pc << ',' << b.executions << ','
           << b.mispredictions << ',' << b.takenCount << ','
           << TextTable::fixed(b.accuracy(), 4) << ','
           << TextTable::fixed(b.missShare, 4) << ','
           << biasClassName(b.biasClass) << ','
           << (i < report.h2pCount ? 1 : 0) << '\n';
    }
}

void
writeH2PJson(std::ostream &os, const H2PReport &report,
             std::size_t maxRows)
{
    os << "{\"predictor\":" << jsonString(report.predictorName)
       << ",\"benchmark\":" << jsonString(report.benchmark)
       << ",\"config\":" << jsonString(report.configText)
       << ",\"branches\":" << report.totalBranches
       << ",\"mispredictions\":" << report.totalMispredictions
       << ",\"staticBranches\":" << report.staticBranches()
       << ",\"coverageTarget\":" << jsonNumber(report.coverageTarget)
       << ",\"h2pCount\":" << report.h2pCount << ",\"ranking\":[";
    const std::size_t rows = emittedRows(report, maxRows);
    for (std::size_t i = 0; i < rows; ++i) {
        const H2PBranch &b = report.branches[i];
        if (i != 0)
            os << ",";
        os << "{\"pc\":" << b.pc << ",\"executions\":" << b.executions
           << ",\"mispredictions\":" << b.mispredictions
           << ",\"takenCount\":" << b.takenCount
           << ",\"accuracy\":" << jsonNumber(b.accuracy())
           << ",\"missShare\":" << jsonNumber(b.missShare)
           << ",\"bias\":" << jsonString(biasClassName(b.biasClass))
           << "}";
    }
    os << "]}";
}

void
writeH2PTable(std::ostream &os, const H2PReport &report,
              std::size_t rows)
{
    os << report.predictorName;
    if (!report.benchmark.empty())
        os << " on " << report.benchmark;
    os << ": " << TextTable::grouped(report.totalMispredictions)
       << " mispredictions over "
       << TextTable::grouped(report.totalBranches) << " branches; "
       << report.h2pCount << " of " << report.staticBranches()
       << " static branches cover "
       << TextTable::fixed(100.0 * report.coverageTarget, 0)
       << "% of them\n";

    TextTable table;
    table.setColumns({"rank", "pc", "execs", "misses", "acc (%)",
                      "share (%)", "bias"});
    const std::size_t bound = emittedRows(report, rows);
    for (std::size_t i = 0; i < bound; ++i) {
        const H2PBranch &b = report.branches[i];
        table.addRow({std::to_string(i + 1), std::to_string(b.pc),
                      TextTable::grouped(b.executions),
                      TextTable::grouped(b.mispredictions),
                      TextTable::fixed(b.accuracy(), 2),
                      TextTable::fixed(b.missShare, 2),
                      biasClassName(b.biasClass)});
        if (i + 1 == report.h2pCount && i + 1 < bound)
            table.addRule();
    }
    table.print(os);
}

std::optional<SimResult>
parseSimResultJson(const std::string &text, std::string &error)
{
    const std::optional<JsonValue> parsed =
        JsonValue::parse(text, error);
    if (!parsed)
        return std::nullopt;
    if (!parsed->isObject()) {
        error = "result line is not a JSON object";
        return std::nullopt;
    }
    // Campaign payloads wrap the SimResult as {"ok":true,"result":
    // {...}} (campaign/emitters.hh writeResultJson()); accept both
    // the wrapped and the bare form.
    const JsonValue *doc = &*parsed;
    if (const JsonValue *ok = parsed->get("ok")) {
        if (!ok->asBool()) {
            error = "job failed: " + parsed->getString("error");
            return std::nullopt;
        }
        doc = parsed->get("result");
        if (doc == nullptr || !doc->isObject()) {
            error = "ok payload without a result object";
            return std::nullopt;
        }
    }
    SimResult result;
    result.benchmark = doc->getString("benchmark");
    result.configText = doc->getString("config");
    result.predictorName = doc->getString("predictor");
    result.counterBits = doc->getUint("counterBits");
    result.storageBits = doc->getUint("storageBits");
    result.branches = doc->getUint("branches");
    result.mispredictions = doc->getUint("mispredictions");
    result.takenBranches = doc->getUint("takenBranches");
    result.wallNanos = doc->getUint("wallNanos");
    result.fusedLanes =
        static_cast<std::uint32_t>(doc->getUint("fusedLanes"));
    if (const JsonValue *perBranch = doc->get("perBranch")) {
        if (!perBranch->isArray()) {
            error = "perBranch is not an array";
            return std::nullopt;
        }
        result.perBranch.reserve(perBranch->elements().size());
        for (const JsonValue &row : perBranch->elements()) {
            if (!row.isObject()) {
                error = "perBranch entry is not an object";
                return std::nullopt;
            }
            PerBranchResult branch;
            branch.pc = row.getUint("pc");
            branch.executions = row.getUint("executions");
            branch.mispredictions = row.getUint("mispredictions");
            branch.takenCount = row.getUint("takenCount");
            result.perBranch.push_back(branch);
        }
    }
    return result;
}

} // namespace bpsim
