#include "analysis/stream_tracker.hh"

namespace bpsim
{

const StreamStats *
StreamTracker::find(std::uint64_t pc, std::uint64_t counterId) const
{
    const auto it = streams.find(key(pc, counterId));
    return it == streams.end() ? nullptr : &it->second;
}

std::vector<const StreamStats *>
StreamTracker::allStreams() const
{
    std::vector<const StreamStats *> result;
    result.reserve(streams.size());
    for (const auto &[k, stats] : streams)
        result.push_back(&stats);
    return result;
}

std::vector<const StreamStats *>
StreamTracker::streamsOfCounter(std::uint64_t counterId) const
{
    std::vector<const StreamStats *> result;
    for (const auto &[k, stats] : streams) {
        if (stats.counterId == counterId)
            result.push_back(&stats);
    }
    return result;
}

} // namespace bpsim
