#include "analysis/counter_profile.hh"

#include <algorithm>

#include "util/logging.hh"

namespace bpsim
{

double
CounterBias::stShare() const
{
    return total ? static_cast<double>(stCount) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CounterBias::sntShare() const
{
    return total ? static_cast<double>(sntCount) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CounterBias::wbShare() const
{
    return total ? static_cast<double>(wbCount) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CounterBias::dominantShare() const
{
    return std::max(stShare(), sntShare());
}

double
CounterBias::nonDominantShare() const
{
    return std::min(stShare(), sntShare());
}

BiasClass
CounterBias::dominantClass() const
{
    return sntCount > stCount ? BiasClass::StronglyNotTaken
                              : BiasClass::StronglyTaken;
}

CounterProfile
buildCounterProfile(const StreamTracker &tracker,
                    std::uint64_t numCounters, double threshold)
{
    if (numCounters == 0)
        BPSIM_PANIC("counter profile needs a predictor with counters");

    std::vector<CounterBias> bias(static_cast<std::size_t>(numCounters));
    for (std::uint64_t c = 0; c < numCounters; ++c)
        bias[static_cast<std::size_t>(c)].counterId = c;

    for (const StreamStats *stream : tracker.allStreams()) {
        if (stream->counterId >= numCounters)
            BPSIM_PANIC("stream counter id " << stream->counterId
                        << " out of range (" << numCounters
                        << " counters)");
        CounterBias &entry =
            bias[static_cast<std::size_t>(stream->counterId)];
        entry.total += stream->count;
        switch (stream->biasClass(threshold)) {
          case BiasClass::StronglyTaken:
            entry.stCount += stream->count;
            break;
          case BiasClass::StronglyNotTaken:
            entry.sntCount += stream->count;
            break;
          case BiasClass::WeaklyBiased:
            entry.wbCount += stream->count;
            break;
        }
    }

    CounterProfile profile;
    std::uint64_t traffic = 0, traffic_wb = 0, traffic_dom = 0,
                  traffic_nondom = 0;
    for (const CounterBias &entry : bias) {
        if (entry.total == 0)
            continue;
        ++profile.activeCounters;
        profile.meanWbShare += entry.wbShare();
        profile.meanDominantShare += entry.dominantShare();
        profile.meanNonDominantShare += entry.nonDominantShare();
        traffic += entry.total;
        traffic_wb += entry.wbCount;
        traffic_dom += std::max(entry.stCount, entry.sntCount);
        traffic_nondom += std::min(entry.stCount, entry.sntCount);
        profile.counters.push_back(entry);
    }
    if (profile.activeCounters > 0) {
        const double n = static_cast<double>(profile.activeCounters);
        profile.meanWbShare /= n;
        profile.meanDominantShare /= n;
        profile.meanNonDominantShare /= n;
    }
    if (traffic > 0) {
        const double t = static_cast<double>(traffic);
        profile.trafficWbShare = static_cast<double>(traffic_wb) / t;
        profile.trafficDominantShare =
            static_cast<double>(traffic_dom) / t;
        profile.trafficNonDominantShare =
            static_cast<double>(traffic_nondom) / t;
    }

    // Figure 5/6 ordering: counters sorted by WB share.
    std::sort(profile.counters.begin(), profile.counters.end(),
              [](const CounterBias &a, const CounterBias &b) {
                  if (a.wbShare() != b.wbShare())
                      return a.wbShare() < b.wbShare();
                  return a.counterId < b.counterId;
              });
    return profile;
}

} // namespace bpsim
