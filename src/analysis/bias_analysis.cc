#include "analysis/bias_analysis.hh"

#include "util/logging.hh"

namespace bpsim
{

BiasAnalysis::BiasAnalysis(BranchPredictor &predictor, TraceReader &trace,
                           double threshold)
    : predictor(predictor), trace(trace), threshold(threshold)
{
    if (predictor.directionCounters() == 0)
        BPSIM_FATAL("bias analysis requires a predictor that exposes "
                    "direction counters ("
                    << predictor.name() << " exposes none)");
}

void
BiasAnalysis::run()
{
    if (ran)
        return;

    predictor.reset();
    trace.rewind();
    simResult = SimResult{};
    simResult.predictorName = predictor.name();
    simResult.counterBits = predictor.counterBits();
    simResult.storageBits = predictor.storageBits();

    BranchRecord record;
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const PredictionDetail detail = predictor.predictDetailed(record.pc);
        const bool mispredicted = detail.taken != record.taken;
        ++simResult.branches;
        if (record.taken)
            ++simResult.takenBranches;
        if (mispredicted)
            ++simResult.mispredictions;
        if (detail.usesCounter)
            tracker.observe(record.pc, detail.counterId, record.taken,
                            mispredicted);
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
    }
    ran = true;
}

void
BiasAnalysis::ensureRan() const
{
    if (!ran)
        BPSIM_PANIC("BiasAnalysis accessed before run()");
}

CounterProfile
BiasAnalysis::counterProfile() const
{
    ensureRan();
    return buildCounterProfile(tracker, predictor.directionCounters(),
                               threshold);
}

MispredictionBreakdown
BiasAnalysis::breakdown() const
{
    ensureRan();
    MispredictionBreakdown breakdown;
    if (simResult.branches == 0)
        return breakdown;
    std::uint64_t st = 0, snt = 0, wb = 0;
    for (const StreamStats *stream : tracker.allStreams()) {
        switch (stream->biasClass(threshold)) {
          case BiasClass::StronglyTaken:
            st += stream->mispredictions;
            break;
          case BiasClass::StronglyNotTaken:
            snt += stream->mispredictions;
            break;
          case BiasClass::WeaklyBiased:
            wb += stream->mispredictions;
            break;
        }
    }
    const double total = static_cast<double>(simResult.branches);
    breakdown.stPercent = 100.0 * static_cast<double>(st) / total;
    breakdown.sntPercent = 100.0 * static_cast<double>(snt) / total;
    breakdown.wbPercent = 100.0 * static_cast<double>(wb) / total;
    return breakdown;
}

TransitionCounts
BiasAnalysis::countTransitions()
{
    ensureRan();

    // The role of a class at a counter depends on the counter's
    // dominant class; precompute it per counter.
    const std::uint64_t num_counters = predictor.directionCounters();
    std::vector<BiasClass> dominant(
        static_cast<std::size_t>(num_counters), BiasClass::StronglyTaken);
    {
        std::vector<std::uint64_t> st(static_cast<std::size_t>(num_counters),
                                      0);
        std::vector<std::uint64_t> snt(
            static_cast<std::size_t>(num_counters), 0);
        for (const StreamStats *stream : tracker.allStreams()) {
            const auto c = static_cast<std::size_t>(stream->counterId);
            switch (stream->biasClass(threshold)) {
              case BiasClass::StronglyTaken:
                st[c] += stream->count;
                break;
              case BiasClass::StronglyNotTaken:
                snt[c] += stream->count;
                break;
              case BiasClass::WeaklyBiased:
                break;
            }
        }
        for (std::size_t c = 0; c < dominant.size(); ++c) {
            dominant[c] = snt[c] > st[c] ? BiasClass::StronglyNotTaken
                                         : BiasClass::StronglyTaken;
        }
    }

    enum class Role : std::uint8_t { Dominant, NonDominant, Weak, None };
    std::vector<Role> last(static_cast<std::size_t>(num_counters),
                           Role::None);

    auto role_of = [&](BiasClass cls, std::size_t counter) {
        if (cls == BiasClass::WeaklyBiased)
            return Role::Weak;
        return cls == dominant[counter] ? Role::Dominant
                                        : Role::NonDominant;
    };

    // Replay pass: the predictors are deterministic, so a reset +
    // rewind reproduces the exact counter assignment sequence.
    predictor.reset();
    trace.rewind();
    TransitionCounts counts;
    BranchRecord record;
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const PredictionDetail detail = predictor.predictDetailed(record.pc);
        if (detail.usesCounter) {
            const StreamStats *stream =
                tracker.find(record.pc, detail.counterId);
            if (!stream)
                BPSIM_PANIC("replay diverged: unseen stream for pc 0x"
                            << std::hex << record.pc);
            const auto c = static_cast<std::size_t>(detail.counterId);
            const Role role = role_of(stream->biasClass(threshold), c);
            if (last[c] != Role::None && last[c] != role) {
                // A run of last[c]'s class at this counter was broken.
                switch (last[c]) {
                  case Role::Dominant: ++counts.dominant; break;
                  case Role::NonDominant: ++counts.nonDominant; break;
                  case Role::Weak: ++counts.weak; break;
                  case Role::None: break;
                }
            }
            last[c] = role;
        }
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
    }
    return counts;
}

} // namespace bpsim
