/**
 * @file
 * Decomposition of a predictor run into per-(branch, counter)
 * substreams — the s_ij streams of the paper's Section 4.
 *
 * Every dynamic conditional branch is served by one direction
 * counter; the tracker accumulates, for each (static branch i,
 * counter j) pair, the stream length |s_ij|, its taken count, and
 * its mispredictions. Everything in Figures 5-8 and Tables 3-4
 * derives from these streams.
 */

#ifndef BPSIM_ANALYSIS_STREAM_TRACKER_HH
#define BPSIM_ANALYSIS_STREAM_TRACKER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/bias_class.hh"

namespace bpsim
{

/** Accumulated statistics of one substream s_ij. */
struct StreamStats
{
    std::uint64_t pc = 0;
    std::uint64_t counterId = 0;
    std::uint64_t count = 0;
    std::uint64_t takenCount = 0;
    std::uint64_t mispredictions = 0;

    /** Bias class at the given threshold. */
    BiasClass
    biasClass(double threshold = 0.9) const
    {
        return classifyStream(takenCount, count, threshold);
    }
};

/** Accumulates s_ij streams during a simulation. */
class StreamTracker
{
  public:
    StreamTracker() = default;

    /** Records one dynamic branch served by @p counterId. */
    void
    observe(std::uint64_t pc, std::uint64_t counterId, bool taken,
            bool mispredicted)
    {
        StreamStats &s = streams[key(pc, counterId)];
        if (s.count == 0) {
            s.pc = pc;
            s.counterId = counterId;
        }
        ++s.count;
        if (taken)
            ++s.takenCount;
        if (mispredicted)
            ++s.mispredictions;
        ++total;
    }

    /** Number of distinct substreams seen. */
    std::size_t streamCount() const { return streams.size(); }

    /** Total dynamic branches observed. */
    std::uint64_t totalObservations() const { return total; }

    /** The stream for (pc, counterId), or nullptr if never seen. */
    const StreamStats *find(std::uint64_t pc,
                            std::uint64_t counterId) const;

    /** All streams (unordered). */
    std::vector<const StreamStats *> allStreams() const;

    /** Streams incident on one counter. */
    std::vector<const StreamStats *>
    streamsOfCounter(std::uint64_t counterId) const;

  private:
    /**
     * Packs (pc, counterId) into one key. Counter ids are bounded
     * by the predictor's table sizes (< 2^24 in any configuration
     * this project builds); pcs occupy the low ~40 bits of the
     * synthetic code region.
     */
    static std::uint64_t
    key(std::uint64_t pc, std::uint64_t counterId)
    {
        return (pc << 24) ^ counterId;
    }

    std::unordered_map<std::uint64_t, StreamStats> streams;
    std::uint64_t total = 0;
};

} // namespace bpsim

#endif // BPSIM_ANALYSIS_STREAM_TRACKER_HH
