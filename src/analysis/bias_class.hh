/**
 * @file
 * The paper's bias classes (Section 4.1).
 *
 * A stream of branch outcomes is strongly taken (ST) when taken 90%
 * of the time or more, strongly not-taken (SNT) when not-taken 90%
 * or more, and weakly biased (WB) otherwise.
 */

#ifndef BPSIM_ANALYSIS_BIAS_CLASS_HH
#define BPSIM_ANALYSIS_BIAS_CLASS_HH

#include <cstdint>

namespace bpsim
{

/** Bias class of an outcome stream. */
enum class BiasClass : std::uint8_t
{
    StronglyTaken,
    StronglyNotTaken,
    WeaklyBiased,
};

/** Short label: "ST", "SNT" or "WB". */
const char *biasClassName(BiasClass cls);

/**
 * Classifies a stream with @p takenCount taken outcomes out of
 * @p total, using the paper's 90% threshold by default.
 *
 * An empty stream classifies as WeaklyBiased (it carries no bias
 * evidence); callers normally never ask about empty streams.
 */
BiasClass classifyStream(std::uint64_t takenCount, std::uint64_t total,
                         double threshold = 0.9);

} // namespace bpsim

#endif // BPSIM_ANALYSIS_BIAS_CLASS_HH
