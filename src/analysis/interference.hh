/**
 * @file
 * Aliasing-interference taxonomy.
 *
 * Section 4 of the paper classifies *streams*; the companion view
 * (introduced by Michaud, Seznec & Uhlig and by Young, Gloy & Smith,
 * both cited in the paper) classifies individual *aliased lookups*:
 * a dynamic branch whose serving counter was last trained by a
 * different static branch experienced interference, which is
 *
 *  - neutral       the prediction was what this branch's own state
 *                  would have produced anyway,
 *  - destructive   the intruder flipped the prediction from correct
 *                  to incorrect,
 *  - constructive  the intruder flipped it from incorrect to correct.
 *
 * We measure this by shadowing every (static branch, counter) pair
 * with a private 2-bit counter trained only by that branch: the
 * "interference-free" prediction the shared counter is compared to.
 */

#ifndef BPSIM_ANALYSIS_INTERFERENCE_HH
#define BPSIM_ANALYSIS_INTERFERENCE_HH

#include <cstdint>
#include <unordered_map>

#include "predictors/predictor.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/** Counts of lookup-level interference events. */
struct InterferenceStats
{
    /** Lookups whose counter was last written by the same branch. */
    std::uint64_t unaliasedLookups = 0;
    /** Aliased lookups where shared and private agreed. */
    std::uint64_t neutral = 0;
    /** Aliased lookups flipped correct -> incorrect. */
    std::uint64_t destructive = 0;
    /** Aliased lookups flipped incorrect -> correct. */
    std::uint64_t constructive = 0;

    std::uint64_t
    aliasedLookups() const
    {
        return neutral + destructive + constructive;
    }

    std::uint64_t
    totalLookups() const
    {
        return unaliasedLookups + aliasedLookups();
    }

    /** Percentage helpers over all lookups. */
    double aliasedPercent() const;
    double destructivePercent() const;
    double constructivePercent() const;
    double neutralPercent() const;
};

/**
 * Runs @p predictor over @p trace (rewound first) while attributing
 * each counter-served lookup to the taxonomy above.
 *
 * The shadow state costs one 2-bit counter per live (branch,
 * counter) pair; for the table sizes in this project that is a few
 * hundred thousand entries at most.
 *
 * @param predictor a reset predictor exposing direction counters
 * @param trace the trace to measure
 */
InterferenceStats measureInterference(BranchPredictor &predictor,
                                      TraceReader &trace);

} // namespace bpsim

#endif // BPSIM_ANALYSIS_INTERFERENCE_HH
