#include "analysis/interference.hh"

#include "predictors/counter.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace bpsim
{

double
InterferenceStats::aliasedPercent() const
{
    return percent(aliasedLookups(), totalLookups());
}

double
InterferenceStats::destructivePercent() const
{
    return percent(destructive, totalLookups());
}

double
InterferenceStats::constructivePercent() const
{
    return percent(constructive, totalLookups());
}

double
InterferenceStats::neutralPercent() const
{
    return percent(neutral, totalLookups());
}

InterferenceStats
measureInterference(BranchPredictor &predictor, TraceReader &trace)
{
    if (predictor.directionCounters() == 0)
        BPSIM_FATAL("interference analysis requires a predictor that "
                    "exposes direction counters ("
                    << predictor.name() << " exposes none)");

    predictor.reset();
    trace.rewind();

    // Who wrote each counter last (0 = nobody yet).
    std::unordered_map<std::uint64_t, std::uint64_t> last_writer;
    // Interference-free shadow counters per (branch, counter) pair,
    // packed values of 2-bit counters starting weakly-taken.
    std::unordered_map<std::uint64_t, std::uint8_t> shadow;
    const std::uint8_t shadow_init = SaturatingCounter::weaklyTaken(2);

    auto shadow_key = [](std::uint64_t pc, std::uint64_t counter) {
        return (pc << 24) ^ counter;
    };

    InterferenceStats stats;
    BranchRecord record;
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const PredictionDetail detail =
            predictor.predictDetailed(record.pc);
        if (detail.usesCounter) {
            auto [it, inserted] = shadow.emplace(
                shadow_key(record.pc, detail.counterId), shadow_init);
            std::uint8_t &private_counter = it->second;
            const bool private_prediction = private_counter > 1;

            auto writer_it = last_writer.find(detail.counterId);
            const bool aliased = writer_it != last_writer.end() &&
                                 writer_it->second != record.pc;
            if (!aliased) {
                ++stats.unaliasedLookups;
            } else if (detail.taken == private_prediction) {
                ++stats.neutral;
            } else if (detail.taken == record.taken) {
                // The intruder's training flipped this lookup onto
                // the right answer.
                ++stats.constructive;
            } else {
                ++stats.destructive;
            }

            // Train the shadow with this branch's outcome only.
            if (record.taken) {
                if (private_counter < 3)
                    ++private_counter;
            } else {
                if (private_counter > 0)
                    --private_counter;
            }
            last_writer[detail.counterId] = record.pc;
        }
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
    }
    return stats;
}

} // namespace bpsim
