/**
 * @file
 * Driver tying together the Section 4 analyses: it runs a predictor
 * over a trace while decomposing the branch stream into s_ij
 * substreams, then derives
 *
 *  - the per-counter bias profile (Figures 5/6, Table 3),
 *  - the misprediction breakdown by bias class (Figures 7/8),
 *  - the bias-class transition counts (Table 4).
 *
 * The transition count needs the classes — which are only known
 * after the whole run — so it replays the trace a second time
 * against a reset predictor (all predictors here are deterministic,
 * so the replay reproduces the same counter assignments).
 */

#ifndef BPSIM_ANALYSIS_BIAS_ANALYSIS_HH
#define BPSIM_ANALYSIS_BIAS_ANALYSIS_HH

#include "analysis/counter_profile.hh"
#include "analysis/stream_tracker.hh"
#include "sim/simulator.hh"

namespace bpsim
{

/** Misprediction attributed to each bias class, as percentages of
 *  all measured dynamic branches (so the three sum to the scheme's
 *  overall misprediction rate — the paper's Figure 7/8 encoding). */
struct MispredictionBreakdown
{
    double stPercent = 0.0;
    double sntPercent = 0.0;
    double wbPercent = 0.0;

    double
    totalPercent() const
    {
        return stPercent + sntPercent + wbPercent;
    }
};

/** Table 4: how often each class's run at a counter was broken. */
struct TransitionCounts
{
    /** Changes leaving the counter's dominant class. */
    std::uint64_t dominant = 0;
    /** Changes leaving the non-dominant strongly-biased class. */
    std::uint64_t nonDominant = 0;
    /** Changes leaving the weakly-biased class. */
    std::uint64_t weak = 0;

    std::uint64_t
    total() const
    {
        return dominant + nonDominant + weak;
    }
};

/** One-predictor, one-trace Section 4 analysis. */
class BiasAnalysis
{
  public:
    /**
     * @param predictor analyzed predictor; reset before each pass
     * @param trace trace to analyze; rewound before each pass
     * @param threshold bias-class threshold (paper: 0.9)
     */
    BiasAnalysis(BranchPredictor &predictor, TraceReader &trace,
                 double threshold = 0.9);

    /** Executes pass 1 (idempotent). */
    void run();

    /** The substream decomposition (pass 1 must have run). */
    const StreamTracker &streams() const { return tracker; }

    /** Overall accuracy result of pass 1. */
    const SimResult &result() const { return simResult; }

    /** Per-counter bias profile. */
    CounterProfile counterProfile() const;

    /** Misprediction percentages by bias class. */
    MispredictionBreakdown breakdown() const;

    /** Table 4 transition counts (runs the replay pass). */
    TransitionCounts countTransitions();

  private:
    void ensureRan() const;

    BranchPredictor &predictor;
    TraceReader &trace;
    double threshold;
    bool ran = false;
    StreamTracker tracker;
    SimResult simResult;
};

} // namespace bpsim

#endif // BPSIM_ANALYSIS_BIAS_ANALYSIS_HH
