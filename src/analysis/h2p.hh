/**
 * @file
 * Hard-to-predict (H2P) branch analysis over per-branch replay
 * results.
 *
 * A small set of static branches typically concentrates most of a
 * predictor's mispredictions. This module turns the per-branch table
 * a probed replay collects (SimResult::perBranch, sim/probe.hh) into
 * that story: per-branch accuracy annotated with the paper's §4 bias
 * class, the top-K branches ranked by misprediction count, the
 * smallest prefix of that ranking covering an X% share of all
 * mispredictions (the H2P set), and the overlap of two predictors'
 * H2P sets — e.g. whether bi-mode and gshare stumble over the same
 * branches or different ones.
 *
 * Reports are built from in-process SimResults or parsed back from
 * the serialized form (parseSimResultJson()), so the offline drivers
 * and the campaign-service client produce byte-identical tables.
 */

#ifndef BPSIM_ANALYSIS_H2P_HH
#define BPSIM_ANALYSIS_H2P_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bias_class.hh"
#include "sim/simulator.hh"

namespace bpsim
{

/** One static branch in an H2P ranking. */
struct H2PBranch
{
    std::uint64_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t takenCount = 0;
    /** §4 bias class of the branch's measured outcome stream. */
    BiasClass biasClass = BiasClass::WeaklyBiased;
    /** This branch's share of the run's mispredictions, in percent. */
    double missShare = 0.0;

    /** Prediction accuracy on this branch, in percent. */
    double accuracy() const;
};

/** Per-branch misprediction ranking for one predictor-on-trace run. */
struct H2PReport
{
    std::string predictorName;
    std::string benchmark;
    std::string configText;
    /** Aggregate counts of the run the report was built from. */
    std::uint64_t totalBranches = 0;
    std::uint64_t totalMispredictions = 0;
    /** Coverage target the H2P set was cut at (fraction, e.g. 0.9). */
    double coverageTarget = 0.0;
    /** Number of leading branches whose mispredictions first reach
     *  the coverage target (== branches.size() when even the whole
     *  table falls short, 0 when the run mispredicted nothing). */
    std::size_t h2pCount = 0;
    /** Every executed static branch, sorted by descending
     *  misprediction count (ties broken by ascending pc). */
    std::vector<H2PBranch> branches;

    /** Static branch count (all executed branches, not just H2P). */
    std::size_t staticBranches() const { return branches.size(); }

    /** Misprediction share of the first @p k branches, in percent. */
    double coverageOfTop(std::size_t k) const;
};

/**
 * Builds the H2P report for one per-branch result.
 *
 * @param result a run with SimResult::perBranch filled
 *        (SimConfig::trackPerBranch)
 * @param coverageTarget fraction of all mispredictions the H2P set
 *        must cover (clamped to [0, 1]; default 0.9)
 */
H2PReport buildH2PReport(const SimResult &result,
                         double coverageTarget = 0.9);

/** Overlap of two predictors' H2P sets over the same workload. */
struct H2PSetComparison
{
    /** H2P set sizes of the two reports. */
    std::size_t countA = 0;
    std::size_t countB = 0;
    /** Branches in both H2P sets. */
    std::size_t shared = 0;
    /** shared / |union|, the Jaccard index (0 when both empty). */
    double jaccard = 0.0;
};

/**
 * Intersects the H2P sets (the first h2pCount branches) of two
 * reports, normally built from the same benchmark trace so the pcs
 * are comparable.
 */
H2PSetComparison compareH2PSets(const H2PReport &a, const H2PReport &b);

/**
 * Writes the ranking as CSV with a header row:
 * rank,pc,executions,mispredictions,taken,accuracy,missShare,bias,h2p.
 * @p maxRows bounds the emitted rows (0 = all branches).
 */
void writeH2PCsv(std::ostream &os, const H2PReport &report,
                 std::size_t maxRows = 0);

/** Writes the report as one JSON object (ranking bounded the same
 *  way as writeH2PCsv()). */
void writeH2PJson(std::ostream &os, const H2PReport &report,
                  std::size_t maxRows = 0);

/** Renders the top-@p rows of the ranking as an aligned console
 *  table with a summary header line. */
void writeH2PTable(std::ostream &os, const H2PReport &report,
                   std::size_t rows = 20);

/**
 * Parses one serialized SimResult back into a SimResult, including
 * the "perBranch" array when present. Accepts both the bare
 * SimResult::toJson() form and the campaign payload wrapper
 * {"ok":true,"result":{...}} (a failed job's {"ok":false,...}
 * payload parses as an error). Returns std::nullopt and fills
 * @p error on malformed input.
 */
std::optional<SimResult> parseSimResultJson(const std::string &text,
                                            std::string &error);

} // namespace bpsim

#endif // BPSIM_ANALYSIS_H2P_HH
