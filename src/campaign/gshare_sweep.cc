/**
 * @file
 * sweepGshare() — now a campaign grid internally.
 *
 * The sweep is embarrassingly parallel (every history length × trace
 * pair is independent), so it is expressed as a Campaign of
 * `gshare:n=<indexBits>,h=<m>` configs over the given traces and
 * executed on the shared worker pool. The public signature and the
 * result layout are unchanged; per-point averages accumulate in the
 * same benchmark order as the historical serial loop, so results are
 * bit-identical at any worker count.
 */

#include "sim/gshare_sweep.hh"

#include <algorithm>
#include <string>

#include "campaign/campaign.hh"
#include "util/logging.hh"

namespace bpsim
{

const GshareSweepPoint &
GshareSweepResult::best() const
{
    if (points.empty())
        BPSIM_PANIC("empty gshare sweep");
    const auto it = std::min_element(
        points.begin(), points.end(),
        [](const GshareSweepPoint &a, const GshareSweepPoint &b) {
            return a.average < b.average;
        });
    return *it;
}

GshareSweepResult
sweepGshare(unsigned indexBits,
            const std::vector<const MemoryTrace *> &traces,
            unsigned minHistory)
{
    std::vector<BenchmarkTrace> benchmarks;
    benchmarks.reserve(traces.size());
    for (std::size_t b = 0; b < traces.size(); ++b)
        benchmarks.push_back(
            {"trace" + std::to_string(b), traces[b], {}});
    return sweepGshare(indexBits, benchmarks, minHistory);
}

GshareSweepResult
sweepGshare(unsigned indexBits,
            const std::vector<BenchmarkTrace> &benchmarks,
            unsigned minHistory)
{
    if (benchmarks.empty())
        BPSIM_PANIC("gshare sweep needs at least one trace");

    std::vector<std::string> configs;
    configs.reserve(indexBits - minHistory + 1);
    for (unsigned m = minHistory; m <= indexBits; ++m)
        configs.push_back("gshare:n=" + std::to_string(indexBits) +
                          ",h=" + std::to_string(m));

    Campaign campaign;
    campaign.addGrid(configs, benchmarks);
    const std::vector<JobResult> jobs = campaign.run();

    GshareSweepResult result;
    result.indexBits = indexBits;
    std::size_t job = 0;
    for (unsigned m = minHistory; m <= indexBits; ++m) {
        GshareSweepPoint point;
        point.historyBits = m;
        double total = 0.0;
        for (std::size_t b = 0; b < benchmarks.size(); ++b, ++job) {
            if (!jobs[job].ok())
                BPSIM_PANIC("internal gshare config rejected: "
                            << jobs[job].error);
            const double rate = jobs[job].result.mispredictionRate();
            point.perBenchmark.push_back(rate);
            total += rate;
        }
        point.average = total / static_cast<double>(benchmarks.size());
        result.points.push_back(std::move(point));
    }
    return result;
}

} // namespace bpsim
