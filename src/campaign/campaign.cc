#include "campaign/campaign.hh"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "campaign/scheduler.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** 0 = follow the hardware; set from --jobs. */
std::atomic<unsigned> configured_workers{0};

} // namespace

void
setDefaultWorkerCount(unsigned n)
{
    configured_workers.store(n, std::memory_order_relaxed);
}

unsigned
defaultWorkerCount()
{
    const unsigned configured =
        configured_workers.load(std::memory_order_relaxed);
    if (configured != 0)
        return configured;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

Job &
Campaign::addJob(Job job)
{
    job.index = jobList.size();
    jobList.push_back(std::move(job));
    return jobList.back();
}

Job &
Campaign::addJob(std::string configText, const BenchmarkTrace &benchmark,
                 const SimConfig &simConfig)
{
    Job job;
    job.configText = std::move(configText);
    job.benchmark = benchmark.name;
    job.trace = benchmark.trace;
    job.packed = benchmark.packed;
    job.simConfig = simConfig;
    return addJob(std::move(job));
}

void
Campaign::addGrid(const std::vector<std::string> &configs,
                  const std::vector<BenchmarkTrace> &benchmarks,
                  const SimConfig &simConfig)
{
    for (const std::string &config : configs)
        for (const BenchmarkTrace &benchmark : benchmarks)
            addJob(config, benchmark, simConfig);
}

JobResult
runJob(const Job &job)
{
    JobResult result;
    result.index = job.index;
    result.benchmark = job.benchmark;
    result.configText = job.configText;

    if (job.trace == nullptr) {
        result.error = "job has no trace bound";
        return result;
    }
    PredictorResult made = tryMakePredictor(job.configText);
    if (!made.ok()) {
        result.error = std::move(made.error);
        return result;
    }
    auto reader = job.trace->reader();
    result.result = simulateAny(*made.predictor, reader,
                                job.packed.get(), job.simConfig);
    result.result.benchmark = job.benchmark;
    result.result.configText = job.configText;
    return result;
}

std::vector<JobResult>
Campaign::run(unsigned workers, const ProgressFn &progress) const
{
    std::vector<JobResult> results(jobList.size());
    if (jobList.empty())
        return results;

    if (workers == 0)
        workers = defaultWorkerCount();
    if (jobList.size() < workers)
        workers = static_cast<unsigned>(jobList.size());

    // The blocking API is a wrapper over the incremental scheduler:
    // submit everything into a paused queue first, so the fusion
    // sweep sees the whole grid (the same banks the historical
    // up-front grouping planned), then release the pool and drain.
    CampaignScheduler::Options options;
    options.workers = workers;
    options.fuse = fuseJobs;
    options.paused = true;
    CampaignScheduler scheduler(options);

    std::size_t completed = 0;
    bool progress_disabled = false;
    // The scheduler serializes completion callbacks, so the shared
    // captures need no extra locking; drain() below orders every
    // callback's writes before the return.
    const auto on_done = [&](CampaignScheduler::Ticket,
                             JobResult result) {
        // Results land in their job's slot, so the returned ordering
        // never depends on the thread schedule (or on how jobs were
        // batched).
        const std::size_t i = result.index;
        results[i] = std::move(result);
        ++completed;
        // An exception escaping into a worker thread would
        // std::terminate the process; a broken progress hook must
        // not take the campaign down, so swallow and disable it.
        if (progress && !progress_disabled) {
            try {
                progress({completed, jobList.size(), &results[i]});
            } catch (const std::exception &e) {
                progress_disabled = true;
                BPSIM_WARN("campaign progress callback threw ("
                           << e.what()
                           << "); progress reporting disabled");
            } catch (...) {
                progress_disabled = true;
                BPSIM_WARN("campaign progress callback threw; "
                           << "progress reporting disabled");
            }
        }
    };

    for (const Job &job : jobList)
        scheduler.submit(job, on_done);
    scheduler.drain();
    return results;
}

std::vector<BenchmarkTrace>
resolveTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs)
{
    std::vector<BenchmarkTrace> benchmarks;
    benchmarks.reserve(specs.size());
    for (const WorkloadSpec &spec : specs) {
        // Pack once per benchmark (serially, like trace generation);
        // every job on the benchmark then shares both forms through
        // owning handles, so the jobs stay valid even if they outlive
        // this cache.
        benchmarks.push_back({spec.name, cache.handleFor(spec),
                              cache.packedHandleFor(spec)});
    }
    return benchmarks;
}

} // namespace bpsim
