#include "campaign/campaign.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** 0 = follow the hardware; set from --jobs. */
std::atomic<unsigned> configured_workers{0};

} // namespace

void
setDefaultWorkerCount(unsigned n)
{
    configured_workers.store(n, std::memory_order_relaxed);
}

unsigned
defaultWorkerCount()
{
    const unsigned configured =
        configured_workers.load(std::memory_order_relaxed);
    if (configured != 0)
        return configured;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

Job &
Campaign::addJob(Job job)
{
    job.index = jobList.size();
    jobList.push_back(std::move(job));
    return jobList.back();
}

Job &
Campaign::addJob(std::string configText, const BenchmarkTrace &benchmark,
                 const SimConfig &simConfig)
{
    Job job;
    job.configText = std::move(configText);
    job.benchmark = benchmark.name;
    job.trace = benchmark.trace;
    job.packed = benchmark.packed;
    job.simConfig = simConfig;
    return addJob(std::move(job));
}

void
Campaign::addGrid(const std::vector<std::string> &configs,
                  const std::vector<BenchmarkTrace> &benchmarks,
                  const SimConfig &simConfig)
{
    for (const std::string &config : configs)
        for (const BenchmarkTrace &benchmark : benchmarks)
            addJob(config, benchmark, simConfig);
}

JobResult
runJob(const Job &job)
{
    JobResult result;
    result.index = job.index;
    result.benchmark = job.benchmark;
    result.configText = job.configText;

    if (job.trace == nullptr) {
        result.error = "job has no trace bound";
        return result;
    }
    PredictorResult made = tryMakePredictor(job.configText);
    if (!made.ok()) {
        result.error = std::move(made.error);
        return result;
    }
    auto reader = job.trace->reader();
    result.result =
        simulateAny(*made.predictor, reader, job.packed, job.simConfig);
    result.result.benchmark = job.benchmark;
    result.result.configText = job.configText;
    return result;
}

std::vector<JobResult>
Campaign::run(unsigned workers, const ProgressFn &progress) const
{
    std::vector<JobResult> results(jobList.size());
    std::atomic<std::size_t> cursor{0};
    std::mutex lock;
    std::size_t completed = 0;
    bool progress_disabled = false;

    const auto worker_loop = [&]() {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobList.size())
                return;
            JobResult result = runJob(jobList[i]);
            const std::lock_guard<std::mutex> guard(lock);
            // Results land in their job's slot, so the returned
            // ordering never depends on the thread schedule.
            results[i] = std::move(result);
            ++completed;
            // An exception escaping into a worker thread would
            // std::terminate the process; a broken progress hook must
            // not take the campaign down, so swallow and disable it.
            if (progress && !progress_disabled) {
                try {
                    progress({completed, jobList.size(), &results[i]});
                } catch (const std::exception &e) {
                    progress_disabled = true;
                    BPSIM_WARN("campaign progress callback threw ("
                               << e.what()
                               << "); progress reporting disabled");
                } catch (...) {
                    progress_disabled = true;
                    BPSIM_WARN("campaign progress callback threw; "
                               << "progress reporting disabled");
                }
            }
        }
    };

    if (workers == 0)
        workers = defaultWorkerCount();
    if (jobList.size() < workers)
        workers = static_cast<unsigned>(jobList.size());

    if (workers <= 1) {
        worker_loop();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker_loop);
    for (std::thread &thread : pool)
        thread.join();
    return results;
}

std::vector<BenchmarkTrace>
resolveTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs)
{
    std::vector<BenchmarkTrace> benchmarks;
    benchmarks.reserve(specs.size());
    for (const WorkloadSpec &spec : specs) {
        // Pack once per benchmark (serially, like trace generation);
        // every job on the benchmark then shares both forms.
        benchmarks.push_back(
            {spec.name, &cache.traceFor(spec), &cache.packedFor(spec)});
    }
    return benchmarks;
}

} // namespace bpsim
