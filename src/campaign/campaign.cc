#include "campaign/campaign.hh"

#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** 0 = follow the hardware; set from --jobs. */
std::atomic<unsigned> configured_workers{0};

/**
 * One worker-pool work unit: either a single job on the classic
 * per-job path (kind empty) or a fused bank of same-kind jobs over
 * one shared PackedTrace.
 */
struct WorkGroup
{
    /** Job indices, ascending. */
    std::vector<std::size_t> jobs;
    /** Fast-replay kind shared by every job; empty for the per-job
     *  path. */
    std::string kind;
};

/**
 * Upper bound on fused lanes per bank. Groups wider than this split:
 * beyond a point more lanes stop amortizing anything (the trace pass
 * is already shared) and only grow the bank's working set past the
 * cache levels the single-lane tables were sized for, while smaller
 * chunks keep the worker pool fed.
 */
constexpr std::size_t kMaxBankLanes = 32;

/**
 * Partitions jobs into work groups, preserving job order inside each
 * group and ordering groups by first member. Jobs are fusable when
 * they carry a packed trace, their config's kind has a bank kernel,
 * and their SimConfig is bank-compatible (no per-branch tracking;
 * warm-up length is part of the grouping key). Everything else
 * becomes a singleton group on the per-job path.
 */
std::vector<WorkGroup>
planGroups(const std::vector<Job> &jobs, bool fuse)
{
    std::vector<WorkGroup> groups;
    groups.reserve(jobs.size());
    // Grouping key: one bank = one trace × one concrete kind × one
    // warm-up length. (SimConfig currently adds only trackPerBranch,
    // which fusable jobs must have off; a new SimConfig knob that
    // changes replay semantics must join this key.)
    std::map<std::tuple<const PackedTrace *, std::string, std::uint64_t>,
             std::size_t>
        open;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        std::string kind;
        if (fuse && job.packed != nullptr && job.trace != nullptr &&
            !job.simConfig.trackPerBranch) {
            kind = fastReplayKind(job.configText);
        }
        if (kind.empty()) {
            groups.push_back({{i}, {}});
            continue;
        }
        const auto key = std::make_tuple(job.packed, kind,
                                         job.simConfig.warmupBranches);
        const auto it = open.find(key);
        if (it != open.end() &&
            groups[it->second].jobs.size() < kMaxBankLanes) {
            groups[it->second].jobs.push_back(i);
            continue;
        }
        // New group, or the open one is full — start a fresh bank.
        open[key] = groups.size();
        groups.push_back({{i}, std::move(kind)});
    }
    return groups;
}

/**
 * Runs one fused group: constructs every job's predictor, banks the
 * successes through replayKernelBankAny(), and lands construction
 * errors exactly as the per-job path would. Falls back to per-job
 * runs if the bank refuses the group (which grouping should make
 * impossible).
 */
std::vector<JobResult>
runFusedGroup(const std::vector<Job> &all, const WorkGroup &group)
{
    std::vector<JobResult> results(group.jobs.size());
    std::vector<PredictorPtr> owned;
    std::vector<BranchPredictor *> bank;
    std::vector<std::size_t> lane_slot;
    for (std::size_t k = 0; k < group.jobs.size(); ++k) {
        const Job &job = all[group.jobs[k]];
        JobResult &result = results[k];
        result.index = job.index;
        result.benchmark = job.benchmark;
        result.configText = job.configText;
        PredictorResult made = tryMakePredictor(job.configText);
        if (!made.ok()) {
            result.error = std::move(made.error);
            continue;
        }
        bank.push_back(made.predictor.get());
        owned.push_back(std::move(made.predictor));
        lane_slot.push_back(k);
    }

    std::vector<SimResult> sims;
    const Job &first = all[group.jobs.front()];
    if (bank.empty() ||
        !replayKernelBankAny(group.kind, bank, *first.packed,
                             first.simConfig, sims)) {
        if (!bank.empty()) {
            BPSIM_WARN("bank kernel refused fused group of kind '"
                       << group.kind << "'; running jobs singly");
            for (std::size_t k = 0; k < group.jobs.size(); ++k)
                results[k] = runJob(all[group.jobs[k]]);
        }
        return results;
    }

    for (std::size_t lane = 0; lane < sims.size(); ++lane) {
        JobResult &result = results[lane_slot[lane]];
        result.result = std::move(sims[lane]);
        result.result.benchmark = result.benchmark;
        result.result.configText = result.configText;
    }
    return results;
}

} // namespace

void
setDefaultWorkerCount(unsigned n)
{
    configured_workers.store(n, std::memory_order_relaxed);
}

unsigned
defaultWorkerCount()
{
    const unsigned configured =
        configured_workers.load(std::memory_order_relaxed);
    if (configured != 0)
        return configured;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

Job &
Campaign::addJob(Job job)
{
    job.index = jobList.size();
    jobList.push_back(std::move(job));
    return jobList.back();
}

Job &
Campaign::addJob(std::string configText, const BenchmarkTrace &benchmark,
                 const SimConfig &simConfig)
{
    Job job;
    job.configText = std::move(configText);
    job.benchmark = benchmark.name;
    job.trace = benchmark.trace;
    job.packed = benchmark.packed;
    job.simConfig = simConfig;
    return addJob(std::move(job));
}

void
Campaign::addGrid(const std::vector<std::string> &configs,
                  const std::vector<BenchmarkTrace> &benchmarks,
                  const SimConfig &simConfig)
{
    for (const std::string &config : configs)
        for (const BenchmarkTrace &benchmark : benchmarks)
            addJob(config, benchmark, simConfig);
}

JobResult
runJob(const Job &job)
{
    JobResult result;
    result.index = job.index;
    result.benchmark = job.benchmark;
    result.configText = job.configText;

    if (job.trace == nullptr) {
        result.error = "job has no trace bound";
        return result;
    }
    PredictorResult made = tryMakePredictor(job.configText);
    if (!made.ok()) {
        result.error = std::move(made.error);
        return result;
    }
    auto reader = job.trace->reader();
    result.result =
        simulateAny(*made.predictor, reader, job.packed, job.simConfig);
    result.result.benchmark = job.benchmark;
    result.result.configText = job.configText;
    return result;
}

std::vector<JobResult>
Campaign::run(unsigned workers, const ProgressFn &progress) const
{
    const std::vector<WorkGroup> groups = planGroups(jobList, fuseJobs);
    std::vector<JobResult> results(jobList.size());
    std::atomic<std::size_t> cursor{0};
    std::mutex lock;
    std::size_t completed = 0;
    bool progress_disabled = false;

    const auto worker_loop = [&]() {
        for (;;) {
            const std::size_t g =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (g >= groups.size())
                return;
            const WorkGroup &group = groups[g];
            std::vector<JobResult> group_results;
            if (group.kind.empty())
                group_results.push_back(runJob(jobList[group.jobs[0]]));
            else
                group_results = runFusedGroup(jobList, group);

            const std::lock_guard<std::mutex> guard(lock);
            for (std::size_t k = 0; k < group.jobs.size(); ++k) {
                // Results land in their job's slot, so the returned
                // ordering never depends on the thread schedule (or
                // on how jobs were grouped).
                const std::size_t i = group.jobs[k];
                results[i] = std::move(group_results[k]);
                ++completed;
                // An exception escaping into a worker thread would
                // std::terminate the process; a broken progress hook
                // must not take the campaign down, so swallow and
                // disable it.
                if (progress && !progress_disabled) {
                    try {
                        progress(
                            {completed, jobList.size(), &results[i]});
                    } catch (const std::exception &e) {
                        progress_disabled = true;
                        BPSIM_WARN("campaign progress callback threw ("
                                   << e.what()
                                   << "); progress reporting disabled");
                    } catch (...) {
                        progress_disabled = true;
                        BPSIM_WARN("campaign progress callback threw; "
                                   << "progress reporting disabled");
                    }
                }
            }
        }
    };

    if (workers == 0)
        workers = defaultWorkerCount();
    if (groups.size() < workers)
        workers = static_cast<unsigned>(groups.size());

    if (workers <= 1) {
        worker_loop();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker_loop);
    for (std::thread &thread : pool)
        thread.join();
    return results;
}

std::vector<BenchmarkTrace>
resolveTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs)
{
    std::vector<BenchmarkTrace> benchmarks;
    benchmarks.reserve(specs.size());
    for (const WorkloadSpec &spec : specs) {
        // Pack once per benchmark (serially, like trace generation);
        // every job on the benchmark then shares both forms.
        benchmarks.push_back(
            {spec.name, &cache.traceFor(spec), &cache.packedFor(spec)});
    }
    return benchmarks;
}

} // namespace bpsim
