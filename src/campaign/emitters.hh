/**
 * @file
 * Output emitters for campaign results.
 *
 * Two renderings of the same JobResult list:
 *
 *  - writeResultsJson(): a JSON array, one object per job in job
 *    order. Successful jobs serialize their SimResult through
 *    SimResult::toJson() (the single source of that schema) plus an
 *    `"ok":true` marker; failed jobs carry `"ok":false` with the
 *    benchmark/config identity and the error text.
 *  - resultsTable(): an aligned TextTable, one row per job, with
 *    errors rendered inline — the generic tabular view for tools
 *    that do not build a bespoke table.
 */

#ifndef BPSIM_CAMPAIGN_EMITTERS_HH
#define BPSIM_CAMPAIGN_EMITTERS_HH

#include <iosfwd>
#include <vector>

#include "campaign/campaign.hh"
#include "util/table.hh"

namespace bpsim
{

/**
 * Writes @p results as a JSON array in job order. Timing fields
 * (wall time, throughput) are machine-dependent, so they are only
 * emitted when @p withTiming is set; the default output is
 * byte-identical across machines and `--jobs` values.
 */
void writeResultsJson(std::ostream &os,
                      const std::vector<JobResult> &results,
                      bool withTiming = false);

/**
 * Writes the JSON object for one job — exactly the element
 * writeResultsJson() emits at each array position. The campaign
 * service streams these one per result line; a client that joins
 * them back into an array reproduces the offline emitter's bytes.
 */
void writeResultJson(std::ostream &os, const JobResult &result,
                     bool withTiming = false);

/** Formats @p results as one table row per job, errors inline. A
 *  throughput column is appended when @p withTiming is set. */
TextTable resultsTable(const std::vector<JobResult> &results,
                       bool withTiming = false);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_EMITTERS_HH
