#include "campaign/scheduler.hh"

#include <exception>
#include <utility>

#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/**
 * Upper bound on fused lanes per bank. Batches wider than this
 * split: beyond a point more lanes stop amortizing anything (the
 * trace pass is already shared) and only grow the bank's working set
 * past the cache levels the single-lane tables were sized for, while
 * smaller chunks keep the worker pool fed.
 */
constexpr std::size_t kMaxBankLanes = 32;

} // namespace

CampaignScheduler::CampaignScheduler() : CampaignScheduler(Options{}) {}

CampaignScheduler::CampaignScheduler(Options options) : opts(options)
{
    resolvedWorkers = opts.workers;
    if (resolvedWorkers == 0) {
        const unsigned hardware = std::thread::hardware_concurrency();
        resolvedWorkers = hardware == 0 ? 1 : hardware;
    }
    paused = opts.paused;
    pool.reserve(resolvedWorkers);
    for (unsigned t = 0; t < resolvedWorkers; ++t)
        pool.emplace_back([this] { workerLoop(); });
}

CampaignScheduler::~CampaignScheduler()
{
    shutdown();
}

std::optional<CampaignScheduler::Ticket>
CampaignScheduler::admit(Job &&job, CompletionFn &&done, bool blocking)
{
    // Classify for fusion outside the lock (fastReplayKind parses
    // the config text).
    std::string kind;
    if (opts.fuse && job.packed != nullptr && job.trace != nullptr)
        kind = fastReplayKind(job.configText);

    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        if (stopping)
            return std::nullopt;
        if (opts.maxPending == 0 || queue.size() < opts.maxPending)
            break;
        if (!blocking)
            return std::nullopt;
        spaceCv.wait(lock);
    }
    Pending pending;
    const Ticket ticket = nextTicket++;
    pending.ticket = ticket;
    pending.job = std::move(job);
    pending.fuseKind = std::move(kind);
    pending.done = std::move(done);
    queue.push_back(std::move(pending));
    ++counters.submitted;
    workCv.notify_one();
    return ticket;
}

std::optional<CampaignScheduler::Ticket>
CampaignScheduler::submit(Job job, CompletionFn done)
{
    return admit(std::move(job), std::move(done), /*blocking=*/true);
}

std::optional<CampaignScheduler::Ticket>
CampaignScheduler::trySubmit(Job job, CompletionFn done)
{
    return admit(std::move(job), std::move(done), /*blocking=*/false);
}

std::optional<std::vector<CampaignScheduler::Ticket>>
CampaignScheduler::trySubmitAll(std::vector<Job> jobs, CompletionFn done)
{
    std::vector<std::string> kinds(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        if (opts.fuse && job.packed != nullptr && job.trace != nullptr)
            kinds[i] = fastReplayKind(job.configText);
    }

    std::unique_lock<std::mutex> lock(mu);
    if (stopping)
        return std::nullopt;
    if (opts.maxPending != 0 &&
        queue.size() + jobs.size() > opts.maxPending) {
        return std::nullopt;
    }
    std::vector<Ticket> tickets;
    tickets.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Pending pending;
        pending.ticket = nextTicket++;
        pending.job = std::move(jobs[i]);
        pending.fuseKind = std::move(kinds[i]);
        pending.done = done;
        tickets.push_back(pending.ticket);
        queue.push_back(std::move(pending));
        ++counters.submitted;
    }
    workCv.notify_all();
    return tickets;
}

bool
CampaignScheduler::cancel(Ticket ticket)
{
    const std::lock_guard<std::mutex> lock(mu);
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->ticket != ticket)
            continue;
        queue.erase(it);
        ++counters.cancelled;
        spaceCv.notify_all();
        if (queue.empty() && inFlight == 0)
            drainCv.notify_all();
        return true;
    }
    return false;
}

void
CampaignScheduler::pause()
{
    const std::lock_guard<std::mutex> lock(mu);
    paused = true;
}

void
CampaignScheduler::resume()
{
    const std::lock_guard<std::mutex> lock(mu);
    if (!paused)
        return;
    paused = false;
    workCv.notify_all();
}

void
CampaignScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    if (paused) {
        paused = false;
        workCv.notify_all();
    }
    drainCv.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

void
CampaignScheduler::shutdown()
{
    // Exactly one caller performs the joins; concurrent callers
    // block here until it is done (joining an already-joined
    // std::thread throws), then see the empty pool and return.
    const std::lock_guard<std::mutex> shutdownLock(shutdownMu);
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (stopping && pool.empty())
            return;
        stopping = true;
        paused = false;
        workCv.notify_all();
        spaceCv.notify_all();
    }
    // Workers finish the remaining queue before exiting, so joining
    // doubles as the final drain.
    for (std::thread &thread : pool)
        thread.join();
    pool.clear();
    const std::lock_guard<std::mutex> lock(mu);
    drainCv.notify_all();
}

CampaignScheduler::Stats
CampaignScheduler::stats() const
{
    const std::lock_guard<std::mutex> lock(mu);
    Stats snapshot = counters;
    snapshot.pending = queue.size();
    snapshot.inFlight = inFlight;
    return snapshot;
}

std::size_t
CampaignScheduler::pendingJobs() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return queue.size();
}

std::vector<CampaignScheduler::Pending>
CampaignScheduler::takeBatch(std::unique_lock<std::mutex> &lock)
{
    (void)lock; // held by contract; the queue sweep below needs it
    std::vector<Pending> batch;
    batch.push_back(std::move(queue.front()));
    queue.pop_front();
    // The bank key is copied out rather than referenced through
    // batch.front(): the push_backs below may reallocate the batch,
    // which would dangle any reference into it.
    const std::string headKind = batch.front().fuseKind;
    const auto *headPacked = batch.front().job.packed.get();
    const auto headWarmup =
        batch.front().job.simConfig.warmupBranches;
    const auto headTier = batch.front().job.simConfig.kernelTier;
    const bool headPerBranch =
        batch.front().job.simConfig.trackPerBranch;
    if (!headKind.empty()) {
        // Dispatch-time fusion: sweep the pending queue, in order,
        // for jobs sharing the head's bank key. Submitter identity
        // is irrelevant — this is where jobs from different clients
        // merge into one trace pass.
        for (auto it = queue.begin();
             it != queue.end() && batch.size() < kMaxBankLanes;) {
            // kernelTier is part of the bank key: a bank runs on one
            // tier, so jobs forcing different tiers (the tier-matrix
            // tests, A/B timing runs) must not fuse.
            // trackPerBranch is too: the bank probes all lanes or
            // none, so tracked and untracked jobs run separate
            // passes and the untracked ones keep the unprobed
            // (zero-overhead) kernel instantiation.
            if (it->fuseKind == headKind &&
                it->job.packed.get() == headPacked &&
                it->job.simConfig.warmupBranches == headWarmup &&
                it->job.simConfig.kernelTier == headTier &&
                it->job.simConfig.trackPerBranch == headPerBranch) {
                batch.push_back(std::move(*it));
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
    }
    inFlight += batch.size();
    if (batch.size() >= 2)
        ++counters.fusedBanks;
    spaceCv.notify_all();
    return batch;
}

namespace
{

/**
 * Runs one fused batch: constructs every job's predictor, banks the
 * successes through replayKernelBankAny(), and lands construction
 * errors exactly as the per-job path would. Falls back to per-job
 * runs if the bank refuses the batch (which batching should make
 * impossible).
 */
std::vector<JobResult>
runFusedBatch(const std::string &kind, const std::vector<Job *> &jobs);

} // namespace

void
CampaignScheduler::workerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mu);
        workCv.wait(lock, [this] {
            return stopping || (!paused && !queue.empty());
        });
        if (queue.empty()) {
            if (stopping)
                return;
            continue;
        }
        std::vector<Pending> batch = takeBatch(lock);
        lock.unlock();

        std::vector<JobResult> results;
        if (batch.size() == 1 && batch.front().fuseKind.empty()) {
            results.push_back(runJob(batch.front().job));
        } else {
            std::vector<Job *> jobs;
            jobs.reserve(batch.size());
            for (Pending &pending : batch)
                jobs.push_back(&pending.job);
            results = runFusedBatch(batch.front().fuseKind, jobs);
        }

        {
            // One callback at a time, scheduler-wide: completion
            // hooks never race each other (and Campaign::run()'s
            // progress contract rides on this).
            const std::lock_guard<std::mutex> callbacks(callbackMu);
            for (std::size_t k = 0; k < batch.size(); ++k)
                deliver(batch[k], std::move(results[k]));
        }

        lock.lock();
        inFlight -= batch.size();
        counters.completed += batch.size();
        if (queue.empty() && inFlight == 0)
            drainCv.notify_all();
    }
}

void
CampaignScheduler::deliver(const Pending &pending, JobResult result)
{
    if (!pending.done)
        return;
    // A throwing callback fails only its own ticket's delivery. The
    // worker pool, the other lanes of this batch, and every other
    // submitter's stream are unaffected (an escaped exception would
    // std::terminate the process).
    try {
        pending.done(pending.ticket, std::move(result));
    } catch (const std::exception &e) {
        const std::lock_guard<std::mutex> lock(mu);
        ++counters.callbackExceptions;
        BPSIM_WARN("completion callback for ticket "
                   << pending.ticket << " threw (" << e.what()
                   << "); result dropped for that ticket only");
    } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        ++counters.callbackExceptions;
        BPSIM_WARN("completion callback for ticket "
                   << pending.ticket
                   << " threw; result dropped for that ticket only");
    }
}

namespace
{

std::vector<JobResult>
runFusedBatch(const std::string &kind, const std::vector<Job *> &jobs)
{
    std::vector<JobResult> results(jobs.size());
    std::vector<PredictorPtr> owned;
    std::vector<BranchPredictor *> bank;
    std::vector<std::size_t> lane_slot;
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        const Job &job = *jobs[k];
        JobResult &result = results[k];
        result.index = job.index;
        result.benchmark = job.benchmark;
        result.configText = job.configText;
        PredictorResult made = tryMakePredictor(job.configText);
        if (!made.ok()) {
            result.error = std::move(made.error);
            continue;
        }
        bank.push_back(made.predictor.get());
        owned.push_back(std::move(made.predictor));
        lane_slot.push_back(k);
    }

    std::vector<SimResult> sims;
    const Job &first = *jobs.front();
    if (bank.empty() ||
        !replayKernelBankAny(kind, bank, *first.packed, first.simConfig,
                             sims)) {
        if (!bank.empty()) {
            BPSIM_WARN("bank kernel refused fused batch of kind '"
                       << kind << "'; running jobs singly");
            for (std::size_t k = 0; k < jobs.size(); ++k)
                results[k] = runJob(*jobs[k]);
        }
        return results;
    }

    for (std::size_t lane = 0; lane < sims.size(); ++lane) {
        JobResult &result = results[lane_slot[lane]];
        result.result = std::move(sims[lane]);
        result.result.benchmark = result.benchmark;
        result.result.configText = result.configText;
    }
    return results;
}

} // namespace

} // namespace bpsim
