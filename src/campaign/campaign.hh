/**
 * @file
 * The experiment campaign engine.
 *
 * The paper's evaluation — and every figure binary in bench/ — is a
 * grid of independent measurements: predictor configurations ×
 * benchmarks (× size rungs). A Campaign owns that shape once:
 *
 *   1. declare the grid (addGrid()/addJob()); each cell is a Job —
 *      one factory configuration string run over one shared,
 *      immutable, pre-generated MemoryTrace;
 *   2. run() executes the work on a pool of worker threads
 *      (generate once, simulate many: traces are read-only in
 *      simulate(), predictors are constructed per job);
 *   3. results come back as one JobResult per job, *in job order*,
 *      regardless of the thread schedule — runs with different
 *      `--jobs` values are bit-identical.
 *
 * The worker-pool work unit is a *benchmark group*, not a job: jobs
 * that replay the same PackedTrace with the same fast-replay kind
 * (core/factory.hh, fastReplayKind()) and compatible SimConfig are
 * fused into one banked kernel pass (sim/replay.hh,
 * replayKernelBankAny()) that streams the trace once for the whole
 * group. A fig2-style size ladder or gshare.best sweep therefore
 * touches each benchmark's trace once instead of once per rung.
 * Per-branch tracking fuses too (the bank runs with a per-lane
 * probe, sim/probe.hh), though only with jobs that also track — the
 * tracking flag is part of the fusion key. Everything else —
 * heterogeneous kinds, jobs without a packed trace, malformed
 * configs — runs on the classic per-job path. Fusion changes wall time only: per-job counts,
 * errors and emitted JSON are bit-identical to an unfused run
 * (enforced by tests/sim/test_replay_bank.cc), and setFusion(false)
 * forces the per-job path, e.g. to time configurations in
 * isolation.
 *
 * Configuration errors do not kill a campaign: a job whose config
 * string is rejected by tryMakePredictor() completes with
 * JobResult::error set and every other job still runs.
 *
 * run() is a thin blocking wrapper over the incremental
 * CampaignScheduler (campaign/scheduler.hh), which is the primitive
 * long-running callers (the campaign service daemon, src/serve/)
 * build on: submit jobs over time, get per-ticket completion
 * callbacks, drain. The wrapper submits every declared job to a
 * private paused scheduler, resumes it, and drains — bit-identical
 * to the historical in-place pool at any worker count.
 *
 * Emitters for the result list (JSON array, text table) live in
 * campaign/emitters.hh.
 */

#ifndef BPSIM_CAMPAIGN_CAMPAIGN_HH
#define BPSIM_CAMPAIGN_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_handle.hh"
#include "workload/workload_spec.hh"

namespace bpsim
{

/** A benchmark identity paired with its generated trace. */
struct BenchmarkTrace
{
    std::string name;
    /** Trace to replay. Handles constructed from a raw pointer are
     *  borrows (the pointee must outlive every run that uses it);
     *  handles from TraceCache::handleFor()/resolveTraces() share
     *  ownership and make any job lifetime safe. */
    TraceHandle trace = nullptr;
    /** Packed form of the same trace for the devirtualized replay
     *  kernel; null disables the fast path for jobs on this
     *  benchmark. Ownership semantics as @ref trace. */
    PackedTraceHandle packed = nullptr;
};

/** One independent unit of campaign work. */
struct Job
{
    /** Slot in the deterministic result ordering; assigned by
     *  Campaign::addJob() (schedulers key progress on it too). */
    std::size_t index = 0;
    /** Predictor configuration in the factory grammar. */
    std::string configText;
    /** Benchmark name, for reporting. */
    std::string benchmark;
    /** Shared immutable trace to replay (borrowed or owning; see
     *  BenchmarkTrace::trace). */
    TraceHandle trace = nullptr;
    /** Packed trace for the fast replay path; may be null (the job
     *  then always uses the virtual simulate() loop). */
    PackedTraceHandle packed = nullptr;
    /** Per-job simulation options (warm-up, per-branch tracking). */
    SimConfig simConfig;
};

/** Outcome of one job: a SimResult, or a per-job error. */
struct JobResult
{
    std::size_t index = 0;
    std::string benchmark;
    std::string configText;
    /** Empty on success; the config/setup error otherwise. */
    std::string error;
    /** Valid only when ok(). */
    SimResult result;

    bool ok() const { return error.empty(); }
};

/** Snapshot passed to a campaign's progress callback. */
struct CampaignProgress
{
    std::size_t completed = 0;
    std::size_t total = 0;
    /** The result that just finished (owned by the run). */
    const JobResult *latest = nullptr;
};

/**
 * Progress hook; invoked after each job completes, serialized under
 * the campaign's internal lock (callbacks never race each other).
 */
using ProgressFn = std::function<void(const CampaignProgress &)>;

/**
 * Sets the process-wide default worker count used when run() is
 * called with workers == 0. Wired to the bench binaries' `--jobs`
 * flag; 0 means "one worker per hardware thread".
 *
 * Legacy knob: only the blocking Campaign::run(0) compatibility
 * wrapper consults it. New code should pass the worker count
 * explicitly — CampaignScheduler::Options::workers is per-scheduler
 * state, never global (util/args CommonOptions carries the parsed
 * `--jobs` value for exactly that hand-off).
 */
void setDefaultWorkerCount(unsigned n);

/** The resolved default worker count (always >= 1). */
unsigned defaultWorkerCount();

/** A declarative batch of predictor-on-trace simulations. */
class Campaign
{
  public:
    /** Appends one job; its index is assigned here. */
    Job &addJob(Job job);

    /** Convenience: appends one config × benchmark cell. */
    Job &addJob(std::string configText, const BenchmarkTrace &benchmark,
                const SimConfig &simConfig = {});

    /**
     * Expands a grid in config-major order: for each config, one job
     * per benchmark. Callers relying on result positions (sweeps,
     * per-budget tables) index results as
     * `configIndex * benchmarks.size() + benchmarkIndex`.
     */
    void addGrid(const std::vector<std::string> &configs,
                 const std::vector<BenchmarkTrace> &benchmarks,
                 const SimConfig &simConfig = {});

    const std::vector<Job> &jobs() const { return jobList; }
    std::size_t jobCount() const { return jobList.size(); }

    /**
     * Enables or disables benchmark-group fusion (on by default).
     * Results are bit-identical either way; disabling trades the
     * single-pass wall-time win for per-job timing isolation
     * (SimResult::fusedLanes == 0 on every result).
     */
    void setFusion(bool enabled) { fuseJobs = enabled; }
    bool fusionEnabled() const { return fuseJobs; }

    /**
     * Executes every job and returns results indexed by job order.
     *
     * @param workers thread count; 0 uses defaultWorkerCount(), 1
     *                runs inline on the calling thread. The result
     *                list is identical for every value.
     * @param progress optional per-job completion hook
     */
    std::vector<JobResult> run(unsigned workers = 0,
                               const ProgressFn &progress = {}) const;

  private:
    std::vector<Job> jobList;
    bool fuseJobs = true;
};

/** Runs one job synchronously (the worker-loop body). */
JobResult runJob(const Job &job);

/**
 * Generates (serially, through @p cache) the traces of @p specs and
 * pairs each with its benchmark name. Campaigns share the resulting
 * traces across all jobs; the cache must outlive the run.
 */
std::vector<BenchmarkTrace>
resolveTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs);

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_CAMPAIGN_HH
