/**
 * @file
 * The incremental campaign scheduler: an open-ended job source over
 * a persistent worker pool.
 *
 * Campaign::run() serves the declarative, run-to-completion shape —
 * declare a grid, block, get a vector. A long-running service cannot
 * use that API: jobs arrive from many clients over time, results
 * must stream back as they complete, and the worker pool and trace
 * pool must be shared across all of them. CampaignScheduler is that
 * execution engine, split out from the declarative Campaign:
 *
 *   - submit(Job, CompletionFn) -> Ticket admits one job and returns
 *     immediately; the completion callback fires (on a worker
 *     thread) when the job finishes. trySubmit() refuses instead of
 *     blocking when the pending queue is at Options::maxPending —
 *     the admission-control primitive the service daemon's
 *     backpressure is built on. trySubmitAll() admits a whole
 *     campaign atomically (all or nothing), so one client's grid is
 *     never half-accepted.
 *
 *   - Fusion happens at dispatch time, across submitters: when a
 *     worker goes idle it takes the oldest pending job and sweeps
 *     the rest of the queue for jobs with the same fusion key
 *     (packed trace × fast-replay kind × warm-up × kernel tier ×
 *     per-branch tracking), banking up to
 *     kMaxBankLanes of them into one single-pass kernel sweep
 *     (sim/replay.hh). Two clients sweeping the same benchmark
 *     therefore share one trace pass without either knowing the
 *     other exists. Fusion never changes results, only wall time.
 *
 *   - Completion callbacks are serialized (never concurrent with
 *     each other) and exception-isolated: a throwing callback fails
 *     only its own ticket — the worker pool, the other tickets, and
 *     every other client's stream keep going (the throw is counted
 *     in Stats::callbackExceptions and logged).
 *
 *   - cancel(ticket) removes a not-yet-dispatched job (its callback
 *     then never runs) — how the service discards work for a client
 *     that disconnected mid-campaign. drain() blocks until every
 *     accepted job has completed; shutdown() additionally stops
 *     admission and joins the pool (the destructor calls it).
 *
 * Worker count is per-scheduler state (Options::workers), not the
 * process-wide setDefaultWorkerCount() global — two schedulers in
 * one process size their pools independently.
 */

#ifndef BPSIM_CAMPAIGN_SCHEDULER_HH
#define BPSIM_CAMPAIGN_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"

namespace bpsim
{

/** Incremental executor of campaign jobs on a persistent pool. */
class CampaignScheduler
{
  public:
    /** Identifies one accepted job; strictly increasing from 1. */
    using Ticket = std::uint64_t;

    /**
     * Per-job completion hook. Runs on a worker thread, serialized
     * against every other completion callback of this scheduler.
     * The result is passed by value (moved in) so receivers can keep
     * it without copying. Exceptions are swallowed (counted and
     * logged): they fail only this ticket's delivery, never the
     * pool.
     */
    using CompletionFn = std::function<void(Ticket, JobResult)>;

    struct Options
    {
        /** Worker threads; 0 = one per hardware thread. Explicit
         *  per-scheduler state (the setDefaultWorkerCount() global
         *  is only consulted by the legacy Campaign::run(0)). */
        unsigned workers = 0;
        /** Fuse compatible pending jobs into banked sweeps at
         *  dispatch time (results are bit-identical either way). */
        bool fuse = true;
        /** Admission-control bound on the pending (undispatched)
         *  queue; 0 = unbounded. trySubmit() fails and submit()
         *  blocks when the queue is full. */
        std::size_t maxPending = 0;
        /** Start with dispatch paused; submit() still admits jobs.
         *  resume() opens the floodgates — used by Campaign::run()
         *  so its whole grid is visible to the fusion sweep. */
        bool paused = false;
    };

    /** Monotonic counters; a consistent snapshot under the lock. */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0;
        /** Completion callbacks that threw (their tickets only). */
        std::uint64_t callbackExceptions = 0;
        /** Fused banks dispatched (of any width >= 2). */
        std::uint64_t fusedBanks = 0;
        /** Jobs currently queued, not yet dispatched. */
        std::size_t pending = 0;
        /** Jobs currently executing on workers. */
        std::size_t inFlight = 0;
    };

    /** Default options: hardware-sized pool, fusion on, unbounded. */
    CampaignScheduler();
    explicit CampaignScheduler(Options options);

    /** Shuts down: stops admission, drains, joins the pool. */
    ~CampaignScheduler();

    CampaignScheduler(const CampaignScheduler &) = delete;
    CampaignScheduler &operator=(const CampaignScheduler &) = delete;

    /**
     * Admits one job, blocking while the pending queue is full.
     * Returns std::nullopt only when the scheduler is shutting
     * down. @p done may be empty (fire-and-forget).
     */
    std::optional<Ticket> submit(Job job, CompletionFn done);

    /** Non-blocking admission: std::nullopt when the queue is full
     *  or the scheduler is shutting down. */
    std::optional<Ticket> trySubmit(Job job, CompletionFn done);

    /**
     * Atomically admits every job or none (std::nullopt when the
     * batch would overflow maxPending or the scheduler is shutting
     * down). @p done fires once per job. Tickets are returned in
     * job order.
     */
    std::optional<std::vector<Ticket>>
    trySubmitAll(std::vector<Job> jobs, CompletionFn done);

    /**
     * Removes a not-yet-dispatched job; its completion callback will
     * never run. Returns false when the ticket is unknown, already
     * dispatched, or already completed.
     */
    bool cancel(Ticket ticket);

    /** Holds back dispatch; pending jobs stay queued. */
    void pause();

    /** Releases dispatch (also implied by drain()). */
    void resume();

    /**
     * Blocks until every accepted job has completed (or been
     * cancelled) and its callback returned. Resumes a paused
     * scheduler first — draining a paused queue would never finish.
     * New jobs may be submitted while drain() waits; it returns
     * once the queue is empty *at some instant*, i.e. when all work
     * accepted before that instant has finished.
     */
    void drain();

    /**
     * Stops admission (submit calls return std::nullopt from now
     * on), drains remaining work, and joins the worker threads.
     * Idempotent; called by the destructor.
     */
    void shutdown();

    Stats stats() const;

    /** Pending (undispatched) job count — the backpressure signal. */
    std::size_t pendingJobs() const;

    /** The pool size this scheduler resolved at construction. */
    unsigned workerCount() const { return resolvedWorkers; }

  private:
    /** One queued unit: the job plus its delivery state. */
    struct Pending
    {
        Ticket ticket = 0;
        Job job;
        /** Fast-replay kind when the job is fusable; empty pins the
         *  job to the per-job path. Computed once at admission. */
        std::string fuseKind;
        CompletionFn done;
    };

    void workerLoop();
    /** Pops the next dispatch batch; empty when stopping. Called
     *  and returns with @ref mu held. */
    std::vector<Pending> takeBatch(std::unique_lock<std::mutex> &lock);
    void deliver(const Pending &pending, JobResult result);
    std::optional<Ticket> admit(Job &&job, CompletionFn &&done,
                                bool blocking);

    const Options opts;
    unsigned resolvedWorkers = 1;

    mutable std::mutex mu;
    std::condition_variable workCv;   ///< queue non-empty / stop
    std::condition_variable spaceCv;  ///< queue has room again
    std::condition_variable drainCv;  ///< all accepted work finished
    std::deque<Pending> queue;
    std::size_t inFlight = 0;
    bool paused = false;
    bool stopping = false;
    Ticket nextTicket = 1;
    Stats counters;

    /** Serializes completion callbacks; never held with @ref mu. */
    std::mutex callbackMu;

    /** Serializes shutdown(): only one caller joins the pool;
     *  concurrent callers wait for that join to finish. Acquired
     *  before @ref mu, never the other way round. */
    std::mutex shutdownMu;

    std::vector<std::thread> pool;
};

} // namespace bpsim

#endif // BPSIM_CAMPAIGN_SCHEDULER_HH
