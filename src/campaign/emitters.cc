#include "campaign/emitters.hh"

#include <ostream>

#include "util/json.hh"

namespace bpsim
{

void
writeResultJson(std::ostream &os, const JobResult &job, bool withTiming)
{
    if (job.ok()) {
        os << "{\"ok\":true,\"result\":";
        job.result.toJson(os, withTiming);
        os << "}";
    } else {
        os << "{\"ok\":false,\"benchmark\":" << jsonString(job.benchmark)
           << ",\"config\":" << jsonString(job.configText)
           << ",\"error\":" << jsonString(job.error) << "}";
    }
}

void
writeResultsJson(std::ostream &os, const std::vector<JobResult> &results,
                 bool withTiming)
{
    os << "[";
    bool first = true;
    for (const JobResult &job : results) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        writeResultJson(os, job, withTiming);
    }
    os << "\n]\n";
}

TextTable
resultsTable(const std::vector<JobResult> &results, bool withTiming)
{
    TextTable table;
    std::vector<std::string> columns = {"benchmark", "config",
                                        "predictor", "misp %",
                                        "counter KB"};
    if (withTiming)
        columns.push_back("Mbr/s");
    table.setColumns(columns);
    for (const JobResult &job : results) {
        std::vector<std::string> row;
        if (job.ok()) {
            row = {job.benchmark, job.configText,
                   job.result.predictorName,
                   TextTable::fixed(job.result.mispredictionRate(), 2),
                   TextTable::fixed(job.result.counterKBytes(), 3)};
            if (withTiming) {
                row.push_back(TextTable::fixed(
                    job.result.branchesPerSec() / 1e6, 2));
            }
        } else {
            row = {job.benchmark, job.configText,
                   "error: " + job.error, "--", "--"};
            if (withTiming)
                row.push_back("--");
        }
        table.addRow(row);
    }
    return table;
}

} // namespace bpsim
