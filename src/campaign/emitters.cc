#include "campaign/emitters.hh"

#include <ostream>

#include "util/json.hh"

namespace bpsim
{

void
writeResultsJson(std::ostream &os, const std::vector<JobResult> &results)
{
    os << "[";
    bool first = true;
    for (const JobResult &job : results) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        if (job.ok()) {
            os << "{\"ok\":true,\"result\":";
            job.result.toJson(os);
            os << "}";
        } else {
            os << "{\"ok\":false,\"benchmark\":"
               << jsonString(job.benchmark)
               << ",\"config\":" << jsonString(job.configText)
               << ",\"error\":" << jsonString(job.error) << "}";
        }
    }
    os << "\n]\n";
}

TextTable
resultsTable(const std::vector<JobResult> &results)
{
    TextTable table;
    table.setColumns({"benchmark", "config", "predictor", "misp %",
                      "counter KB"});
    for (const JobResult &job : results) {
        if (job.ok()) {
            table.addRow({job.benchmark, job.configText,
                          job.result.predictorName,
                          TextTable::fixed(
                              job.result.mispredictionRate(), 2),
                          TextTable::fixed(job.result.counterKBytes(),
                                           3)});
        } else {
            table.addRow({job.benchmark, job.configText,
                          "error: " + job.error, "--", "--"});
        }
    }
    return table;
}

} // namespace bpsim
