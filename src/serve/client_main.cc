/**
 * @file
 * bpsim_client — command-line driver for the campaign service.
 *
 * Submits one config × benchmark campaign to a running bpsim_serve
 * daemon and prints the reassembled results JSON to stdout. With
 * --offline the same grid runs in-process through Campaign::run()
 * instead — the output is byte-identical by contract, which is
 * exactly what the CI smoke test diffs:
 *
 *   bpsim_client --socket S --id a --configs gshare:n=10,bimode:d=9 \
 *                --benchmarks go,compress --quick        > served.json
 *   bpsim_client --offline  --configs gshare:n=10,bimode:d=9 \
 *                --benchmarks go,compress --quick        > offline.json
 *   diff served.json offline.json
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "serve/client.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "workload/benchmarks.hh"

namespace
{

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream is(text);
    while (std::getline(is, part, ',')) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

int
runOffline(const bpsim::serve::CampaignRequest &request,
           const std::string &traceCacheFlag, unsigned workers)
{
    using namespace bpsim;

    TraceCache cache(resolveTraceStoreDir(traceCacheFlag));
    std::vector<WorkloadSpec> specs;
    for (const std::string &name : request.benchmarks) {
        auto spec = findBenchmark(name);
        if (!spec)
            BPSIM_FATAL("unknown benchmark '" << name << "'");
        specs.push_back(
            scaledBenchmark(std::move(*spec), request.divisor));
    }

    Campaign campaign;
    SimConfig simConfig;
    simConfig.warmupBranches = request.warmup;
    campaign.addGrid(request.configs, resolveTraces(cache, specs),
                     simConfig);
    const std::vector<JobResult> results = campaign.run(workers);
    writeResultsJson(std::cout, results, request.timing);
    std::cout.flush();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpsim;

    ArgParser args("bpsim_client",
                   "Submits one campaign to a bpsim_serve daemon and "
                   "prints the streamed results as the offline JSON "
                   "array (byte-identical to --offline).");
    args.addOption("socket", "/tmp/bpsim-serve.sock",
                   "daemon socket path");
    args.addOption("id", "campaign",
                   "campaign id echoed on every event");
    args.addOption("configs", "",
                   "comma-separated predictor configs "
                   "(e.g. gshare:n=10,bimode:d=9)");
    args.addOption("benchmarks", "",
                   "comma-separated benchmark names (e.g. go,compress)");
    args.addOption("warmup", "0",
                   "warm-up branches excluded from statistics");
    args.addFlag("offline",
                 "run the same grid in-process via Campaign::run() "
                 "instead of the daemon (for diffing)");
    CommonOptions::declare(args);
    if (!args.parse(argc, argv))
        return 0;

    const CommonOptions opts = CommonOptions::fromArgs(args);
    setVerbose(opts.verbose);

    serve::CampaignRequest request;
    request.id = args.get("id");
    request.configs = splitCommas(args.get("configs"));
    request.benchmarks = splitCommas(args.get("benchmarks"));
    request.divisor = opts.quickDivisor();
    request.warmup = args.getUint("warmup");
    request.timing = opts.timing;
    if (request.configs.empty() || request.benchmarks.empty())
        BPSIM_FATAL("--configs and --benchmarks are required");

    if (args.flag("offline"))
        return runOffline(request, opts.traceCache, opts.jobs);

    serve::ServeClient client;
    std::string error;
    if (!client.connect(args.get("socket"), error))
        BPSIM_FATAL("cannot reach daemon: " << error);

    const auto payloads = client.runCampaign(request, error);
    if (!payloads)
        BPSIM_FATAL("campaign failed: " << error);
    std::cout << serve::joinResultsJson(*payloads);
    std::cout.flush();
    return 0;
}
