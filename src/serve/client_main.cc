/**
 * @file
 * bpsim_client — command-line driver for the campaign service.
 *
 * Submits one config × benchmark campaign to a running bpsim_serve
 * daemon and prints the reassembled results JSON to stdout. With
 * --offline the same grid runs in-process through Campaign::run()
 * instead — the output is byte-identical by contract, which is
 * exactly what the CI smoke test diffs:
 *
 *   bpsim_client --socket S --id a --configs gshare:n=10,bimode:d=9 \
 *                --benchmarks go,compress --quick        > served.json
 *   bpsim_client --offline  --configs gshare:n=10,bimode:d=9 \
 *                --benchmarks go,compress --quick        > offline.json
 *   diff served.json offline.json
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/h2p.hh"
#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "serve/client.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

namespace
{

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream is(text);
    while (std::getline(is, part, ',')) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

/** Options of the --h2p rendering mode. */
struct H2POptions
{
    bool enabled = false;
    double coverage = 0.9;
    std::size_t top = 20;
};

/**
 * Renders streamed result payloads as H2P reports — the same tables
 * examples/h2p_report prints, built from the serialized per-branch
 * arrays instead of in-process SimResults.
 */
int
renderH2P(const std::vector<std::string> &payloads,
          const H2POptions &h2p)
{
    using namespace bpsim;

    std::vector<H2PReport> reports;
    for (const std::string &payload : payloads) {
        std::string error;
        const auto result = parseSimResultJson(payload, error);
        if (!result)
            BPSIM_FATAL("bad result payload: " << error);
        if (result->perBranch.empty()) {
            BPSIM_FATAL("result for '"
                        << result->predictorName
                        << "' has no per-branch data (daemon too old "
                           "for perBranch requests?)");
        }
        reports.push_back(buildH2PReport(*result, h2p.coverage));
    }
    for (const H2PReport &report : reports) {
        writeH2PTable(std::cout, report, h2p.top);
        std::cout << "\n";
    }
    if (reports.size() >= 2) {
        TextTable table;
        table.setColumns({"predictor A", "predictor B", "|A|", "|B|",
                          "shared", "Jaccard"});
        for (std::size_t i = 0; i < reports.size(); ++i) {
            for (std::size_t j = i + 1; j < reports.size(); ++j) {
                const H2PSetComparison cmp =
                    compareH2PSets(reports[i], reports[j]);
                table.addRow({reports[i].predictorName,
                              reports[j].predictorName,
                              std::to_string(cmp.countA),
                              std::to_string(cmp.countB),
                              std::to_string(cmp.shared),
                              TextTable::fixed(cmp.jaccard, 3)});
            }
        }
        std::cout << "H2P set overlap (coverage "
                  << TextTable::fixed(100.0 * h2p.coverage, 0)
                  << "%):\n";
        table.print(std::cout);
    }
    std::cout.flush();
    return 0;
}

int
runOffline(const bpsim::serve::CampaignRequest &request,
           const std::string &traceCacheFlag, unsigned workers,
           const H2POptions &h2p)
{
    using namespace bpsim;

    TraceCache cache(resolveTraceStoreDir(traceCacheFlag));
    std::vector<WorkloadSpec> specs;
    for (const std::string &name : request.benchmarks) {
        auto spec = findBenchmark(name);
        if (!spec)
            BPSIM_FATAL("unknown benchmark '" << name << "'");
        specs.push_back(
            scaledBenchmark(std::move(*spec), request.divisor));
    }

    Campaign campaign;
    SimConfig simConfig;
    simConfig.warmupBranches = request.warmup;
    simConfig.trackPerBranch = request.perBranch;
    campaign.addGrid(request.configs, resolveTraces(cache, specs),
                     simConfig);
    const std::vector<JobResult> results = campaign.run(workers);
    if (h2p.enabled) {
        // Round-trip through the serialized form so --offline --h2p
        // is byte-identical to the daemon path by construction.
        std::vector<std::string> payloads;
        payloads.reserve(results.size());
        for (const JobResult &result : results) {
            std::ostringstream os;
            writeResultJson(os, result, request.timing);
            payloads.push_back(os.str());
        }
        return renderH2P(payloads, h2p);
    }
    writeResultsJson(std::cout, results, request.timing);
    std::cout.flush();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpsim;

    ArgParser args("bpsim_client",
                   "Submits one campaign to a bpsim_serve daemon and "
                   "prints the streamed results as the offline JSON "
                   "array (byte-identical to --offline).");
    args.addOption("socket", "/tmp/bpsim-serve.sock",
                   "daemon socket path");
    args.addOption("id", "campaign",
                   "campaign id echoed on every event");
    args.addOption("configs", "",
                   "comma-separated predictor configs "
                   "(e.g. gshare:n=10,bimode:d=9)");
    args.addOption("benchmarks", "",
                   "comma-separated benchmark names (e.g. go,compress)");
    args.addOption("warmup", "0",
                   "warm-up branches excluded from statistics");
    args.addFlag("offline",
                 "run the same grid in-process via Campaign::run() "
                 "instead of the daemon (for diffing)");
    args.addFlag("per-branch",
                 "request per-branch accounting; each payload gains "
                 "the perBranch array");
    args.addFlag("h2p",
                 "render results as hard-to-predict branch reports "
                 "(analysis/h2p.hh) instead of the JSON array; "
                 "implies --per-branch");
    args.addOption("coverage", "90",
                   "--h2p: misprediction share (percent) the H2P set "
                   "covers");
    args.addOption("top", "20", "--h2p: ranking rows per table");
    CommonOptions::declare(args);
    if (!args.parse(argc, argv))
        return 0;

    const CommonOptions opts = CommonOptions::fromArgs(args);
    setVerbose(opts.verbose);

    serve::CampaignRequest request;
    request.id = args.get("id");
    request.configs = splitCommas(args.get("configs"));
    request.benchmarks = splitCommas(args.get("benchmarks"));
    request.divisor = opts.quickDivisor();
    request.warmup = args.getUint("warmup");
    request.timing = opts.timing;
    H2POptions h2p;
    h2p.enabled = args.flag("h2p");
    h2p.coverage = args.getDouble("coverage") / 100.0;
    h2p.top = static_cast<std::size_t>(args.getUint("top"));
    request.perBranch = args.flag("per-branch") || h2p.enabled;
    if (request.configs.empty() || request.benchmarks.empty())
        BPSIM_FATAL("--configs and --benchmarks are required");

    if (args.flag("offline"))
        return runOffline(request, opts.traceCache, opts.jobs, h2p);

    serve::ServeClient client;
    std::string error;
    if (!client.connect(args.get("socket"), error))
        BPSIM_FATAL("cannot reach daemon: " << error);

    const auto payloads = client.runCampaign(request, error);
    if (!payloads)
        BPSIM_FATAL("campaign failed: " << error);
    if (h2p.enabled)
        return renderH2P(*payloads, h2p);
    std::cout << serve::joinResultsJson(*payloads);
    std::cout.flush();
    return 0;
}
