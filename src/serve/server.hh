/**
 * @file
 * The campaign service daemon.
 *
 * One CampaignServer owns the process-wide experiment machinery —
 * a single CampaignScheduler worker pool and a single TraceCache —
 * and serves any number of concurrent clients over a unix-domain
 * socket speaking the JSON-lines protocol (serve/protocol.hh).
 * Because every client's jobs land in the same scheduler, compatible
 * jobs from *different* clients fuse into the same banked replay
 * sweep, and every client's benchmarks come out of the same shared
 * trace pool: two clients sweeping `go` cost one generated trace and
 * (when their grids overlap in fusion key) one trace pass.
 *
 * Per-session threading: a reader thread parses request lines and
 * submits; scheduler completion callbacks render and write result
 * events. A per-session write mutex serializes the two, and is held
 * across admission so the "accepted" event always precedes the first
 * result. Per-campaign results are re-ordered into index order
 * before emission (completion order is a thread-schedule accident).
 *
 * Robustness policy:
 *   - malformed lines get an error/rejected event; the connection
 *     and the daemon live on;
 *   - admission is all-or-nothing per campaign
 *     (CampaignScheduler::trySubmitAll) and bounded by the
 *     scheduler's maxPending — an overloaded daemon rejects loudly
 *     instead of buffering without bound;
 *   - a client that disconnects mid-campaign has its undispatched
 *     jobs cancelled and its in-flight results dropped (the session
 *     is referenced weakly from callbacks); nobody else notices;
 *   - a write failure marks only that session dead — including a
 *     send timeout (Options::sendTimeoutMs) against a client that
 *     stopped reading, so one full socket buffer cannot stall the
 *     serialized result-delivery path everyone shares;
 *   - stop() drains gracefully: new campaigns are rejected, accepted
 *     ones finish and stream out, then sessions are closed.
 */

#ifndef BPSIM_SERVE_SERVER_HH
#define BPSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/scheduler.hh"
#include "serve/protocol.hh"
#include "sim/trace_cache.hh"
#include "workload/workload_spec.hh"

namespace bpsim::serve
{

/** Maps a benchmark name to its workload spec; nullopt = unknown. */
using ResolveBenchmarkFn =
    std::function<std::optional<WorkloadSpec>(const std::string &)>;

/** The campaign service daemon (one per process). */
class CampaignServer
{
  public:
    struct Options
    {
        /** Filesystem path of the unix-domain listening socket. */
        std::string socketPath;
        /** Scheduler worker threads; 0 = one per hardware thread. */
        unsigned workers = 0;
        /** Cross-client banked fusion (results identical either way). */
        bool fuse = true;
        /** Scheduler admission bound; campaigns that would overflow
         *  it are rejected whole. 0 = unbounded. */
        std::size_t maxPending = 1024;
        /** Hard per-request grid cap (reject absurd requests before
         *  they touch the scheduler). */
        std::size_t maxJobsPerRequest = 4096;
        /** Per-send timeout on client sockets (SO_SNDTIMEO), in
         *  milliseconds. Result delivery runs under the scheduler's
         *  serialized callback section, so a client that stops
         *  reading must fail its write (and be marked dead) rather
         *  than block everyone else's results behind its full socket
         *  buffer. 0 = blocking sends (tests only). */
        int sendTimeoutMs = 10000;
        /** Trace store directory for the shared cache ("" = memory
         *  only; pass through resolveTraceStoreDir() first). */
        std::string traceCacheDir;
        /** Benchmark-name resolver; defaults to the built-in suite
         *  (workload/benchmarks.hh findBenchmark). Tests inject tiny
         *  synthetic specs here. */
        ResolveBenchmarkFn resolveBenchmark;
    };

    /** Daemon-level counters (session lifecycle; scheduler counters
     *  live in CampaignScheduler::Stats). */
    struct Stats
    {
        std::uint64_t sessionsAccepted = 0;
        std::uint64_t campaignsAccepted = 0;
        std::uint64_t campaignsRejected = 0;
        std::uint64_t malformedRequests = 0;
        std::uint64_t disconnectCancelledJobs = 0;
    };

    explicit CampaignServer(Options options);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Binds the socket and starts the accept thread. False with
     *  @p error filled when the socket cannot be created. */
    bool start(std::string &error);

    /**
     * Graceful shutdown: stops accepting connections and campaigns,
     * drains every accepted job (results still stream to their
     * clients), then closes all sessions and joins their threads.
     * Idempotent; called by the destructor. Safe to call from any
     * thread except a session's own.
     */
    void stop();

    /** Blocks until stop() is called (the daemon main's parking
     *  spot while the signal handler decides when to stop). */
    void waitForStop();

    Stats stats() const;
    CampaignScheduler::Stats schedulerStats() const;
    const std::string &socketPath() const { return opts.socketPath; }

  private:
    struct Session;
    struct CampaignState;

    void acceptLoop(int listenFd);
    void sessionLoop(const std::shared_ptr<Session> &session);
    void handleLine(const std::shared_ptr<Session> &session,
                    const std::string &line);
    void handleCampaign(const std::shared_ptr<Session> &session,
                        CampaignRequest &&request);
    void onJobDone(const std::weak_ptr<Session> &weak,
                   const std::shared_ptr<CampaignState> &campaign,
                   JobResult result);
    void closeSession(const std::shared_ptr<Session> &session);
    void reapFinishedSessions();

    Options opts;
    CampaignScheduler scheduler;
    TraceCache traceCache;
    /** Serializes TraceCache access (the cache itself is not
     *  thread-safe; generation is serial, like resolveTraces()). */
    std::mutex traceMu;

    mutable std::mutex mu;
    Stats counters;
    std::vector<std::shared_ptr<Session>> sessions;
    std::thread acceptThread;
    int listenFd = -1;
    std::atomic<bool> stopping{false};

    std::mutex stopMu;
    std::condition_variable stopCv;
    bool stopped = false; ///< guarded by @ref stopMu
};

} // namespace bpsim::serve

#endif // BPSIM_SERVE_SERVER_HH
