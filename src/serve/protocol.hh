/**
 * @file
 * Wire protocol of the campaign service: JSON lines over a
 * unix-domain stream socket.
 *
 * Requests (client -> daemon), one JSON object per line:
 *
 *   {"op":"campaign","id":"sweep1",
 *    "configs":["gshare:n=10","bimode:d=9"],
 *    "benchmarks":["go","compress"],
 *    "divisor":5,"warmup":0,"timing":false,"perBranch":false}
 *       Submits the config × benchmark grid (config-major order,
 *       exactly Campaign::addGrid()). "id" is the client's campaign
 *       handle, echoed on every event; "divisor" optionally scales
 *       dynamic branch counts (the --quick mechanism); "timing"
 *       selects machine-dependent fields in result payloads;
 *       "perBranch" runs every job with per-branch accounting
 *       (SimConfig::trackPerBranch), adding the "perBranch" array to
 *       each payload — the raw material for client-side H2P reports
 *       (analysis/h2p.hh).
 *   {"op":"ping"}    liveness probe
 *   {"op":"stats"}   scheduler counters snapshot
 *
 * Events (daemon -> client), one JSON object per line:
 *
 *   {"event":"accepted","id":...,"jobs":N}
 *       The whole grid was admitted (all-or-nothing); N results
 *       will follow. Always precedes this campaign's first result.
 *   {"event":"rejected","id":...,"error":"..."}
 *       Nothing was admitted: malformed request, unknown benchmark,
 *       server at capacity (backpressure), or daemon draining.
 *   {"event":"result","id":...,"index":i,"payload":{...}}
 *       One finished job. "payload" is byte-for-byte the element the
 *       offline emitter (campaign/emitters.hh writeResultJson())
 *       would place at position i of its JSON array — clients
 *       reassemble offline-identical output by joining payloads.
 *       Results for one campaign are always delivered in index
 *       order; "payload" is always the final key of the line.
 *   {"event":"done","id":...,"jobs":N}   after the N-th result
 *   {"event":"error","error":"..."}      malformed line (no id known)
 *   {"event":"pong"} / {"event":"stats",...}
 *
 * Parsing failures never terminate the daemon; the reply is a
 * rejected/error event and the connection stays usable.
 */

#ifndef BPSIM_SERVE_PROTOCOL_HH
#define BPSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/scheduler.hh"

namespace bpsim::serve
{

/** A parsed "op":"campaign" request. */
struct CampaignRequest
{
    std::string id;
    std::vector<std::string> configs;
    std::vector<std::string> benchmarks;
    /** Dynamic-branch-count divisor (1 = full size). */
    std::uint64_t divisor = 1;
    /** SimConfig::warmupBranches for every job of the grid. */
    std::uint64_t warmup = 0;
    /** Include machine-dependent timing fields in payloads. */
    bool timing = false;
    /** Run every job with per-branch accounting
     *  (SimConfig::trackPerBranch); payloads then carry the
     *  "perBranch" array. */
    bool perBranch = false;

    std::size_t jobCount() const
    {
        return configs.size() * benchmarks.size();
    }
};

/** One request line, parsed. Op::Invalid carries the error text. */
struct Request
{
    enum class Op
    {
        Campaign,
        Ping,
        Stats,
        Invalid,
    };

    Op op = Op::Invalid;
    CampaignRequest campaign;
    std::string error;
};

/** Parses one request line; never throws, never fatals. */
Request parseRequest(const std::string &line);

/** @name Event renderers (each returns one complete line with '\n').
 *  @{ */
std::string acceptedEvent(const std::string &id, std::size_t jobs);
std::string rejectedEvent(const std::string &id,
                          const std::string &error);
std::string errorEvent(const std::string &error);
std::string resultEvent(const std::string &id, std::size_t index,
                        const std::string &payload);
std::string doneEvent(const std::string &id, std::size_t jobs);
std::string pongEvent();
std::string statsEvent(const CampaignScheduler::Stats &stats);
/** @} */

/** One event line, parsed (client side). */
struct Event
{
    enum class Kind
    {
        Accepted,
        Rejected,
        Result,
        Done,
        Error,
        Pong,
        Stats,
        Invalid,
    };

    Kind kind = Kind::Invalid;
    std::string id;
    std::size_t index = 0;
    std::size_t jobs = 0;
    std::string error;
    /** Raw payload bytes of a result event (see extractRawPayload). */
    std::string payload;
};

/** Parses one event line; Kind::Invalid carries the error text. */
Event parseEvent(const std::string &line);

/**
 * Slices the verbatim bytes of the "payload" member out of a result
 * event line. Re-serializing a parsed tree could reformat numbers,
 * so byte-identity with the offline emitter requires never
 * round-tripping the payload through a parser. Relies on "payload"
 * being the final key — any literal `,"payload":` inside a preceding
 * string value is impossible, since its quote characters would be
 * escaped. Empty when the marker is missing.
 */
std::string extractRawPayload(const std::string &line);

} // namespace bpsim::serve

#endif // BPSIM_SERVE_PROTOCOL_HH
