#include "serve/protocol.hh"

#include <sstream>

#include "util/json.hh"

namespace bpsim::serve
{

namespace
{

Request
invalidRequest(std::string error)
{
    Request request;
    request.op = Request::Op::Invalid;
    request.error = std::move(error);
    return request;
}

/** Reads a JSON array of strings into @p out; false on shape error. */
bool
readStringList(const JsonValue *value, std::vector<std::string> &out,
               const char *what, std::string &error)
{
    if (value == nullptr || !value->isArray()) {
        error = std::string(what) + " must be an array of strings";
        return false;
    }
    for (const JsonValue &element : value->elements()) {
        if (!element.isString()) {
            error = std::string(what) + " must be an array of strings";
            return false;
        }
        out.push_back(element.asString());
    }
    return true;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    std::string parseError;
    const auto doc = JsonValue::parse(line, parseError);
    if (!doc)
        return invalidRequest("malformed JSON: " + parseError);
    if (!doc->isObject())
        return invalidRequest("request must be a JSON object");

    const std::string op = doc->getString("op");
    if (op == "ping") {
        Request request;
        request.op = Request::Op::Ping;
        return request;
    }
    if (op == "stats") {
        Request request;
        request.op = Request::Op::Stats;
        return request;
    }
    if (op != "campaign")
        return invalidRequest("unknown op '" + op + "'");

    Request request;
    request.op = Request::Op::Campaign;
    CampaignRequest &campaign = request.campaign;
    campaign.id = doc->getString("id");
    if (campaign.id.empty())
        return invalidRequest("campaign request needs a non-empty id");

    std::string shapeError;
    if (!readStringList(doc->get("configs"), campaign.configs,
                        "configs", shapeError) ||
        !readStringList(doc->get("benchmarks"), campaign.benchmarks,
                        "benchmarks", shapeError)) {
        return invalidRequest(shapeError);
    }
    if (campaign.configs.empty() || campaign.benchmarks.empty())
        return invalidRequest("configs and benchmarks must be non-empty");

    campaign.divisor = doc->getUint("divisor", 1);
    if (campaign.divisor == 0)
        campaign.divisor = 1;
    campaign.warmup = doc->getUint("warmup", 0);
    campaign.timing = doc->getBool("timing", false);
    campaign.perBranch = doc->getBool("perBranch", false);
    return request;
}

std::string
acceptedEvent(const std::string &id, std::size_t jobs)
{
    return "{\"event\":\"accepted\",\"id\":" + jsonString(id) +
           ",\"jobs\":" + std::to_string(jobs) + "}\n";
}

std::string
rejectedEvent(const std::string &id, const std::string &error)
{
    return "{\"event\":\"rejected\",\"id\":" + jsonString(id) +
           ",\"error\":" + jsonString(error) + "}\n";
}

std::string
errorEvent(const std::string &error)
{
    return "{\"event\":\"error\",\"error\":" + jsonString(error) +
           "}\n";
}

std::string
resultEvent(const std::string &id, std::size_t index,
            const std::string &payload)
{
    // "payload" last, so extractRawPayload() can slice it verbatim.
    return "{\"event\":\"result\",\"id\":" + jsonString(id) +
           ",\"index\":" + std::to_string(index) +
           ",\"payload\":" + payload + "}\n";
}

std::string
doneEvent(const std::string &id, std::size_t jobs)
{
    return "{\"event\":\"done\",\"id\":" + jsonString(id) +
           ",\"jobs\":" + std::to_string(jobs) + "}\n";
}

std::string
pongEvent()
{
    return "{\"event\":\"pong\"}\n";
}

std::string
statsEvent(const CampaignScheduler::Stats &stats)
{
    std::ostringstream os;
    os << "{\"event\":\"stats\",\"submitted\":" << stats.submitted
       << ",\"completed\":" << stats.completed
       << ",\"cancelled\":" << stats.cancelled
       << ",\"callbackExceptions\":" << stats.callbackExceptions
       << ",\"fusedBanks\":" << stats.fusedBanks
       << ",\"pending\":" << stats.pending
       << ",\"inFlight\":" << stats.inFlight << "}\n";
    return os.str();
}

Event
parseEvent(const std::string &line)
{
    Event event;
    std::string parseError;
    const auto doc = JsonValue::parse(line, parseError);
    if (!doc || !doc->isObject()) {
        event.kind = Event::Kind::Invalid;
        event.error = doc ? "event must be a JSON object"
                          : "malformed JSON: " + parseError;
        return event;
    }

    const std::string kind = doc->getString("event");
    event.id = doc->getString("id");
    event.jobs = static_cast<std::size_t>(doc->getUint("jobs"));
    event.index = static_cast<std::size_t>(doc->getUint("index"));
    event.error = doc->getString("error");

    if (kind == "accepted") {
        event.kind = Event::Kind::Accepted;
    } else if (kind == "rejected") {
        event.kind = Event::Kind::Rejected;
    } else if (kind == "result") {
        event.kind = Event::Kind::Result;
        event.payload = extractRawPayload(line);
    } else if (kind == "done") {
        event.kind = Event::Kind::Done;
    } else if (kind == "error") {
        event.kind = Event::Kind::Error;
    } else if (kind == "pong") {
        event.kind = Event::Kind::Pong;
    } else if (kind == "stats") {
        event.kind = Event::Kind::Stats;
    } else {
        event.kind = Event::Kind::Invalid;
        event.error = "unknown event '" + kind + "'";
    }
    return event;
}

std::string
extractRawPayload(const std::string &line)
{
    static const std::string marker = ",\"payload\":";
    const auto at = line.find(marker);
    if (at == std::string::npos)
        return "";
    const std::size_t begin = at + marker.size();
    // The payload runs to the event object's closing brace.
    auto end = line.find_last_of('}');
    if (end == std::string::npos || end <= begin)
        return "";
    return line.substr(begin, end - begin);
}

} // namespace bpsim::serve
