#include "serve/client.hh"

#include "util/json.hh"

namespace bpsim::serve
{

ServeClient::~ServeClient()
{
    disconnect();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd(other.fd), reader(std::move(other.reader))
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        disconnect();
        fd = other.fd;
        reader = std::move(other.reader);
        other.fd = -1;
    }
    return *this;
}

bool
ServeClient::connect(const std::string &socketPath, std::string &error)
{
    disconnect();
    fd = connectUnix(socketPath, error);
    if (fd < 0)
        return false;
    reader = std::make_unique<LineReader>(fd);
    return true;
}

void
ServeClient::disconnect()
{
    reader.reset();
    closeFd(fd);
    fd = -1;
}

bool
ServeClient::sendLine(const std::string &line)
{
    if (fd < 0)
        return false;
    if (!line.empty() && line.back() == '\n')
        return sendAll(fd, line);
    return sendAll(fd, line + "\n");
}

std::optional<std::string>
ServeClient::readLine()
{
    if (!reader)
        return std::nullopt;
    return reader->readLine();
}

std::optional<std::vector<std::string>>
ServeClient::runCampaign(const CampaignRequest &request,
                         std::string &error)
{
    if (!sendLine(campaignRequestLine(request))) {
        error = "failed to send request (daemon gone?)";
        return std::nullopt;
    }

    std::vector<std::string> payloads;
    bool accepted = false;
    for (;;) {
        const auto line = readLine();
        if (!line) {
            error = "connection closed mid-campaign";
            return std::nullopt;
        }
        const Event event = parseEvent(*line);
        // Interleaved events for other campaign ids would belong to
        // a multiplexing caller; this blocking driver runs one
        // campaign per call, so everything it sees must be its own.
        switch (event.kind) {
          case Event::Kind::Accepted:
            if (event.id != request.id) {
                error = "accepted event for foreign id '" + event.id +
                        "'";
                return std::nullopt;
            }
            accepted = true;
            payloads.reserve(event.jobs);
            break;
          case Event::Kind::Rejected:
            error = "rejected: " + event.error;
            return std::nullopt;
          case Event::Kind::Error:
            error = "protocol error: " + event.error;
            return std::nullopt;
          case Event::Kind::Result:
            if (!accepted || event.id != request.id ||
                event.index != payloads.size()) {
                error = "result out of order (index " +
                        std::to_string(event.index) + ", expected " +
                        std::to_string(payloads.size()) + ")";
                return std::nullopt;
            }
            if (event.payload.empty()) {
                error = "result event with empty payload";
                return std::nullopt;
            }
            payloads.push_back(event.payload);
            break;
          case Event::Kind::Done:
            if (!accepted || event.id != request.id ||
                event.jobs != payloads.size()) {
                error = "done event before all results arrived";
                return std::nullopt;
            }
            return payloads;
          case Event::Kind::Pong:
          case Event::Kind::Stats:
            break; // stray but harmless
          case Event::Kind::Invalid:
            error = "unparseable event: " + event.error;
            return std::nullopt;
        }
    }
}

std::optional<std::string>
ServeClient::roundTrip(const std::string &line)
{
    if (!sendLine(line))
        return std::nullopt;
    return readLine();
}

bool
ServeClient::ping()
{
    const auto reply = roundTrip("{\"op\":\"ping\"}");
    if (!reply)
        return false;
    return parseEvent(*reply).kind == Event::Kind::Pong;
}

std::string
campaignRequestLine(const CampaignRequest &request)
{
    std::string line = "{\"op\":\"campaign\",\"id\":" +
                       jsonString(request.id) + ",\"configs\":[";
    for (std::size_t i = 0; i < request.configs.size(); ++i) {
        if (i > 0)
            line += ",";
        line += jsonString(request.configs[i]);
    }
    line += "],\"benchmarks\":[";
    for (std::size_t i = 0; i < request.benchmarks.size(); ++i) {
        if (i > 0)
            line += ",";
        line += jsonString(request.benchmarks[i]);
    }
    line += "],\"divisor\":" + std::to_string(request.divisor) +
            ",\"warmup\":" + std::to_string(request.warmup) +
            ",\"timing\":" + (request.timing ? "true" : "false") +
            ",\"perBranch\":" + (request.perBranch ? "true" : "false") +
            "}\n";
    return line;
}

std::string
joinResultsJson(const std::vector<std::string> &payloads)
{
    std::string out = "[";
    bool first = true;
    for (const std::string &payload : payloads) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  ";
        out += payload;
    }
    out += "\n]\n";
    return out;
}

} // namespace bpsim::serve
