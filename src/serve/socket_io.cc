#include "serve/socket_io.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace bpsim::serve
{

namespace
{

bool
fillAddress(const std::string &path, sockaddr_un &addr,
            std::string &error)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + path + "' is empty or too long";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

std::string
errnoText(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return -1;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoText("socket");
        return -1;
    }
    // A stale socket file from a previous daemon run would make
    // bind() fail with EADDRINUSE even though nothing is listening.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoText("bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        error = errnoText("listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return -1;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoText("socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoText(("connect " + path).c_str());
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-stream must
        // surface as EPIPE here, not as a process-killing SIGPIPE.
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN/EWOULDBLOCK here is the SO_SNDTIMEO timeout
            // firing: the peer stopped reading. Fail the write.
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
setSendTimeout(int fd, int millis)
{
    timeval tv{};
    tv.tv_sec = millis / 1000;
    tv.tv_usec = (millis % 1000) * 1000;
    return ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                        sizeof(tv)) == 0;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

LineReader::LineReader(int fd, std::size_t maxLine)
    : fd(fd), maxLine(maxLine)
{
}

std::optional<std::string>
LineReader::readLine()
{
    for (;;) {
        const auto newline = buffer.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            return line;
        }
        if (eof) {
            if (buffer.empty())
                return std::nullopt;
            std::string line = std::move(buffer);
            buffer.clear();
            return line;
        }
        if (buffer.size() > maxLine)
            return std::nullopt;

        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0) {
            eof = true;
            continue;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace bpsim::serve
