/**
 * @file
 * bpsim_serve — the campaign service daemon.
 *
 * Binds a unix-domain socket, serves concurrent bpsim_client (or
 * any JSON-lines) peers off one shared worker pool and trace cache,
 * and drains gracefully on SIGTERM/SIGINT: accepted campaigns finish
 * and stream out before the process exits.
 */

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>

#include <unistd.h>

#include "serve/server.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace
{

// Self-pipe: the handler's only async-signal-safe option is a
// write(); the main thread parks on the read end and runs the
// actual (lock-taking) shutdown.
int gSignalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(gSignalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpsim;

    ArgParser args("bpsim_serve",
                   "Campaign service daemon: accepts experiment "
                   "requests from concurrent clients over a "
                   "unix-domain socket, fusing compatible jobs "
                   "across clients into shared banked sweeps.");
    args.addOption("socket", "/tmp/bpsim-serve.sock",
                   "unix-domain socket path to listen on");
    args.addOption("jobs", "0",
                   "campaign worker threads (0 = one per hardware "
                   "thread)");
    args.addOption("max-pending", "1024",
                   "admission bound on queued jobs; campaigns that "
                   "would overflow it are rejected whole (0 = "
                   "unbounded)");
    args.addOption("max-jobs-per-request", "4096",
                   "reject any single campaign larger than this");
    args.addFlag("no-fuse", "disable cross-client banked fusion");
    CommonOptions::declareTraceCache(args);
    if (!args.parse(argc, argv))
        return 0;

    const CommonOptions opts = CommonOptions::fromArgs(args);
    setVerbose(opts.verbose);

    serve::CampaignServer::Options serverOpts;
    serverOpts.socketPath = args.get("socket");
    serverOpts.workers = opts.jobs;
    serverOpts.fuse = !args.flag("no-fuse");
    serverOpts.maxPending =
        static_cast<std::size_t>(args.getUint("max-pending"));
    serverOpts.maxJobsPerRequest =
        static_cast<std::size_t>(args.getUint("max-jobs-per-request"));
    serverOpts.traceCacheDir = resolveTraceStoreDir(opts.traceCache);

    serve::CampaignServer server(std::move(serverOpts));
    std::string error;
    if (!server.start(error)) {
        std::cerr << "bpsim_serve: " << error << "\n";
        return 1;
    }

    if (::pipe(gSignalPipe) != 0) {
        std::cerr << "bpsim_serve: pipe: " << std::strerror(errno)
                  << "\n";
        return 1;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::cout << "bpsim_serve: listening on " << server.socketPath()
              << " (max-pending " << args.get("max-pending") << ")"
              << std::endl;

    char byte = 0;
    while (::read(gSignalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::cout << "bpsim_serve: draining..." << std::endl;
    server.stop();

    const auto stats = server.stats();
    const auto sched = server.schedulerStats();
    std::cout << "bpsim_serve: drained; sessions="
              << stats.sessionsAccepted << " campaigns="
              << stats.campaignsAccepted << " rejected="
              << stats.campaignsRejected << " jobs="
              << sched.completed << " fusedBanks=" << sched.fusedBanks
              << std::endl;
    return 0;
}
