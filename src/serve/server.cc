#include "serve/server.hh"

#include <map>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "campaign/emitters.hh"
#include "serve/socket_io.hh"
#include "util/logging.hh"
#include "workload/benchmarks.hh"

namespace bpsim::serve
{

/**
 * One campaign accepted from one client. The scheduler completes
 * jobs in whatever order the thread schedule produces; results are
 * parked in @ref ready until their turn so the client always sees
 * index order. All mutable state is guarded by the owning session's
 * write mutex.
 */
struct CampaignServer::CampaignState
{
    std::string id;
    std::size_t jobCount = 0;
    bool timing = false;

    /** Next index to emit (the reorder cursor). */
    std::size_t nextEmit = 0;
    std::size_t emitted = 0;
    /** Finished-but-out-of-order payloads, keyed by job index. */
    std::map<std::size_t, std::string> ready;
    /** Scheduler tickets, for cancellation on disconnect. */
    std::vector<CampaignScheduler::Ticket> tickets;
};

/**
 * One connected client. The reader thread parses and submits;
 * scheduler callbacks write results. @ref writeMu serializes every
 * write to @ref fd and guards @ref dead and @ref campaigns.
 */
struct CampaignServer::Session
{
    int fd = -1;
    std::thread reader;
    /** Reader thread has returned; the session can be reaped. */
    std::atomic<bool> finished{false};

    std::mutex writeMu;
    /** Peer gone or write failed; all further output is dropped. */
    bool dead = false;
    std::map<std::string, std::shared_ptr<CampaignState>> campaigns;

    /** Writes one line; requires @ref writeMu. A failure marks the
     *  session dead — only this client's stream is affected. */
    void writeLocked(const std::string &line)
    {
        if (dead)
            return;
        if (!sendAll(fd, line))
            dead = true;
    }

    void write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMu);
        writeLocked(line);
    }
};

CampaignServer::CampaignServer(Options options)
    : opts(std::move(options)),
      scheduler(CampaignScheduler::Options{opts.workers, opts.fuse,
                                           opts.maxPending, false}),
      traceCache(opts.traceCacheDir)
{
    if (!opts.resolveBenchmark)
        opts.resolveBenchmark = [](const std::string &name) {
            return findBenchmark(name);
        };
}

CampaignServer::~CampaignServer()
{
    stop();
}

bool
CampaignServer::start(std::string &error)
{
    listenFd = listenUnix(opts.socketPath, error);
    if (listenFd < 0)
        return false;
    acceptThread = std::thread([this] { acceptLoop(listenFd); });
    return true;
}

void
CampaignServer::acceptLoop(int fd)
{
    while (!stopping.load()) {
        // Poll with a timeout instead of blocking in accept(): a
        // stop() from another thread must be noticed promptly even
        // when no client ever connects again.
        pollfd pfd{fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        // Reap on every wakeup, including poll timeouts: an idle
        // daemon must not accumulate the threads and fds of
        // disconnected clients until the next connection arrives.
        reapFinishedSessions();
        if (n <= 0 || (pfd.revents & POLLIN) == 0)
            continue;
        const int clientFd = ::accept(fd, nullptr, nullptr);
        if (clientFd < 0)
            continue;
        if (stopping.load()) {
            closeFd(clientFd);
            break;
        }
        // Bound sends so a non-reading client fails its own stream
        // instead of blocking the shared completion-callback path.
        if (opts.sendTimeoutMs > 0)
            setSendTimeout(clientFd, opts.sendTimeoutMs);
        auto session = std::make_shared<Session>();
        session->fd = clientFd;
        {
            std::lock_guard<std::mutex> lock(mu);
            ++counters.sessionsAccepted;
            sessions.push_back(session);
        }
        session->reader =
            std::thread([this, session] { sessionLoop(session); });
    }
}

void
CampaignServer::sessionLoop(const std::shared_ptr<Session> &session)
{
    LineReader reader(session->fd);
    while (auto line = reader.readLine()) {
        if (line->empty())
            continue;
        handleLine(session, *line);
    }
    closeSession(session);
    session->finished.store(true);
}

void
CampaignServer::handleLine(const std::shared_ptr<Session> &session,
                           const std::string &line)
{
    Request request = parseRequest(line);
    switch (request.op) {
      case Request::Op::Ping:
        session->write(pongEvent());
        return;
      case Request::Op::Stats:
        session->write(statsEvent(scheduler.stats()));
        return;
      case Request::Op::Campaign:
        handleCampaign(session, std::move(request.campaign));
        return;
      case Request::Op::Invalid:
        {
            std::lock_guard<std::mutex> lock(mu);
            ++counters.malformedRequests;
        }
        session->write(errorEvent(request.error));
        return;
    }
}

void
CampaignServer::handleCampaign(const std::shared_ptr<Session> &session,
                               CampaignRequest &&request)
{
    auto reject = [&](const std::string &why) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++counters.campaignsRejected;
        }
        session->write(rejectedEvent(request.id, why));
    };

    if (stopping.load()) {
        reject("server draining");
        return;
    }
    if (request.jobCount() > opts.maxJobsPerRequest) {
        reject("campaign of " + std::to_string(request.jobCount()) +
               " jobs exceeds the per-request cap of " +
               std::to_string(opts.maxJobsPerRequest));
        return;
    }

    // Resolve names and materialize traces before taking the write
    // lock: first-touch trace generation is the slow part and must
    // not stall this session's in-flight result stream. The cache is
    // shared across every session, so concurrent clients sweeping
    // the same benchmark generate its trace exactly once.
    std::vector<BenchmarkTrace> benchmarks;
    benchmarks.reserve(request.benchmarks.size());
    for (const std::string &name : request.benchmarks) {
        auto spec = opts.resolveBenchmark(name);
        if (!spec) {
            reject("unknown benchmark '" + name + "'");
            return;
        }
        *spec = scaledBenchmark(std::move(*spec), request.divisor);
        // The cache is keyed by name and rejects one name with two
        // dynamic counts, so each divisor gets its own cache entry;
        // generation depends only on the spec's parameters, never
        // its name, and jobs still report the plain name.
        if (request.divisor > 1)
            spec->name += "@div" + std::to_string(request.divisor);
        std::lock_guard<std::mutex> lock(traceMu);
        benchmarks.push_back({name, traceCache.handleFor(*spec),
                              traceCache.packedHandleFor(*spec)});
    }

    // Config-major grid, exactly Campaign::addGrid()'s order — the
    // contract that makes streamed output line up with the offline
    // emitter's array positions.
    std::vector<Job> jobs;
    jobs.reserve(request.jobCount());
    SimConfig simConfig;
    simConfig.warmupBranches = request.warmup;
    simConfig.trackPerBranch = request.perBranch;
    for (const std::string &config : request.configs) {
        for (const BenchmarkTrace &benchmark : benchmarks) {
            Job job;
            job.index = jobs.size();
            job.configText = config;
            job.benchmark = benchmark.name;
            job.trace = benchmark.trace;
            job.packed = benchmark.packed;
            job.simConfig = simConfig;
            jobs.push_back(std::move(job));
        }
    }

    auto campaign = std::make_shared<CampaignState>();
    campaign->id = request.id;
    campaign->jobCount = jobs.size();
    campaign->timing = request.timing;

    // The write lock is held across admission so the "accepted"
    // event reaches the wire before the first result can (the
    // completion callback blocks on this same mutex).
    std::lock_guard<std::mutex> lock(session->writeMu);
    if (session->dead)
        return;
    if (session->campaigns.count(request.id) != 0) {
        {
            std::lock_guard<std::mutex> statsLock(mu);
            ++counters.campaignsRejected;
        }
        session->writeLocked(rejectedEvent(
            request.id, "campaign id '" + request.id +
                            "' is already in flight on this connection"));
        return;
    }

    std::weak_ptr<Session> weak(session);
    auto tickets = scheduler.trySubmitAll(
        std::move(jobs),
        [this, weak, campaign](CampaignScheduler::Ticket,
                               JobResult result) {
            onJobDone(weak, campaign, std::move(result));
        });
    if (!tickets) {
        {
            std::lock_guard<std::mutex> statsLock(mu);
            ++counters.campaignsRejected;
        }
        session->writeLocked(rejectedEvent(
            request.id,
            "server at capacity (" +
                std::to_string(scheduler.pendingJobs()) +
                " jobs pending); retry later"));
        return;
    }

    campaign->tickets = std::move(*tickets);
    session->campaigns.emplace(campaign->id, campaign);
    {
        std::lock_guard<std::mutex> statsLock(mu);
        ++counters.campaignsAccepted;
    }
    session->writeLocked(acceptedEvent(campaign->id, campaign->jobCount));
}

void
CampaignServer::onJobDone(const std::weak_ptr<Session> &weak,
                          const std::shared_ptr<CampaignState> &campaign,
                          JobResult result)
{
    const std::shared_ptr<Session> session = weak.lock();
    if (!session)
        return;

    // Render outside the write lock; the payload bytes are exactly
    // one element of the offline emitter's array.
    std::ostringstream os;
    writeResultJson(os, result, campaign->timing);

    std::lock_guard<std::mutex> lock(session->writeMu);
    if (session->dead)
        return;
    campaign->ready.emplace(result.index, os.str());
    while (true) {
        const auto it = campaign->ready.find(campaign->nextEmit);
        if (it == campaign->ready.end())
            break;
        session->writeLocked(
            resultEvent(campaign->id, campaign->nextEmit, it->second));
        campaign->ready.erase(it);
        ++campaign->nextEmit;
        ++campaign->emitted;
    }
    if (campaign->emitted == campaign->jobCount) {
        session->writeLocked(
            doneEvent(campaign->id, campaign->jobCount));
        session->campaigns.erase(campaign->id);
    }
}

void
CampaignServer::closeSession(const std::shared_ptr<Session> &session)
{
    std::vector<CampaignScheduler::Ticket> toCancel;
    {
        std::lock_guard<std::mutex> lock(session->writeMu);
        session->dead = true;
        for (const auto &entry : session->campaigns) {
            const CampaignState &campaign = *entry.second;
            toCancel.insert(toCancel.end(), campaign.tickets.begin(),
                            campaign.tickets.end());
        }
        session->campaigns.clear();
    }
    // Undispatched jobs of a vanished client are wasted work; shed
    // them. In-flight ones finish and deliver into the dead session,
    // where they are dropped — other clients never notice.
    std::uint64_t cancelled = 0;
    for (const CampaignScheduler::Ticket ticket : toCancel) {
        if (scheduler.cancel(ticket))
            ++cancelled;
    }
    if (cancelled > 0) {
        std::lock_guard<std::mutex> lock(mu);
        counters.disconnectCancelledJobs += cancelled;
    }
    ::shutdown(session->fd, SHUT_RDWR);
}

void
CampaignServer::reapFinishedSessions()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto it = sessions.begin(); it != sessions.end();) {
        Session &session = **it;
        if (!session.finished.load()) {
            ++it;
            continue;
        }
        if (session.reader.joinable())
            session.reader.join();
        closeFd(session.fd);
        session.fd = -1;
        it = sessions.erase(it);
    }
}

void
CampaignServer::stop()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
        // Another thread is stopping (or has stopped); wait it out.
        waitForStop();
        return;
    }

    // Graceful drain: every accepted job completes and its results
    // stream to the client before any connection is torn down. New
    // campaigns are already being rejected ("server draining").
    scheduler.drain();

    if (acceptThread.joinable())
        acceptThread.join();
    closeFd(listenFd);
    listenFd = -1;

    // Wake every session reader (EOF) and join.
    std::vector<std::shared_ptr<Session>> remaining;
    {
        std::lock_guard<std::mutex> lock(mu);
        remaining = sessions;
    }
    for (const auto &session : remaining)
        ::shutdown(session->fd, SHUT_RDWR);
    for (const auto &session : remaining) {
        if (session->reader.joinable())
            session->reader.join();
        closeFd(session->fd);
        session->fd = -1;
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        sessions.clear();
    }
    ::unlink(opts.socketPath.c_str());
    scheduler.shutdown();

    {
        std::lock_guard<std::mutex> lock(stopMu);
        stopped = true;
    }
    stopCv.notify_all();
}

void
CampaignServer::waitForStop()
{
    std::unique_lock<std::mutex> lock(stopMu);
    stopCv.wait(lock, [this] { return stopped; });
}

CampaignServer::Stats
CampaignServer::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

CampaignScheduler::Stats
CampaignServer::schedulerStats() const
{
    return scheduler.stats();
}

} // namespace bpsim::serve
