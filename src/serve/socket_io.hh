/**
 * @file
 * Thin AF_UNIX socket plumbing for the campaign service.
 *
 * Everything here is deliberately boring POSIX: a listener bound to
 * a filesystem path, a blocking connect, a send-everything loop that
 * never raises SIGPIPE, and a buffered line reader for the
 * JSON-lines protocol. Errors are returned, not thrown — the daemon
 * treats every socket failure as "that peer is gone", never as a
 * reason to die.
 */

#ifndef BPSIM_SERVE_SOCKET_IO_HH
#define BPSIM_SERVE_SOCKET_IO_HH

#include <optional>
#include <string>

namespace bpsim::serve
{

/**
 * Creates, binds and listens on a unix-domain socket at @p path
 * (removing a stale socket file first). Returns the listening fd, or
 * -1 with @p error filled.
 */
int listenUnix(const std::string &path, std::string &error);

/** Connects to the daemon at @p path; -1 with @p error on failure. */
int connectUnix(const std::string &path, std::string &error);

/**
 * Writes all of @p data to @p fd, retrying short writes, with
 * SIGPIPE suppressed. Returns false once the peer is gone — or, on
 * an fd with a send timeout (setSendTimeout()), once the peer has
 * stopped reading for that long.
 */
bool sendAll(int fd, const std::string &data);

/**
 * Bounds every send() on @p fd to @p millis (SO_SNDTIMEO). A peer
 * whose socket buffer stays full that long makes sendAll() fail
 * instead of blocking forever — the daemon applies this to every
 * accepted connection so one non-reading client cannot stall result
 * delivery for the rest. 0 restores blocking sends.
 */
bool setSendTimeout(int fd, int millis);

/** Closes @p fd if valid (idempotent helper for RAII-less paths). */
void closeFd(int fd);

/**
 * Buffered reader that splits a socket stream into '\n'-terminated
 * lines. A line longer than @p maxLine (default 4 MiB) is treated as
 * a protocol violation and ends the stream — unbounded buffering on
 * hostile input must not exhaust the daemon.
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t maxLine = 4u << 20);

    /**
     * The next line without its terminating '\n' (a final unterminated
     * line before EOF is returned as-is). std::nullopt on EOF, error,
     * or an overlong line.
     */
    std::optional<std::string> readLine();

  private:
    int fd;
    std::size_t maxLine;
    std::string buffer;
    bool eof = false;
};

} // namespace bpsim::serve

#endif // BPSIM_SERVE_SOCKET_IO_HH
