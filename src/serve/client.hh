/**
 * @file
 * Client-side driver for the campaign service.
 *
 * ServeClient wraps one connection to a CampaignServer: submit a
 * campaign, stream its result events, hand back the per-job payload
 * strings in index order. joinResultsJson() reassembles those
 * payloads into exactly the JSON array the offline emitter
 * (campaign/emitters.hh writeResultsJson()) produces — the
 * byte-identity contract the CI smoke test diffs against.
 */

#ifndef BPSIM_SERVE_CLIENT_HH
#define BPSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/socket_io.hh"

namespace bpsim::serve
{

/** One blocking connection to the campaign service daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /** Connects to the daemon's socket; false with @p error set. */
    bool connect(const std::string &socketPath, std::string &error);

    bool connected() const { return fd >= 0; }
    void disconnect();

    /**
     * Submits @p request and streams until its "done" event.
     * Returns the payloads in job-index order (the daemon already
     * delivers them ordered; the order is verified here), or
     * std::nullopt with @p error set on rejection, protocol
     * violation, or disconnect.
     */
    std::optional<std::vector<std::string>>
    runCampaign(const CampaignRequest &request, std::string &error);

    /** Sends a raw request line (tests poke malformed input through
     *  this) and returns the next event line. */
    std::optional<std::string> roundTrip(const std::string &line);

    /** Liveness probe; false when the daemon is unreachable. */
    bool ping();

    /** Sends one raw line (framing '\n' appended when missing). */
    bool sendLine(const std::string &line);

    /** Reads the next event line; std::nullopt once the daemon is
     *  gone. For callers driving the stream themselves. */
    std::optional<std::string> readLine();

  private:
    int fd = -1;
    std::unique_ptr<LineReader> reader;
};

/** Serializes a campaign request to its wire line (with '\n'). */
std::string campaignRequestLine(const CampaignRequest &request);

/**
 * Joins per-job payloads into the offline emitter's array framing:
 * `[\n  <p0>,\n  <p1>\n]\n`. Byte-identical to writeResultsJson()
 * over the same jobs.
 */
std::string joinResultsJson(const std::vector<std::string> &payloads);

} // namespace bpsim::serve

#endif // BPSIM_SERVE_CLIENT_HH
