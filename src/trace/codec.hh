/**
 * @file
 * Byte-level primitives for the binary trace format: LEB128 varints,
 * zigzag signed mapping, and an FNV-1a checksum.
 *
 * Branch traces are extremely compressible — consecutive pcs are
 * near each other and targets are near their pcs — so records are
 * stored as zigzag-encoded deltas in varints. Typical synthetic
 * traces compress to ~3 bytes/record versus 24 bytes raw.
 */

#ifndef BPSIM_TRACE_CODEC_HH
#define BPSIM_TRACE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bpsim
{

/** Maps a signed value to unsigned with small magnitudes kept small. */
constexpr std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigzagEncode(). */
constexpr std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/** Writes @p value to @p out as 4 little-endian bytes. */
inline void
putLe32(std::uint8_t *out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

/** Writes @p value to @p out as 8 little-endian bytes. */
inline void
putLe64(std::uint8_t *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

/** Reads 4 little-endian bytes from @p in. */
inline std::uint32_t
getLe32(const std::uint8_t *in)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return value;
}

/** Reads 8 little-endian bytes from @p in. */
inline std::uint64_t
getLe64(const std::uint8_t *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

/** Appends @p value to @p out as a LEB128 varint (1..10 bytes). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t value);

/**
 * Reads one varint from @p data at @p offset, advancing the offset.
 *
 * @retval true a complete varint was decoded into @p value
 * @retval false the buffer ended mid-varint (offset unspecified)
 */
bool getVarint(const std::uint8_t *data, std::size_t size,
               std::size_t &offset, std::uint64_t &value);

/** Incremental FNV-1a 64-bit hash, used as a trace-file checksum. */
class Fnv1a
{
  public:
    /** Mixes @p n bytes into the hash. */
    void
    update(const std::uint8_t *data, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            state ^= data[i];
            state *= 0x100000001b3ULL;
        }
    }

    std::uint64_t digest() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ULL;
};

} // namespace bpsim

#endif // BPSIM_TRACE_CODEC_HH
