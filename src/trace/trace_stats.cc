#include "trace/trace_stats.hh"

#include <algorithm>

namespace bpsim
{

double
StaticBranchStats::takenFraction() const
{
    if (executions == 0)
        return 0.0;
    return static_cast<double>(takenCount) /
           static_cast<double>(executions);
}

bool
StaticBranchStats::isStronglyBiased(double threshold) const
{
    const double f = takenFraction();
    return f >= threshold || f <= 1.0 - threshold;
}

void
TraceStats::observe(const BranchRecord &record)
{
    if (!record.isConditional()) {
        ++otherCount;
        return;
    }
    ++dynamicCount;
    if (record.taken)
        ++takenCount;
    auto &entry = branches[record.pc];
    entry.pc = record.pc;
    ++entry.executions;
    if (record.taken)
        ++entry.takenCount;
}

void
TraceStats::observeAll(TraceReader &reader)
{
    BranchRecord record;
    while (reader.next(record))
        observe(record);
}

std::uint64_t
TraceStats::staticConditional() const
{
    return branches.size();
}

double
TraceStats::takenFraction() const
{
    if (dynamicCount == 0)
        return 0.0;
    return static_cast<double>(takenCount) /
           static_cast<double>(dynamicCount);
}

double
TraceStats::stronglyBiasedDynamicFraction(double threshold) const
{
    if (dynamicCount == 0)
        return 0.0;
    std::uint64_t biased = 0;
    for (const auto &[pc, stats] : branches) {
        if (stats.isStronglyBiased(threshold))
            biased += stats.executions;
    }
    return static_cast<double>(biased) / static_cast<double>(dynamicCount);
}

std::vector<StaticBranchStats>
TraceStats::perBranch() const
{
    std::vector<StaticBranchStats> result;
    result.reserve(branches.size());
    for (const auto &[pc, stats] : branches)
        result.push_back(stats);
    std::sort(result.begin(), result.end(),
              [](const StaticBranchStats &a, const StaticBranchStats &b) {
                  if (a.executions != b.executions)
                      return a.executions > b.executions;
                  return a.pc < b.pc;
              });
    return result;
}

} // namespace bpsim
