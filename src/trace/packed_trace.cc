#include "trace/packed_trace.hh"

#include <bit>

namespace bpsim
{

PackedTrace::PackedTrace(const MemoryTrace &trace)
{
    pcs.reserve(trace.size());
    words.reserve(trace.size() / kWordBits + 1);
    for (const BranchRecord &record : trace.data()) {
        if (!record.isConditional())
            continue;
        const std::size_t i = pcs.size();
        if (i % kWordBits == 0)
            words.push_back(0);
        if (record.taken)
            words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
        pcs.push_back(record.pc);
    }
    pcs.shrink_to_fit();
    words.shrink_to_fit();
}

std::uint64_t
PackedTrace::takenCount() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t word : words)
        total += static_cast<std::uint64_t>(std::popcount(word));
    return total;
}

} // namespace bpsim
