#include "trace/packed_trace.hh"

#include <bit>
#include <utility>

#include "util/logging.hh"

namespace bpsim
{

PackedTrace::PackedTrace(const MemoryTrace &trace)
{
    ownedPcs.reserve(trace.size());
    ownedWords.reserve(trace.size() / kWordBits + 1);
    for (const BranchRecord &record : trace.data()) {
        if (!record.isConditional())
            continue;
        const std::size_t i = ownedPcs.size();
        if (i % kWordBits == 0)
            ownedWords.push_back(0);
        if (record.taken)
            ownedWords[i / kWordBits] |= std::uint64_t{1}
                                         << (i % kWordBits);
        ownedPcs.push_back(record.pc);
    }
    ownedPcs.shrink_to_fit();
    ownedWords.shrink_to_fit();
    recordCount = ownedPcs.size();
    wordCnt = ownedWords.size();
    pcPtr = ownedPcs.data();
    wordPtr = ownedWords.data();
}

PackedTrace::PackedTrace(TraceWordVector pcs, TraceWordVector words,
                         std::size_t count)
    : ownedPcs(std::move(pcs)), ownedWords(std::move(words))
{
    if (ownedPcs.size() != count ||
        ownedWords.size() != (count + kWordBits - 1) / kWordBits)
        BPSIM_PANIC("PackedTrace: adopted arrays sized "
                    << ownedPcs.size() << "/" << ownedWords.size()
                    << " do not fit " << count << " records");
    recordCount = count;
    wordCnt = ownedWords.size();
    pcPtr = ownedPcs.data();
    wordPtr = ownedWords.data();
}

PackedTrace::PackedTrace(const std::uint64_t *pcs,
                         const std::uint64_t *words, std::size_t count,
                         std::shared_ptr<const void> storage)
    : storage(std::move(storage)), pcPtr(pcs), wordPtr(words),
      recordCount(count), wordCnt((count + kWordBits - 1) / kWordBits)
{
}

std::uint64_t
PackedTrace::takenCount() const
{
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < wordCnt; ++w)
        total += static_cast<std::uint64_t>(std::popcount(wordPtr[w]));
    return total;
}

} // namespace bpsim
