#include "trace/trace_store.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "trace/binary_io.hh"
#include "trace/codec.hh"
#include "trace/mmap_file.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

constexpr char kPackedMagic[4] = {'P', 'B', 'T', '1'};
/** Version 2 pads the taken bitmap to a kTraceArrayAlign file offset
 *  (see bitmapOffsetFor) so mmap'd views hand the replay kernels
 *  cache-line-aligned arrays; version-1 files are rejected and
 *  simply regenerated on the next store. */
constexpr std::uint32_t kPackedVersion = 2;
constexpr std::size_t kPackedHeaderSize = 64;

/* The pc array starts right after the header; its mmap'd alignment
 * is the header size. */
static_assert(kPackedHeaderSize % kTraceArrayAlign == 0,
              "PBT1 pc array must start cache-line aligned");

/** File offset of the taken bitmap for a @p count record trace: the
 *  pc array end, rounded up to the next kTraceArrayAlign boundary
 *  (the gap is zero bytes, excluded from the checksum). */
std::uint64_t
bitmapOffsetFor(std::uint64_t count)
{
    return (kPackedHeaderSize + 8 * count + kTraceArrayAlign - 1) /
           kTraceArrayAlign * kTraceArrayAlign;
}

constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    char text[17];
    std::snprintf(text, sizeof(text), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return text;
}

/** Checksums @p count words in their little-endian byte image. */
void
updateChecksumLe(Fnv1a &checksum, const std::uint64_t *words,
                 std::size_t count)
{
    if (count == 0)
        return;
    if constexpr (kLittleEndian) {
        checksum.update(reinterpret_cast<const std::uint8_t *>(words),
                        count * 8);
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            std::uint8_t bytes[8];
            putLe64(bytes, words[i]);
            checksum.update(bytes, 8);
        }
    }
}

/** Writes @p count words to @p out as little-endian bytes. */
bool
writeWordsLe(std::ofstream &out, const std::uint64_t *words,
             std::size_t count)
{
    if (count == 0)
        return static_cast<bool>(out);
    if constexpr (kLittleEndian) {
        out.write(reinterpret_cast<const char *>(words),
                  static_cast<std::streamsize>(count * 8));
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            std::uint8_t bytes[8];
            putLe64(bytes, words[i]);
            out.write(reinterpret_cast<const char *>(bytes), 8);
        }
    }
    return static_cast<bool>(out);
}

/** Replaces @p path atomically with the temp file @p tmp. */
bool
commitFile(const std::string &tmp, const std::string &path,
           std::string &why)
{
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        why = "cannot rename '" + tmp + "' to '" + path +
              "': " + ec.message();
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

TraceStore::TraceStore(std::string directory) : dir(std::move(directory))
{
    // Creation failures are not fatal: loads just miss and stores
    // report their open error.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        BPSIM_WARN("cannot create trace store directory '" << dir
                   << "': " << ec.message());
}

std::string
TraceStore::stemFor(const std::string &name, std::uint64_t fingerprint)
{
    std::string stem;
    stem.reserve(name.size() + 17);
    for (const char c : name) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_' || c == '-';
        stem.push_back(safe ? c : '_');
    }
    if (stem.empty())
        stem = "trace";
    return stem + "-" + fingerprintHex(fingerprint);
}

std::string
TraceStore::pathFor(const std::string &name, std::uint64_t fingerprint,
                    const std::string &extension) const
{
    return dir + "/" + stemFor(name, fingerprint) + extension;
}

StoreStatus
TraceStore::loadTrace(const std::string &name, std::uint64_t fingerprint,
                      std::uint64_t expectedRecords, MemoryTrace &out,
                      std::string &why) const
{
    const std::string path = pathFor(name, fingerprint, ".bbt1");
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        why = "no cached trace at '" + path + "'";
        return StoreStatus::Missing;
    }
    out.clear();
    out.reserve(static_cast<std::size_t>(expectedRecords));
    why = tryReadBinaryTrace(path, out);
    if (!why.empty()) {
        out.clear();
        return StoreStatus::Invalid;
    }
    if (out.size() != expectedRecords) {
        why = "'" + path + "' holds " + std::to_string(out.size()) +
              " records, expected " + std::to_string(expectedRecords);
        out.clear();
        return StoreStatus::Invalid;
    }
    return StoreStatus::Loaded;
}

bool
TraceStore::storeTrace(const std::string &name, std::uint64_t fingerprint,
                       const MemoryTrace &trace, std::string &why) const
{
    const std::string path = pathFor(name, fingerprint, ".bbt1");
    const std::string tmp = path + ".tmp";
    {
        // BinaryTraceWriter is fatal on open failure, so probe first;
        // a store that cannot write is a warning, not a death.
        std::ofstream probe(tmp, std::ios::binary | std::ios::trunc);
        if (!probe) {
            why = "cannot open '" + tmp + "' for writing";
            return false;
        }
    }
    BinaryTraceWriter writer(tmp);
    auto reader = trace.reader();
    BranchRecord record;
    while (reader.next(record))
        writer.append(record);
    writer.finish();
    return commitFile(tmp, path, why);
}

StoreStatus
TraceStore::loadPacked(const std::string &name, std::uint64_t fingerprint,
                       PackedTrace &out, std::string &why) const
{
    const std::string path = pathFor(name, fingerprint, ".pbt1");
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        why = "no cached packed trace at '" + path + "'";
        return StoreStatus::Missing;
    }

    std::string map_error;
    const std::shared_ptr<const MmapFile> file =
        MmapFile::open(path, map_error);
    if (!file) {
        why = map_error;
        return StoreStatus::Invalid;
    }
    if (file->size() < kPackedHeaderSize) {
        why = "'" + path + "' is too small to be a PBT1 trace";
        return StoreStatus::Invalid;
    }
    const std::uint8_t *base = file->data();
    if (std::memcmp(base, kPackedMagic, 4) != 0) {
        why = "'" + path + "' is not a PBT1 trace (bad magic)";
        return StoreStatus::Invalid;
    }
    const std::uint32_t version = getLe32(base + 4);
    if (version != kPackedVersion) {
        why = "'" + path + "': unsupported PBT1 version " +
              std::to_string(version);
        return StoreStatus::Invalid;
    }
    const std::uint64_t count = getLe64(base + 8);
    const std::uint64_t file_fingerprint = getLe64(base + 16);
    if (file_fingerprint != fingerprint) {
        why = "'" + path + "': fingerprint " +
              fingerprintHex(file_fingerprint) +
              " does not match expected " + fingerprintHex(fingerprint);
        return StoreStatus::Invalid;
    }
    const std::uint64_t words =
        (count + PackedTrace::kWordBits - 1) / PackedTrace::kWordBits;
    const std::uint64_t bitmap_offset = bitmapOffsetFor(count);
    const std::uint64_t expected_size = bitmap_offset + 8 * words;
    if (file->size() != expected_size) {
        why = "'" + path + "' is " + std::to_string(file->size()) +
              " bytes; " + std::to_string(count) + " records need " +
              std::to_string(expected_size);
        return StoreStatus::Invalid;
    }

    const std::uint8_t *pc_bytes = base + kPackedHeaderSize;
    const std::uint8_t *bitmap_bytes = base + bitmap_offset;
    Fnv1a checksum;
    checksum.update(pc_bytes, static_cast<std::size_t>(8 * count));
    checksum.update(bitmap_bytes, static_cast<std::size_t>(8 * words));
    if (checksum.digest() != getLe64(base + 24)) {
        why = "'" + path + "': checksum mismatch, file corrupt";
        return StoreStatus::Invalid;
    }

    if constexpr (kLittleEndian) {
        const auto *pcs =
            reinterpret_cast<const std::uint64_t *>(pc_bytes);
        const auto *bitmap =
            reinterpret_cast<const std::uint64_t *>(bitmap_bytes);
        // Padding bits past the last record must be zero or the
        // popcount-based takenCount() would drift.
        if (count % PackedTrace::kWordBits != 0 && words > 0) {
            const std::uint64_t padding =
                bitmap[words - 1] >>
                (count % PackedTrace::kWordBits);
            if (padding != 0) {
                why = "'" + path + "': nonzero bitmap padding bits";
                return StoreStatus::Invalid;
            }
        }
        out = PackedTrace(pcs, bitmap,
                          static_cast<std::size_t>(count), file);
    } else {
        TraceWordVector pcs(static_cast<std::size_t>(count));
        TraceWordVector bitmap(static_cast<std::size_t>(words));
        for (std::uint64_t i = 0; i < count; ++i)
            pcs[i] = getLe64(pc_bytes + 8 * i);
        for (std::uint64_t w = 0; w < words; ++w)
            bitmap[w] = getLe64(bitmap_bytes + 8 * w);
        if (count % PackedTrace::kWordBits != 0 && words > 0 &&
            (bitmap[words - 1] >> (count % PackedTrace::kWordBits)) !=
                0) {
            why = "'" + path + "': nonzero bitmap padding bits";
            return StoreStatus::Invalid;
        }
        out = PackedTrace(std::move(pcs), std::move(bitmap),
                          static_cast<std::size_t>(count));
    }
    return StoreStatus::Loaded;
}

bool
TraceStore::storePacked(const std::string &name,
                        std::uint64_t fingerprint,
                        const PackedTrace &trace, std::string &why) const
{
    const std::string path = pathFor(name, fingerprint, ".pbt1");
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        why = "cannot open '" + tmp + "' for writing";
        return false;
    }

    Fnv1a checksum;
    updateChecksumLe(checksum, trace.pcData(), trace.size());
    updateChecksumLe(checksum, trace.wordData(), trace.wordCount());

    std::uint8_t header[kPackedHeaderSize] = {};
    std::memcpy(header, kPackedMagic, 4);
    putLe32(header + 4, kPackedVersion);
    putLe64(header + 8, trace.size());
    putLe64(header + 16, fingerprint);
    putLe64(header + 24, checksum.digest());
    out.write(reinterpret_cast<const char *>(header), kPackedHeaderSize);

    // Zero gap up to the bitmap's aligned offset (not checksummed —
    // the digest covers exactly the two arrays).
    const char pad[kTraceArrayAlign] = {};
    const std::uint64_t pad_bytes =
        bitmapOffsetFor(trace.size()) -
        (kPackedHeaderSize + 8 * trace.size());

    if (!writeWordsLe(out, trace.pcData(), trace.size()) ||
        !out.write(pad, static_cast<std::streamsize>(pad_bytes)) ||
        !writeWordsLe(out, trace.wordData(), trace.wordCount())) {
        why = "I/O error writing '" + tmp + "'";
        out.close();
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    out.flush();
    const bool ok = static_cast<bool>(out);
    out.close();
    if (!ok) {
        why = "I/O error finalizing '" + tmp + "'";
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return commitFile(tmp, path, why);
}

std::string
resolveTraceStoreDir(const std::string &flagValue)
{
    std::string dir = flagValue;
    if (dir.empty()) {
        const char *env = std::getenv("BPSIM_TRACE_CACHE");
        dir = env != nullptr ? env : ".bpsim-cache";
    }
    if (dir == "none" || dir == "off" || dir == "0")
        return "";
    return dir;
}

} // namespace bpsim
