/**
 * @file
 * Aggregate statistics over a branch trace.
 *
 * Produces the columns of the paper's Table 2 (static and dynamic
 * conditional branch counts) plus the per-branch bias distribution
 * used to validate the synthetic workloads against the behaviour the
 * paper cites from Chang et al. (about half of dynamic branches come
 * from static branches biased >= 90% in one direction).
 */

#ifndef BPSIM_TRACE_TRACE_STATS_HH
#define BPSIM_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace_source.hh"

namespace bpsim
{

/** Execution summary of one static branch site. */
struct StaticBranchStats
{
    std::uint64_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t takenCount = 0;

    /** Fraction of executions that were taken. */
    double takenFraction() const;

    /**
     * True when the branch is biased at least @p threshold of the
     * time in one direction (taken or not-taken).
     */
    bool isStronglyBiased(double threshold = 0.9) const;
};

/** Whole-trace statistics (conditional branches only). */
class TraceStats
{
  public:
    /** Accumulates one record; non-conditional records are counted
     *  separately and otherwise ignored. */
    void observe(const BranchRecord &record);

    /** Convenience: drains @p reader into the accumulator. */
    void observeAll(TraceReader &reader);

    /** Number of distinct conditional branch sites seen. */
    std::uint64_t staticConditional() const;

    /** Number of dynamic conditional branch executions. */
    std::uint64_t dynamicConditional() const { return dynamicCount; }

    /** Dynamic records of non-conditional types. */
    std::uint64_t dynamicOther() const { return otherCount; }

    /** Fraction of dynamic conditional branches that were taken. */
    double takenFraction() const;

    /**
     * Fraction of dynamic conditional branches attributable to
     * static branches biased >= @p threshold in one direction.
     */
    double stronglyBiasedDynamicFraction(double threshold = 0.9) const;

    /** Per-site summaries, sorted by descending execution count. */
    std::vector<StaticBranchStats> perBranch() const;

  private:
    std::unordered_map<std::uint64_t, StaticBranchStats> branches;
    std::uint64_t dynamicCount = 0;
    std::uint64_t takenCount = 0;
    std::uint64_t otherCount = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_STATS_HH
