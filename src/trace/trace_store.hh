/**
 * @file
 * Persistent on-disk trace store.
 *
 * Generating a benchmark's synthetic trace costs far more than
 * replaying it through a predictor, and every campaign regenerates
 * the same 14 traces. The store persists each generated trace under a
 * cache directory in two sibling files keyed by benchmark name and
 * generator-spec fingerprint:
 *
 *   <name>-<fingerprint>.bbt1  the full record stream in the existing
 *                              BBT1 delta/varint format (binary_io.hh)
 *   <name>-<fingerprint>.pbt1  the PackedTrace SoA compaction in the
 *                              PBT1 raw little-endian format below
 *
 * PBT1 layout (all integers little-endian):
 *
 *   bytes 0..3    magic "PBT1"
 *   bytes 4..7    format version, u32 (currently 1)
 *   bytes 8..15   conditional record count, u64
 *   bytes 16..23  generator-spec fingerprint, u64
 *   bytes 24..31  FNV-1a checksum of the payload, u64
 *   bytes 32..63  reserved (zero)
 *   payload       pc array (count x u64) then taken bitmap
 *                 (ceil(count / 64) x u64, zero padding bits)
 *
 * The 64-byte header keeps the payload 8-byte aligned, so on a
 * little-endian host a warmed load mmaps the file and hands the
 * replay kernel a zero-copy PackedTrace view (trace/mmap_file.hh);
 * big-endian hosts decode into owned arrays instead.
 *
 * Every load re-validates the fallback ladder — file present, header
 * magic/version, fingerprint, size consistency, checksum — and any
 * failure is reported as Missing/Invalid, never a termination: the
 * caller (sim/trace_cache.hh) regenerates and rewrites. The store is
 * deliberately spec-agnostic: callers pass an opaque fingerprint
 * (TraceCache hashes the serialized WorkloadSpec plus a generator
 * version salt), which keeps this layer free of workload dependencies.
 */

#ifndef BPSIM_TRACE_TRACE_STORE_HH
#define BPSIM_TRACE_TRACE_STORE_HH

#include <cstdint>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{

/** Outcome of a store lookup. */
enum class StoreStatus
{
    /** File present, validated, and loaded. */
    Loaded,
    /** No cached file for this key (a plain cold miss). */
    Missing,
    /** File present but failed validation; regenerate and rewrite. */
    Invalid,
};

/** Reads and writes cached traces under one directory. */
class TraceStore
{
  public:
    /** Uses (and lazily creates) @p directory. */
    explicit TraceStore(std::string directory);

    const std::string &directory() const { return dir; }

    /** "<name sanitized>-<16 hex fingerprint digits>" — the shared
     *  file stem of one cached trace's BBT1/PBT1/spec files. */
    static std::string stemFor(const std::string &name,
                               std::uint64_t fingerprint);

    /** Full path of the cached file with @p extension (".bbt1",
     *  ".pbt1", ".spec"). */
    std::string pathFor(const std::string &name, std::uint64_t fingerprint,
                        const std::string &extension) const;

    /**
     * Loads the cached full trace into @p out.
     *
     * @param expectedRecords the record count the generator would
     *        produce; a mismatching file is Invalid
     * @param why set to the validation failure on Invalid (and to a
     *        short note on Missing)
     */
    StoreStatus loadTrace(const std::string &name,
                          std::uint64_t fingerprint,
                          std::uint64_t expectedRecords, MemoryTrace &out,
                          std::string &why) const;

    /** Writes the BBT1 file (atomically, via a temp file + rename).
     *  Returns false and sets @p why on I/O failure; never fatal. */
    bool storeTrace(const std::string &name, std::uint64_t fingerprint,
                    const MemoryTrace &trace, std::string &why) const;

    /** Loads the cached PackedTrace; on a little-endian host the
     *  result is a zero-copy view over the mmap'd file. */
    StoreStatus loadPacked(const std::string &name,
                           std::uint64_t fingerprint, PackedTrace &out,
                           std::string &why) const;

    /** Writes the PBT1 file (atomically). Returns false and sets
     *  @p why on I/O failure; never fatal. */
    bool storePacked(const std::string &name, std::uint64_t fingerprint,
                     const PackedTrace &trace, std::string &why) const;

  private:
    std::string dir;
};

/**
 * Resolves a trace-store directory from a `--trace-cache` flag value:
 * empty falls back to $BPSIM_TRACE_CACHE, then ".bpsim-cache";
 * "none", "off" or "0" disable the store (returns ""). Every driver
 * that owns a TraceCache routes its flag through here so the
 * flag/env/default ladder behaves identically across binaries.
 */
std::string resolveTraceStoreDir(const std::string &flagValue);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_STORE_HH
