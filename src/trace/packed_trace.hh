/**
 * @file
 * Structure-of-arrays compaction of a branch trace for fast replay.
 *
 * The replay kernel (sim/replay_kernel.hh) streams millions of
 * records per predictor configuration; the AoS BranchRecord layout
 * makes that loop memory-bound on padding (24 bytes per record, of
 * which the direction-prediction hot path reads 9 bits: the pc index
 * field and the outcome). PackedTrace compacts a MemoryTrace once
 * per benchmark — a contiguous pc array plus a taken bitmap, with
 * the non-conditional records the simulation loop would skip anyway
 * filtered out at pack time — and is then shared read-only across
 * every job that replays the benchmark.
 *
 * The arrays live behind a span: a PackedTrace either owns its
 * storage (packed from a MemoryTrace, or adopted vectors) or is a
 * zero-copy view over external storage — in practice an mmap'd PBT1
 * cache file (trace/trace_store.hh) kept alive by a shared_ptr. Both
 * cases present the identical read-only interface, so the replay
 * kernel never knows which it got.
 */

#ifndef BPSIM_TRACE_PACKED_TRACE_HH
#define BPSIM_TRACE_PACKED_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/memory_trace.hh"
#include "util/aligned.hh"

namespace bpsim
{

/* The kernel's block loop walks the bitmap 64 outcomes at a time and
 * the pc array as 8-byte lanes; both facts are load-bearing for the
 * word arithmetic in taken()/takenWord(). */
static_assert(sizeof(std::uint64_t) == 8 && alignof(std::uint64_t) == 8,
              "PackedTrace words must be 8-byte units");

/** Alignment of the pc array and taken bitmap — one cache line, so
 *  the replay kernels' streaming loads never straddle lines and the
 *  arrays are eligible for aligned vector loads. Owned storage gets
 *  it from TraceWordVector's allocator; PBT1 files place both arrays
 *  at multiple-of-64 offsets (trace/trace_store.cc), which mmap's
 *  page-aligned base turns into the same guarantee for views. */
constexpr std::size_t kTraceArrayAlign = 64;

/** Heap storage of PackedTrace's arrays: a uint64 vector whose
 *  allocation is cache-line aligned. */
using TraceWordVector =
    std::vector<std::uint64_t,
                AlignedAllocator<std::uint64_t, kTraceArrayAlign>>;

static_assert(kTraceArrayAlign % alignof(std::uint64_t) == 0,
              "array alignment must preserve word alignment");

/** Read-only SoA view of the conditional records of a trace. */
class PackedTrace
{
  public:
    /** Outcomes per bitmap word. */
    static constexpr std::size_t kWordBits = 64;

    PackedTrace() = default;

    /** Packs the conditional records of @p trace, in trace order. */
    explicit PackedTrace(const MemoryTrace &trace);

    /**
     * Adopts pre-built arrays (e.g. decoded from a PBT1 file on a
     * host that needed byte-swapping). @p words must hold
     * ceil(count / 64) entries with all padding bits past @p count
     * zero (takenCount() popcounts whole words).
     */
    PackedTrace(TraceWordVector pcs, TraceWordVector words,
                std::size_t count);

    /**
     * Zero-copy view: @p pcs (@p count entries) and @p words
     * (ceil(count / 64) entries, zero padding bits) point into
     * storage owned elsewhere; @p storage keeps that owner — an
     * mmap'd cache file — alive for the life of this trace.
     */
    PackedTrace(const std::uint64_t *pcs, const std::uint64_t *words,
                std::size_t count, std::shared_ptr<const void> storage);

    /* Moves are safe: vector moves transfer the heap allocation, so
     * the span pointers stay valid under their new owner. Copies are
     * disabled — traces are shared by reference, never duplicated. */
    PackedTrace(PackedTrace &&) noexcept = default;
    PackedTrace &operator=(PackedTrace &&) noexcept = default;
    PackedTrace(const PackedTrace &) = delete;
    PackedTrace &operator=(const PackedTrace &) = delete;

    /** Number of conditional records. */
    std::size_t size() const { return recordCount; }
    bool empty() const { return recordCount == 0; }

    /** pc of the i-th conditional record. */
    std::uint64_t pc(std::size_t i) const { return pcPtr[i]; }

    /** Outcome of the i-th conditional record. */
    bool
    taken(std::size_t i) const
    {
        return (wordPtr[i / kWordBits] >> (i % kWordBits)) & 1;
    }

    /** Bitmap word @p w: outcome of record 64w+j at bit j. Bits past
     *  size() are zero. */
    std::uint64_t takenWord(std::size_t w) const { return wordPtr[w]; }

    /** Number of bitmap words (== ceil(size() / 64)). */
    std::size_t wordCount() const { return wordCnt; }

    /** Contiguous pc array, size() entries. */
    const std::uint64_t *pcData() const { return pcPtr; }

    /** Contiguous taken bitmap, wordCount() entries. */
    const std::uint64_t *wordData() const { return wordPtr; }

    /** Total taken outcomes (bitmap population count). */
    std::uint64_t takenCount() const;

    /** True when this trace is a view over external storage (an
     *  mmap'd cache file) rather than owned arrays. */
    bool isView() const { return storage != nullptr; }

  private:
    /** Owned storage (kTraceArrayAlign-aligned); empty in view mode. */
    TraceWordVector ownedPcs;
    /** One bit per record, LSB-first within each word. */
    TraceWordVector ownedWords;
    /** Keeps external storage alive in view mode; null when owned. */
    std::shared_ptr<const void> storage;

    const std::uint64_t *pcPtr = nullptr;
    const std::uint64_t *wordPtr = nullptr;
    std::size_t recordCount = 0;
    std::size_t wordCnt = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_PACKED_TRACE_HH
