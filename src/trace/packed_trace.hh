/**
 * @file
 * Structure-of-arrays compaction of a branch trace for fast replay.
 *
 * The replay kernel (sim/replay_kernel.hh) streams millions of
 * records per predictor configuration; the AoS BranchRecord layout
 * makes that loop memory-bound on padding (24 bytes per record, of
 * which the direction-prediction hot path reads 9 bits: the pc index
 * field and the outcome). PackedTrace compacts a MemoryTrace once
 * per benchmark — a contiguous pc array plus a taken bitmap, with
 * the non-conditional records the simulation loop would skip anyway
 * filtered out at pack time — and is then shared read-only across
 * every job that replays the benchmark.
 */

#ifndef BPSIM_TRACE_PACKED_TRACE_HH
#define BPSIM_TRACE_PACKED_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/memory_trace.hh"

namespace bpsim
{

/* The kernel's block loop walks the bitmap 64 outcomes at a time and
 * the pc array as 8-byte lanes; both facts are load-bearing for the
 * word arithmetic in taken()/takenWord(). */
static_assert(sizeof(std::uint64_t) == 8 && alignof(std::uint64_t) == 8,
              "PackedTrace words must be 8-byte units");

/** Read-only SoA view of the conditional records of a trace. */
class PackedTrace
{
  public:
    /** Outcomes per bitmap word. */
    static constexpr std::size_t kWordBits = 64;

    PackedTrace() = default;

    /** Packs the conditional records of @p trace, in trace order. */
    explicit PackedTrace(const MemoryTrace &trace);

    /** Number of conditional records. */
    std::size_t size() const { return pcs.size(); }
    bool empty() const { return pcs.empty(); }

    /** pc of the i-th conditional record. */
    std::uint64_t pc(std::size_t i) const { return pcs[i]; }

    /** Outcome of the i-th conditional record. */
    bool
    taken(std::size_t i) const
    {
        return (words[i / kWordBits] >> (i % kWordBits)) & 1;
    }

    /** Bitmap word @p w: outcome of record 64w+j at bit j. Bits past
     *  size() are zero. */
    std::uint64_t takenWord(std::size_t w) const { return words[w]; }

    /** Number of bitmap words (== ceil(size() / 64)). */
    std::size_t wordCount() const { return words.size(); }

    /** Contiguous pc array, size() entries. */
    const std::uint64_t *pcData() const { return pcs.data(); }

    /** Total taken outcomes (bitmap population count). */
    std::uint64_t takenCount() const;

  private:
    std::vector<std::uint64_t> pcs;
    /** One bit per record, LSB-first within each word. */
    std::vector<std::uint64_t> words;
};

} // namespace bpsim

#endif // BPSIM_TRACE_PACKED_TRACE_HH
