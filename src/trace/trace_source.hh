/**
 * @file
 * Abstract interfaces for producing and consuming branch traces.
 *
 * The analyses in this project are replay-based: the bias-class
 * transition study (paper Table 4) needs a second pass over the same
 * trace, so every reader supports rewind().
 */

#ifndef BPSIM_TRACE_TRACE_SOURCE_HH
#define BPSIM_TRACE_TRACE_SOURCE_HH

#include <cstdint>
#include <optional>

#include "trace/branch_record.hh"

namespace bpsim
{

/** A rewindable stream of branch records. */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    /**
     * Fetches the next record.
     *
     * @param record output slot, written only on success
     * @retval true a record was produced
     * @retval false end of trace
     */
    virtual bool next(BranchRecord &record) = 0;

    /** Restarts the stream from the first record. */
    virtual void rewind() = 0;

    /** Total record count if known up front. */
    virtual std::optional<std::uint64_t> size() const { return std::nullopt; }
};

/** A sink accepting branch records in trace order. */
class TraceWriter
{
  public:
    virtual ~TraceWriter() = default;

    /** Appends one record. */
    virtual void append(const BranchRecord &record) = 0;

    /** Flushes buffered state; must be called before the sink is read. */
    virtual void finish() = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_SOURCE_HH
