/**
 * @file
 * Shared-ownership handles for traces flowing through campaign jobs.
 *
 * Campaign jobs historically borrowed `const MemoryTrace *` /
 * `const PackedTrace *` from the caller, with a "must outlive the
 * run" contract that is easy to honour in a run-to-completion driver
 * and impossible to audit in a long-running service where jobs from
 * many clients overlap arbitrary trace-cache lifetimes. SharedHandle
 * closes that hole: a job that carries an *owning* handle keeps its
 * trace alive for exactly as long as the job (and its queued result)
 * exists, by construction.
 *
 * The handle is deliberately pointer-shaped — implicit construction
 * from a raw pointer (non-owning, the legacy borrow), `->`/`*`
 * dereference, and nullptr comparisons — so every existing driver
 * and aggregate initializer (`{"gcc", &trace}`) compiles unchanged.
 * New code (TraceCache::handleFor(), resolveTraces(), the campaign
 * service) hands out owning handles backed by shared_ptr.
 */

#ifndef BPSIM_TRACE_TRACE_HANDLE_HH
#define BPSIM_TRACE_TRACE_HANDLE_HH

#include <cstddef>
#include <memory>

namespace bpsim
{

class MemoryTrace;
class PackedTrace;

/** Pointer-compatible handle that may share ownership of a T. */
template <typename T>
class SharedHandle
{
  public:
    SharedHandle() = default;
    SharedHandle(std::nullptr_t) {}

    /** Non-owning borrow; @p borrowed must outlive every use of the
     *  handle (the legacy raw-pointer contract). */
    SharedHandle(const T *borrowed)
        : ptr(std::shared_ptr<const T>(), borrowed)
    {
    }

    /** Shared ownership: the handle keeps the object alive. */
    SharedHandle(std::shared_ptr<const T> owned) : ptr(std::move(owned)) {}

    const T *get() const { return ptr.get(); }
    const T &operator*() const { return *ptr; }
    const T *operator->() const { return ptr.get(); }
    explicit operator bool() const { return ptr != nullptr; }

    /** True when the handle actually owns (shares) its target; false
     *  for borrows and empty handles. */
    bool owning() const { return ptr.use_count() != 0; }

    /** Handles compare by target identity, like the raw pointers
     *  they replaced. */
    friend bool operator==(const SharedHandle &a, const SharedHandle &b)
    {
        return a.ptr.get() == b.ptr.get();
    }
    friend bool operator!=(const SharedHandle &a, const SharedHandle &b)
    {
        return a.ptr.get() != b.ptr.get();
    }
    friend bool operator==(const SharedHandle &h, std::nullptr_t)
    {
        return h.ptr == nullptr;
    }
    friend bool operator==(std::nullptr_t, const SharedHandle &h)
    {
        return h.ptr == nullptr;
    }
    friend bool operator!=(const SharedHandle &h, std::nullptr_t)
    {
        return h.ptr != nullptr;
    }
    friend bool operator!=(std::nullptr_t, const SharedHandle &h)
    {
        return h.ptr != nullptr;
    }

  private:
    /** The borrow constructor uses the aliasing shared_ptr form (no
     *  control block), so borrows cost nothing and owning() can tell
     *  the two apart via use_count(). */
    std::shared_ptr<const T> ptr;
};

/** A (possibly shared-owning) handle to a full in-memory trace. */
using TraceHandle = SharedHandle<MemoryTrace>;

/** A (possibly shared-owning) handle to a packed SoA trace. */
using PackedTraceHandle = SharedHandle<PackedTrace>;

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_HANDLE_HH
