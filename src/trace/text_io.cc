#include "trace/text_io.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace bpsim
{

TextTraceWriter::TextTraceWriter(const std::string &path)
    : path(path), file(path, std::ios::trunc)
{
    if (!file)
        BPSIM_FATAL("cannot open trace file '" << path << "' for writing");
    file << "# bimode-bp text trace v1: pc target type taken\n";
}

void
TextTraceWriter::append(const BranchRecord &record)
{
    char line[96];
    std::snprintf(line, sizeof(line), "0x%llx 0x%llx %s %c\n",
                  static_cast<unsigned long long>(record.pc),
                  static_cast<unsigned long long>(record.target),
                  branchTypeName(record.type), record.taken ? 'T' : 'N');
    file << line;
}

void
TextTraceWriter::finish()
{
    file.flush();
    if (!file)
        BPSIM_FATAL("I/O error while writing trace file '" << path << "'");
}

TextTraceReader::TextTraceReader(const std::string &path)
    : path(path), file(path)
{
    if (!file)
        BPSIM_FATAL("cannot open trace file '" << path << "'");
}

bool
TextTraceReader::next(BranchRecord &record)
{
    std::string line;
    while (std::getline(file, line)) {
        ++lineNumber;
        // Strip comments and skip blank lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string pc_text, target_text, type_text, taken_text;
        if (!(fields >> pc_text))
            continue;
        if (!(fields >> target_text >> type_text >> taken_text))
            BPSIM_FATAL(path << ":" << lineNumber << ": malformed record");

        char *end = nullptr;
        record.pc = std::strtoull(pc_text.c_str(), &end, 0);
        if (*end != '\0')
            BPSIM_FATAL(path << ":" << lineNumber << ": bad pc '"
                        << pc_text << "'");
        record.target = std::strtoull(target_text.c_str(), &end, 0);
        if (*end != '\0')
            BPSIM_FATAL(path << ":" << lineNumber << ": bad target '"
                        << target_text << "'");
        record.type = branchTypeFromName(type_text);
        if (taken_text == "T") {
            record.taken = true;
        } else if (taken_text == "N") {
            record.taken = false;
        } else {
            BPSIM_FATAL(path << ":" << lineNumber << ": bad outcome '"
                        << taken_text << "' (expected T or N)");
        }
        return true;
    }
    return false;
}

void
TextTraceReader::rewind()
{
    file.clear();
    file.seekg(0);
    lineNumber = 0;
}

} // namespace bpsim
