#include "trace/branch_record.hh"

#include "util/logging.hh"

namespace bpsim
{

const char *
branchTypeName(BranchType type)
{
    switch (type) {
      case BranchType::Conditional: return "cond";
      case BranchType::Unconditional: return "jump";
      case BranchType::Call: return "call";
      case BranchType::Return: return "ret";
      case BranchType::IndirectJump: return "ijump";
    }
    return "?";
}

BranchType
branchTypeFromName(const std::string &name)
{
    if (name == "cond")
        return BranchType::Conditional;
    if (name == "jump")
        return BranchType::Unconditional;
    if (name == "call")
        return BranchType::Call;
    if (name == "ret")
        return BranchType::Return;
    if (name == "ijump")
        return BranchType::IndirectJump;
    BPSIM_FATAL("unknown branch type '" << name << "'");
}

} // namespace bpsim
