#include "trace/codec.hh"

namespace bpsim
{

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

bool
getVarint(const std::uint8_t *data, std::size_t size,
          std::size_t &offset, std::uint64_t &value)
{
    std::uint64_t result = 0;
    unsigned shift = 0;
    while (offset < size && shift < 64) {
        const std::uint8_t byte = data[offset++];
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            value = result;
            return true;
        }
        shift += 7;
    }
    return false;
}

} // namespace bpsim
