/**
 * @file
 * Compact static-branch ids for a PackedTrace.
 *
 * The per-branch accounting probes (sim/probe.hh) need a dense
 * counter array indexed per static branch, hot enough to live inside
 * the replay kernels' inner loops — a hash lookup per dynamic branch
 * would cost more than the prediction it instruments. PcIndex maps
 * each distinct pc of a PackedTrace to a small integer id once, up
 * front, and materializes the id of every dynamic record as a
 * contiguous uint32 array parallel to the trace's pc array. A probe
 * then indexes its counters with one load: ids[i].
 *
 * Ids are assigned in first-appearance order over the whole trace
 * (warm-up records included), so the id of a branch never depends on
 * the warm-up split a particular run uses — the same index serves
 * every SimConfig over the trace, and a TraceCache-shared trace needs
 * only one.
 *
 * Executions and taken counts per static branch are lane- and
 * predictor-independent (they are facts of the trace), so probes only
 * accumulate mispredictions; countRange() recovers the other two
 * columns from the trace itself for any measured region.
 */

#ifndef BPSIM_TRACE_PC_INDEX_HH
#define BPSIM_TRACE_PC_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/packed_trace.hh"

namespace bpsim
{

/** First-appearance-ordered dense ids for a trace's static branches. */
class PcIndex
{
  public:
    /** Builds the id arrays for @p packed (one full trace pass). */
    explicit PcIndex(const PackedTrace &packed);

    /** Distinct static branches in the trace. */
    std::size_t staticCount() const { return pcs.size(); }

    /** Dynamic record count the index was built over. */
    std::size_t size() const { return recordIds.size(); }

    /** Per-record ids, parallel to PackedTrace::pcData(). */
    const std::uint32_t *idData() const { return recordIds.data(); }

    /** pc of static branch @p id. */
    std::uint64_t pcOf(std::uint32_t id) const { return pcs[id]; }

    /** Per-static-branch execution/taken counts over one region. */
    struct RangeCounts
    {
        /** Both vectors have staticCount() entries; branches that do
         *  not execute in the region hold zero. */
        std::vector<std::uint64_t> executions;
        std::vector<std::uint64_t> taken;
    };

    /**
     * Counts executions and taken outcomes per static branch over
     * records [@p from, @p to) of @p packed — the measured region of
     * a replay. @p packed must be the trace this index was built
     * from.
     */
    RangeCounts countRange(const PackedTrace &packed, std::size_t from,
                           std::size_t to) const;

  private:
    /** id of record i (first-appearance order). */
    std::vector<std::uint32_t> recordIds;
    /** pc of id k. */
    std::vector<std::uint64_t> pcs;
};

} // namespace bpsim

#endif // BPSIM_TRACE_PC_INDEX_HH
