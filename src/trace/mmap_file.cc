#include "trace/mmap_file.hh"

#include <cerrno>
#include <cstring>
#include <fstream>

#if !defined(_WIN32)
#define BPSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bpsim
{

namespace
{

/** Reads the whole file into @p out (8-aligned words); "" on success. */
std::string
readWhole(const std::string &path, std::vector<std::uint64_t> &out,
          std::size_t &length)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return "cannot open '" + path + "'";
    const std::streamoff size = in.tellg();
    in.seekg(0);
    length = static_cast<std::size_t>(size);
    out.resize((length + 7) / 8, 0);
    if (length > 0) {
        in.read(reinterpret_cast<char *>(out.data()),
                static_cast<std::streamsize>(length));
        if (!in)
            return "I/O error reading '" + path + "'";
    }
    return "";
}

} // namespace

std::shared_ptr<const MmapFile>
MmapFile::open(const std::string &path, std::string &error)
{
    std::shared_ptr<MmapFile> file(new MmapFile);
    error.clear();

#if BPSIM_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open '" + path + "': " +
                std::strerror(errno);
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        error = "'" + path + "' is not a regular file";
        return nullptr;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap of length 0 is invalid; an empty file needs no storage.
        ::close(fd);
        file->length = 0;
        return file;
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
        file->base = static_cast<const std::uint8_t *>(map);
        file->length = size;
        file->mapped = true;
        return file;
    }
    // Fall through to the buffered path on mmap failure.
#endif

    std::size_t length = 0;
    const std::string read_error = readWhole(path, file->fallback, length);
    if (!read_error.empty()) {
        error = read_error;
        return nullptr;
    }
    file->length = length;
    file->base = length == 0
                     ? nullptr
                     : reinterpret_cast<const std::uint8_t *>(
                           file->fallback.data());
    return file;
}

MmapFile::~MmapFile()
{
#if BPSIM_HAVE_MMAP
    if (mapped && base != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base), length);
#endif
}

} // namespace bpsim
