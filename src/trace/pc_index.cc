#include "trace/pc_index.hh"

#include <unordered_map>

namespace bpsim
{

PcIndex::PcIndex(const PackedTrace &packed)
{
    const std::size_t total = packed.size();
    const std::uint64_t *pcData = packed.pcData();
    recordIds.resize(total);

    std::unordered_map<std::uint64_t, std::uint32_t> idOf;
    // Static footprints are small next to dynamic counts; a generous
    // initial bucket count avoids most rehashing without guessing.
    idOf.reserve(1024);
    for (std::size_t i = 0; i < total; ++i) {
        const std::uint64_t pc = pcData[i];
        const auto [it, inserted] = idOf.try_emplace(
            pc, static_cast<std::uint32_t>(pcs.size()));
        if (inserted)
            pcs.push_back(pc);
        recordIds[i] = it->second;
    }
}

PcIndex::RangeCounts
PcIndex::countRange(const PackedTrace &packed, std::size_t from,
                    std::size_t to) const
{
    RangeCounts counts;
    counts.executions.assign(staticCount(), 0);
    counts.taken.assign(staticCount(), 0);
    for (std::size_t i = from; i < to; ++i) {
        const std::uint32_t id = recordIds[i];
        ++counts.executions[id];
        counts.taken[id] +=
            static_cast<std::uint64_t>(packed.taken(i));
    }
    return counts;
}

} // namespace bpsim
