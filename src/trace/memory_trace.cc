#include "trace/memory_trace.hh"

namespace bpsim
{

void
MemoryTrace::append(const BranchRecord &record)
{
    records.push_back(record);
}

MemoryTrace::Reader
MemoryTrace::reader() const
{
    return Reader(*this);
}

} // namespace bpsim
