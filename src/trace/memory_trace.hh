/**
 * @file
 * A trace held in memory, the workhorse container of the harness.
 *
 * Synthetic workloads are generated once into a MemoryTrace and then
 * replayed across dozens of predictor configurations, so the storage
 * layout is kept compact (16 bytes per record after type packing).
 */

#ifndef BPSIM_TRACE_MEMORY_TRACE_HH
#define BPSIM_TRACE_MEMORY_TRACE_HH

#include <cstddef>
#include <vector>

#include "trace/trace_source.hh"

namespace bpsim
{

/** Growable in-memory branch trace. */
class MemoryTrace : public TraceWriter
{
  public:
    MemoryTrace() = default;

    /** Reserves capacity for @p n records. */
    void reserve(std::size_t n) { records.reserve(n); }

    void append(const BranchRecord &record) override;
    void finish() override {}

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    const BranchRecord &operator[](std::size_t i) const { return records[i]; }

    const std::vector<BranchRecord> &data() const { return records; }

    /** Drops all records. */
    void clear() { records.clear(); }

    /** Creates a reader over this trace; the trace must outlive it. */
    class Reader;
    Reader reader() const;

  private:
    std::vector<BranchRecord> records;
};

/** Rewindable cursor over a MemoryTrace. */
class MemoryTrace::Reader : public TraceReader
{
  public:
    explicit Reader(const MemoryTrace &trace) : trace(&trace) {}

    bool
    next(BranchRecord &record) override
    {
        if (position >= trace->size())
            return false;
        record = (*trace)[position++];
        return true;
    }

    void rewind() override { position = 0; }

    std::optional<std::uint64_t>
    size() const override
    {
        return trace->size();
    }

  private:
    const MemoryTrace *trace;
    std::size_t position = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_MEMORY_TRACE_HH
