/**
 * @file
 * Human-readable branch trace format.
 *
 * One record per line:
 *   <pc-hex> <target-hex> <type> <T|N>
 * e.g.
 *   0x401000 0x401040 cond T
 * Blank lines and lines starting with '#' are ignored on input.
 */

#ifndef BPSIM_TRACE_TEXT_IO_HH
#define BPSIM_TRACE_TEXT_IO_HH

#include <fstream>
#include <string>

#include "trace/trace_source.hh"

namespace bpsim
{

/** Writes records as text lines. */
class TextTraceWriter : public TraceWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit TextTraceWriter(const std::string &path);

    void append(const BranchRecord &record) override;
    void finish() override;

  private:
    std::string path;
    std::ofstream file;
};

/** Parses text-format traces; fatal() with a line number on errors. */
class TextTraceReader : public TraceReader
{
  public:
    explicit TextTraceReader(const std::string &path);

    bool next(BranchRecord &record) override;
    void rewind() override;

  private:
    std::string path;
    std::ifstream file;
    std::uint64_t lineNumber = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TEXT_IO_HH
