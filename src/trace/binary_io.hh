/**
 * @file
 * The BBT1 on-disk branch-trace format.
 *
 * Layout:
 *   bytes 0..3    magic "BBT1"
 *   bytes 4..7    format version, little-endian u32 (currently 1)
 *   bytes 8..15   record count, little-endian u64
 *   bytes 16..23  reserved (zero)
 *   payload       per-record encoding (below)
 *   last 8 bytes  FNV-1a checksum of the payload, little-endian u64
 *
 * Each record is encoded as
 *   flags varint  bit 0 = taken, bits 1..3 = BranchType
 *   pc    varint  zigzag delta from the previous record's pc
 *   tgt   varint  zigzag delta from this record's pc
 *
 * Consecutive branch pcs are near each other and targets are near
 * their branches, so typical traces cost a few bytes per record.
 */

#ifndef BPSIM_TRACE_BINARY_IO_HH
#define BPSIM_TRACE_BINARY_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/codec.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/** Streams records into a BBT1 file. */
class BinaryTraceWriter : public TraceWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit BinaryTraceWriter(const std::string &path);

    /** finish() must already have been called (checked). */
    ~BinaryTraceWriter() override;

    void append(const BranchRecord &record) override;

    /** Patches the header count and appends the checksum. */
    void finish() override;

    std::uint64_t recordsWritten() const { return count; }

  private:
    void flushBuffer();

    std::string path;
    std::ofstream file;
    std::vector<std::uint8_t> buffer;
    Fnv1a checksum;
    std::uint64_t count = 0;
    std::uint64_t previousPc = 0;
    bool finished = false;
};

/** Reads a BBT1 file; the whole payload is validated at open time. */
class BinaryTraceReader : public TraceReader
{
  public:
    /** Opens and validates @p path; fatal() on any format error. */
    explicit BinaryTraceReader(const std::string &path);

    bool next(BranchRecord &record) override;
    void rewind() override;
    std::optional<std::uint64_t> size() const override { return count; }

  private:
    std::vector<std::uint8_t> payload;
    std::uint64_t count = 0;
    std::uint64_t produced = 0;
    std::size_t offset = 0;
    std::uint64_t previousPc = 0;
};

/** Convenience: writes an entire reader's contents to @p path. */
std::uint64_t writeBinaryTrace(TraceReader &reader, const std::string &path);

/** Convenience: loads an entire BBT1 file into memory. */
void readBinaryTrace(const std::string &path, TraceWriter &sink);

/**
 * Non-fatal variant of readBinaryTrace() for callers that treat a
 * bad file as recoverable (the trace store regenerates instead of
 * terminating). Returns "" on success; otherwise the validation or
 * decode error, in which case @p sink holds a partial stream the
 * caller must discard. finish() is called on @p sink only on success.
 */
std::string tryReadBinaryTrace(const std::string &path,
                               TraceWriter &sink);

} // namespace bpsim

#endif // BPSIM_TRACE_BINARY_IO_HH
