/**
 * @file
 * Read-only memory-mapped file with a buffered-read fallback.
 *
 * The trace store serves PackedTrace payloads straight out of PBT1
 * files; mapping the file lets a warmed cache hand the replay kernel
 * a zero-copy view of the pc array and taken bitmap. When mmap is
 * unavailable (non-POSIX host, special filesystem), the file is read
 * into an 8-byte-aligned heap buffer instead — same interface, one
 * copy, still correct.
 */

#ifndef BPSIM_TRACE_MMAP_FILE_HH
#define BPSIM_TRACE_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bpsim
{

/** An immutable byte view of a whole file, mapped when possible. */
class MmapFile
{
  public:
    /**
     * Opens @p path read-only. Returns null and sets @p error on
     * failure; never terminates (the trace store treats every failure
     * as a cache miss). The shared_ptr keeps the mapping alive for
     * any view handed out over it.
     */
    static std::shared_ptr<const MmapFile> open(const std::string &path,
                                                std::string &error);

    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** First byte of the file contents; 8-byte aligned (page-aligned
     *  when mapped). Null for an empty file. */
    const std::uint8_t *data() const { return base; }

    /** File size in bytes. */
    std::size_t size() const { return length; }

    /** True when the contents are an actual mmap (zero-copy), false
     *  when the heap fallback was used. */
    bool isMapped() const { return mapped; }

  private:
    MmapFile() = default;

    const std::uint8_t *base = nullptr;
    std::size_t length = 0;
    bool mapped = false;
    /** Heap fallback storage; uint64 elements keep data() 8-aligned. */
    std::vector<std::uint64_t> fallback;
};

} // namespace bpsim

#endif // BPSIM_TRACE_MMAP_FILE_HH
