/**
 * @file
 * The unit of a branch trace.
 *
 * The paper's evaluation is trace-driven over streams of conditional
 * branch outcomes; the record carries enough information (pc, target,
 * class, outcome) for conditional-direction prediction studies and
 * for future target-prediction extensions.
 */

#ifndef BPSIM_TRACE_BRANCH_RECORD_HH
#define BPSIM_TRACE_BRANCH_RECORD_HH

#include <cstdint>
#include <string>

namespace bpsim
{

/** Architectural class of a branch instruction. */
enum class BranchType : std::uint8_t
{
    Conditional = 0,
    Unconditional = 1,
    Call = 2,
    Return = 3,
    IndirectJump = 4,
};

/** Human-readable name of a BranchType. */
const char *branchTypeName(BranchType type);

/** Parses branchTypeName() output back to the enum; fatal on error. */
BranchType branchTypeFromName(const std::string &name);

/**
 * One dynamic branch instance.
 *
 * Addresses are byte addresses; synthetic workloads emit 4-byte
 * aligned instruction addresses like the MIPS/Alpha machines the
 * paper traced.
 */
struct BranchRecord
{
    /** Address of the branch instruction. */
    std::uint64_t pc = 0;
    /** Address control transfers to when the branch is taken. */
    std::uint64_t target = 0;
    /** Architectural class. */
    BranchType type = BranchType::Conditional;
    /** Resolved direction; always true for unconditional classes. */
    bool taken = false;

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && target == other.target &&
               type == other.type && taken == other.taken;
    }

    /** True for the records the predictors in this project handle. */
    bool isConditional() const { return type == BranchType::Conditional; }
};

/* The AoS record pads 18 bytes of payload to 24; replay-heavy code
 * streams PackedTrace (trace/packed_trace.hh) instead, which keeps
 * only the fields the direction-prediction loop reads. A changed
 * size here means the packing trade-off should be re-examined. */
static_assert(sizeof(BranchRecord) == 24,
              "BranchRecord is expected to be a padded 24-byte record");

} // namespace bpsim

#endif // BPSIM_TRACE_BRANCH_RECORD_HH
