#include "trace/binary_io.hh"

#include <cstring>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

constexpr char kMagic[4] = {'B', 'B', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kFlushThreshold = 1 << 20;

void
putLe32(std::uint8_t *out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
putLe64(std::uint8_t *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t
getLe32(const std::uint8_t *in)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return value;
}

std::uint64_t
getLe64(const std::uint8_t *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

} // namespace

BinaryTraceWriter::BinaryTraceWriter(const std::string &path)
    : path(path), file(path, std::ios::binary | std::ios::trunc)
{
    if (!file)
        BPSIM_FATAL("cannot open trace file '" << path << "' for writing");
    std::uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, 4);
    putLe32(header + 4, kVersion);
    // Count (bytes 8..15) is patched in finish().
    file.write(reinterpret_cast<const char *>(header), kHeaderSize);
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    if (!finished)
        BPSIM_WARN("BinaryTraceWriter for '" << path
                   << "' destroyed without finish(); file is truncated");
}

void
BinaryTraceWriter::append(const BranchRecord &record)
{
    if (finished)
        BPSIM_PANIC("append() after finish()");
    const std::uint64_t flags =
        (static_cast<std::uint64_t>(record.type) << 1) |
        (record.taken ? 1 : 0);
    putVarint(buffer, flags);
    putVarint(buffer, zigzagEncode(static_cast<std::int64_t>(
        record.pc - previousPc)));
    putVarint(buffer, zigzagEncode(static_cast<std::int64_t>(
        record.target - record.pc)));
    previousPc = record.pc;
    ++count;
    if (buffer.size() >= kFlushThreshold)
        flushBuffer();
}

void
BinaryTraceWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    checksum.update(buffer.data(), buffer.size());
    file.write(reinterpret_cast<const char *>(buffer.data()),
               static_cast<std::streamsize>(buffer.size()));
    buffer.clear();
}

void
BinaryTraceWriter::finish()
{
    if (finished)
        return;
    flushBuffer();
    std::uint8_t trailer[8];
    putLe64(trailer, checksum.digest());
    file.write(reinterpret_cast<const char *>(trailer), 8);
    file.seekp(8);
    std::uint8_t count_bytes[8];
    putLe64(count_bytes, count);
    file.write(reinterpret_cast<const char *>(count_bytes), 8);
    file.flush();
    if (!file)
        BPSIM_FATAL("I/O error while finalizing trace file '" << path << "'");
    file.close();
    finished = true;
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        BPSIM_FATAL("cannot open trace file '" << path << "'");
    const std::streamoff file_size = in.tellg();
    if (file_size < static_cast<std::streamoff>(kHeaderSize + 8))
        BPSIM_FATAL("'" << path << "' is too small to be a BBT1 trace");
    in.seekg(0);

    std::uint8_t header[kHeaderSize];
    in.read(reinterpret_cast<char *>(header), kHeaderSize);
    if (std::memcmp(header, kMagic, 4) != 0)
        BPSIM_FATAL("'" << path << "' is not a BBT1 trace (bad magic)");
    const std::uint32_t version = getLe32(header + 4);
    if (version != kVersion)
        BPSIM_FATAL("'" << path << "': unsupported BBT1 version "
                    << version);
    count = getLe64(header + 8);

    const std::size_t payload_size =
        static_cast<std::size_t>(file_size) - kHeaderSize - 8;
    payload.resize(payload_size);
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload_size));
    std::uint8_t trailer[8];
    in.read(reinterpret_cast<char *>(trailer), 8);
    if (!in)
        BPSIM_FATAL("I/O error while reading '" << path << "'");

    Fnv1a checksum;
    checksum.update(payload.data(), payload.size());
    if (checksum.digest() != getLe64(trailer))
        BPSIM_FATAL("'" << path << "': checksum mismatch, file corrupt");
}

bool
BinaryTraceReader::next(BranchRecord &record)
{
    if (produced >= count)
        return false;
    std::uint64_t flags, pc_delta, target_delta;
    if (!getVarint(payload.data(), payload.size(), offset, flags) ||
        !getVarint(payload.data(), payload.size(), offset, pc_delta) ||
        !getVarint(payload.data(), payload.size(), offset, target_delta)) {
        BPSIM_FATAL("BBT1 payload ended early at record " << produced);
    }
    record.taken = flags & 1;
    const std::uint64_t type_bits = (flags >> 1) & 0x7;
    if (type_bits > static_cast<std::uint64_t>(BranchType::IndirectJump))
        BPSIM_FATAL("BBT1 record " << produced << " has invalid type "
                    << type_bits);
    record.type = static_cast<BranchType>(type_bits);
    record.pc = previousPc +
        static_cast<std::uint64_t>(zigzagDecode(pc_delta));
    record.target = record.pc +
        static_cast<std::uint64_t>(zigzagDecode(target_delta));
    previousPc = record.pc;
    ++produced;
    return true;
}

void
BinaryTraceReader::rewind()
{
    produced = 0;
    offset = 0;
    previousPc = 0;
}

std::uint64_t
writeBinaryTrace(TraceReader &reader, const std::string &path)
{
    BinaryTraceWriter writer(path);
    BranchRecord record;
    while (reader.next(record))
        writer.append(record);
    writer.finish();
    return writer.recordsWritten();
}

void
readBinaryTrace(const std::string &path, TraceWriter &sink)
{
    BinaryTraceReader reader(path);
    BranchRecord record;
    while (reader.next(record))
        sink.append(record);
    sink.finish();
}

} // namespace bpsim
