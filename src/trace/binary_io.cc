#include "trace/binary_io.hh"

#include <cstring>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

constexpr char kMagic[4] = {'B', 'B', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kFlushThreshold = 1 << 20;

/*
 * The open/decode steps below return error strings instead of
 * terminating so both surfaces share them: BinaryTraceReader keeps
 * the fatal() contract for command-line users, tryReadBinaryTrace()
 * reports the same errors non-fatally for the trace store's
 * regenerate-on-corruption ladder.
 */

/** Validates the header/checksum of @p path and extracts the payload
 *  and record count; "" on success. */
std::string
openPayload(const std::string &path, std::vector<std::uint8_t> &payload,
            std::uint64_t &count)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return "cannot open trace file '" + path + "'";
    const std::streamoff file_size = in.tellg();
    if (file_size < static_cast<std::streamoff>(kHeaderSize + 8))
        return "'" + path + "' is too small to be a BBT1 trace";
    in.seekg(0);

    std::uint8_t header[kHeaderSize];
    in.read(reinterpret_cast<char *>(header), kHeaderSize);
    if (std::memcmp(header, kMagic, 4) != 0)
        return "'" + path + "' is not a BBT1 trace (bad magic)";
    const std::uint32_t version = getLe32(header + 4);
    if (version != kVersion)
        return "'" + path + "': unsupported BBT1 version " +
               std::to_string(version);
    count = getLe64(header + 8);

    const std::size_t payload_size =
        static_cast<std::size_t>(file_size) - kHeaderSize - 8;
    payload.resize(payload_size);
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload_size));
    std::uint8_t trailer[8];
    in.read(reinterpret_cast<char *>(trailer), 8);
    if (!in)
        return "I/O error while reading '" + path + "'";

    Fnv1a checksum;
    checksum.update(payload.data(), payload.size());
    if (checksum.digest() != getLe64(trailer))
        return "'" + path + "': checksum mismatch, file corrupt";
    return "";
}

/** Decodes the record at @p offset (the @p produced -th one); "" on
 *  success. */
std::string
decodeRecord(const std::vector<std::uint8_t> &payload,
             std::size_t &offset, std::uint64_t &previousPc,
             std::uint64_t produced, BranchRecord &record)
{
    std::uint64_t flags, pc_delta, target_delta;
    if (!getVarint(payload.data(), payload.size(), offset, flags) ||
        !getVarint(payload.data(), payload.size(), offset, pc_delta) ||
        !getVarint(payload.data(), payload.size(), offset,
                   target_delta)) {
        return "BBT1 payload ended early at record " +
               std::to_string(produced);
    }
    record.taken = flags & 1;
    const std::uint64_t type_bits = (flags >> 1) & 0x7;
    if (type_bits > static_cast<std::uint64_t>(BranchType::IndirectJump))
        return "BBT1 record " + std::to_string(produced) +
               " has invalid type " + std::to_string(type_bits);
    record.type = static_cast<BranchType>(type_bits);
    record.pc =
        previousPc + static_cast<std::uint64_t>(zigzagDecode(pc_delta));
    record.target =
        record.pc + static_cast<std::uint64_t>(zigzagDecode(target_delta));
    previousPc = record.pc;
    return "";
}

/** The trailing-garbage check: after the declared record count, the
 *  payload must be fully consumed; "" on success. */
std::string
checkFullyConsumed(const std::vector<std::uint8_t> &payload,
                   std::size_t offset, std::uint64_t count)
{
    if (offset == payload.size())
        return "";
    return "BBT1 payload has " + std::to_string(payload.size() - offset) +
           " trailing byte(s) after the declared " +
           std::to_string(count) + " record(s)";
}

} // namespace

BinaryTraceWriter::BinaryTraceWriter(const std::string &path)
    : path(path), file(path, std::ios::binary | std::ios::trunc)
{
    if (!file)
        BPSIM_FATAL("cannot open trace file '" << path << "' for writing");
    std::uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, 4);
    putLe32(header + 4, kVersion);
    // Count (bytes 8..15) is patched in finish().
    file.write(reinterpret_cast<const char *>(header), kHeaderSize);
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    if (!finished)
        BPSIM_WARN("BinaryTraceWriter for '" << path
                   << "' destroyed without finish(); file is truncated");
}

void
BinaryTraceWriter::append(const BranchRecord &record)
{
    if (finished)
        BPSIM_PANIC("append() after finish()");
    const std::uint64_t flags =
        (static_cast<std::uint64_t>(record.type) << 1) |
        (record.taken ? 1 : 0);
    putVarint(buffer, flags);
    putVarint(buffer, zigzagEncode(static_cast<std::int64_t>(
        record.pc - previousPc)));
    putVarint(buffer, zigzagEncode(static_cast<std::int64_t>(
        record.target - record.pc)));
    previousPc = record.pc;
    ++count;
    if (buffer.size() >= kFlushThreshold)
        flushBuffer();
}

void
BinaryTraceWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    checksum.update(buffer.data(), buffer.size());
    file.write(reinterpret_cast<const char *>(buffer.data()),
               static_cast<std::streamsize>(buffer.size()));
    buffer.clear();
}

void
BinaryTraceWriter::finish()
{
    if (finished)
        return;
    flushBuffer();
    std::uint8_t trailer[8];
    putLe64(trailer, checksum.digest());
    file.write(reinterpret_cast<const char *>(trailer), 8);
    file.seekp(8);
    std::uint8_t count_bytes[8];
    putLe64(count_bytes, count);
    file.write(reinterpret_cast<const char *>(count_bytes), 8);
    file.flush();
    if (!file)
        BPSIM_FATAL("I/O error while finalizing trace file '" << path << "'");
    file.close();
    finished = true;
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
{
    const std::string error = openPayload(path, payload, count);
    if (!error.empty())
        BPSIM_FATAL(error);
    // An empty trace has no last record to trigger the lazy check in
    // next(), so reject trailing bytes here.
    if (count == 0 && !payload.empty())
        BPSIM_FATAL("'" << path << "': "
                    << checkFullyConsumed(payload, 0, count));
}

bool
BinaryTraceReader::next(BranchRecord &record)
{
    if (produced >= count)
        return false;
    const std::string error =
        decodeRecord(payload, offset, previousPc, produced, record);
    if (!error.empty())
        BPSIM_FATAL(error);
    ++produced;
    if (produced == count) {
        // Exactly count records must consume the whole payload; extra
        // bytes mean the count field and the payload disagree.
        const std::string trailing =
            checkFullyConsumed(payload, offset, count);
        if (!trailing.empty())
            BPSIM_FATAL(trailing);
    }
    return true;
}

void
BinaryTraceReader::rewind()
{
    produced = 0;
    offset = 0;
    previousPc = 0;
}

std::uint64_t
writeBinaryTrace(TraceReader &reader, const std::string &path)
{
    BinaryTraceWriter writer(path);
    BranchRecord record;
    while (reader.next(record))
        writer.append(record);
    writer.finish();
    return writer.recordsWritten();
}

void
readBinaryTrace(const std::string &path, TraceWriter &sink)
{
    BinaryTraceReader reader(path);
    BranchRecord record;
    while (reader.next(record))
        sink.append(record);
    sink.finish();
}

std::string
tryReadBinaryTrace(const std::string &path, TraceWriter &sink)
{
    std::vector<std::uint8_t> payload;
    std::uint64_t count = 0;
    std::string error = openPayload(path, payload, count);
    if (!error.empty())
        return error;

    std::size_t offset = 0;
    std::uint64_t previous_pc = 0;
    BranchRecord record;
    for (std::uint64_t produced = 0; produced < count; ++produced) {
        error = decodeRecord(payload, offset, previous_pc, produced,
                             record);
        if (!error.empty())
            return "'" + path + "': " + error;
        sink.append(record);
    }
    error = checkFullyConsumed(payload, offset, count);
    if (!error.empty())
        return "'" + path + "': " + error;
    sink.finish();
    return "";
}

} // namespace bpsim
