/**
 * @file
 * Minimal over-aligned allocator for standard containers.
 *
 * std::vector's default allocator only guarantees alignof(T); hot
 * arrays consumed by the vectorized replay kernels (trace pc arrays,
 * taken bitmaps) want cache-line alignment so a 64-byte stream never
 * straddles lines and aligned vector loads stay possible. The
 * allocator forwards to the aligned operator new overloads — no
 * manual padding bookkeeping.
 */

#ifndef BPSIM_UTIL_ALIGNED_HH
#define BPSIM_UTIL_ALIGNED_HH

#include <cstddef>
#include <new>

namespace bpsim
{

/** std::allocator work-alike that over-aligns every allocation to
 *  @p Align bytes (a power of two >= alignof(T)). */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Align >= alignof(T),
                  "alignment must not weaken the type's own");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }
};

/* All instances are stateless and interchangeable. */
template <typename T, typename U, std::size_t Align>
bool
operator==(const AlignedAllocator<T, Align> &,
           const AlignedAllocator<U, Align> &) noexcept
{
    return true;
}

template <typename T, typename U, std::size_t Align>
bool
operator!=(const AlignedAllocator<T, Align> &,
           const AlignedAllocator<U, Align> &) noexcept
{
    return false;
}

} // namespace bpsim

#endif // BPSIM_UTIL_ALIGNED_HH
