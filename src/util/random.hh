/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation must be bit-for-bit reproducible across runs,
 * machines and standard-library versions, so we avoid std::mt19937 /
 * std::uniform_int_distribution (whose outputs are not pinned down by
 * the standard for all distributions) and carry our own generator
 * (xoshiro256**) and distributions.
 */

#ifndef BPSIM_UTIL_RANDOM_HH
#define BPSIM_UTIL_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace bpsim
{

/**
 * SplitMix64 stream, used to seed the main generator and to derive
 * independent child seeds from a single workload seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value of the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** generator (Blackman & Vigna). Fast, tiny state, and
 * good statistical quality; entirely sufficient for synthetic
 * workload generation.
 */
class Rng
{
  public:
    /** Seeds the four state words through a SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x1997'0b1'0de'5eedULL);

    /** Raw 64 random bits. */
    std::uint64_t next64();

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial that succeeds with probability @p p. */
    bool nextBool(double p);

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /**
     * Geometric number of failures before the first success, with
     * success probability @p p in (0, 1]; clamped to @p max.
     */
    std::uint64_t nextGeometric(double p, std::uint64_t max);

    /**
     * Samples an index from an unnormalized discrete weight vector.
     * An all-zero weight vector yields index 0.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Derives an independent child generator. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state;
};

/**
 * Samples from a shifted-Zipf distribution over ranks 0..n-1 with
 * weight(r) = 1 / (r + 1 + offset)^s, via precomputed cumulative
 * weights. Used to give synthetic static branches realistically
 * skewed execution frequencies: the offset flattens the head (no
 * single rank dominates the trace the way an unshifted Zipf head
 * would) while the exponent keeps the heavy-tailed cold set.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of ranks (must be >= 1)
     * @param s Zipf exponent; 0 gives a uniform distribution
     * @param offset head-flattening shift q in 1/(r+1+q)^s
     */
    ZipfSampler(std::size_t n, double s, double offset = 0.0);

    /** Samples a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cumulative.size(); }

  private:
    std::vector<double> cumulative;
};

} // namespace bpsim

#endif // BPSIM_UTIL_RANDOM_HH
