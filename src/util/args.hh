/**
 * @file
 * Minimal command-line argument parser for the example and benchmark
 * executables.
 *
 * Supports --name value, --name=value, boolean --flag switches, and
 * positional arguments, with typed accessors, defaults, and an
 * auto-generated --help text.
 */

#ifndef BPSIM_UTIL_ARGS_HH
#define BPSIM_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bpsim
{

/** Declarative description and parsed state of a program's options. */
class ArgParser
{
  public:
    /**
     * @param program name shown in the usage line
     * @param summary one-line description shown by --help
     */
    ArgParser(std::string program, std::string summary);

    /** Declares a valued option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declares a boolean switch (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parses argv. On --help prints usage and returns false (caller
     * should exit 0); on a malformed command line calls fatal().
     */
    bool parse(int argc, const char *const *argv);

    /** True when a declared flag was present. */
    bool flag(const std::string &name) const;

    /** String value of a declared option (default if absent). */
    const std::string &get(const std::string &name) const;

    /** Typed accessors over get(); fatal() on conversion failure. */
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;

    /** Positional arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return positionals; }

    /** Renders the --help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string def;
        std::string help;
        std::string value;
        bool isFlag = false;
        bool seen = false;
    };

    const Option &lookup(const std::string &name) const;

    std::string program;
    std::string summary;
    std::map<std::string, Option> options;
    std::vector<std::string> declarationOrder;
    std::vector<std::string> positionals;
};

} // namespace bpsim

#endif // BPSIM_UTIL_ARGS_HH
