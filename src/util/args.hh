/**
 * @file
 * Minimal command-line argument parser for the example and benchmark
 * executables.
 *
 * Supports --name value, --name=value, boolean --flag switches, and
 * positional arguments, with typed accessors, defaults, and an
 * auto-generated --help text.
 */

#ifndef BPSIM_UTIL_ARGS_HH
#define BPSIM_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bpsim
{

/** Declarative description and parsed state of a program's options. */
class ArgParser
{
  public:
    /**
     * @param program name shown in the usage line
     * @param summary one-line description shown by --help
     */
    ArgParser(std::string program, std::string summary);

    /** Declares a valued option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declares a boolean switch (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parses argv. On --help prints usage and returns false (caller
     * should exit 0); on a malformed command line calls fatal().
     */
    bool parse(int argc, const char *const *argv);

    /** True when an option or flag of this name was declared. */
    bool declared(const std::string &name) const;

    /** True when a declared flag was present. */
    bool flag(const std::string &name) const;

    /** String value of a declared option (default if absent). */
    const std::string &get(const std::string &name) const;

    /** Typed accessors over get(); fatal() on conversion failure. */
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;

    /** Positional arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return positionals; }

    /** Renders the --help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string def;
        std::string help;
        std::string value;
        bool isFlag = false;
        bool seen = false;
    };

    const Option &lookup(const std::string &name) const;

    std::string program;
    std::string summary;
    std::map<std::string, Option> options;
    std::vector<std::string> declarationOrder;
    std::vector<std::string> positionals;
};

/**
 * The flag set shared by every campaign-running binary (bench
 * drivers, examples, the service daemon and client), declared and
 * parsed in one place instead of copy-pasted per driver:
 *
 *   --quick            scale dynamic branch counts down 5x
 *   --csv              also emit tables as CSV
 *   --json             also dump per-job campaign results as JSON
 *   --jobs N           worker threads (0 = one per hardware thread)
 *   --timing           machine-dependent timing fields in JSON
 *   --trace-cache DIR  persistent trace store directory
 *   --verbose          progress logging to stderr
 *
 * declare()/declareTraceCache() register (a subset of) the options
 * on an ArgParser; fromArgs() reads back whichever of them were
 * declared, leaving the rest at their defaults — so a driver that
 * only wants --trace-cache still parses through the same code.
 *
 * This is deliberately a value bag, not an applier: the worker count
 * is carried in @ref jobs for the caller to pass explicitly
 * (CampaignScheduler::Options::workers or Campaign::run(workers));
 * the trace-store resolution ladder lives in the trace layer
 * (resolveTraceStoreDir()), which util must not depend on.
 */
struct CommonOptions
{
    bool quick = false;
    bool csv = false;
    bool json = false;
    bool timing = false;
    bool verbose = false;
    /** Campaign worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Raw --trace-cache value; resolve with resolveTraceStoreDir(). */
    std::string traceCache;
    /** Raw --kernel-tier name; util cannot see the sim layer, so the
     *  callers that can (bench_common's applyCommonOptions()) parse
     *  it and install the process-wide override. */
    std::string kernelTier = "auto";

    /** The --quick dynamic-count divisor (1 when off). */
    std::uint64_t quickDivisor() const { return quick ? 5 : 1; }

    /** Declares the full shared flag set on @p args. */
    static void declare(ArgParser &args);

    /** Declares only --trace-cache (+ --verbose) for simple example
     *  drivers that run no campaign. */
    static void declareTraceCache(ArgParser &args);

    /** Reads back every shared option @p args declared. */
    static CommonOptions fromArgs(const ArgParser &args);
};

} // namespace bpsim

#endif // BPSIM_UTIL_ARGS_HH
