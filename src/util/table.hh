/**
 * @file
 * Console table / CSV formatting for benchmark and example output.
 *
 * Every figure- and table-reproduction binary prints its series as an
 * aligned text table (human-readable) and can emit the same data as
 * CSV for plotting.
 */

#ifndef BPSIM_UTIL_TABLE_HH
#define BPSIM_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bpsim
{

/** Horizontal alignment of a table column. */
enum class Align
{
    Left,
    Right,
};

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t;
 *   t.setColumns({"bench", "misp (%)"});
 *   t.addRow({"gcc", TextTable::fixed(9.72, 2)});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Defines the header row; must be called before addRow(). */
    void setColumns(std::vector<std::string> names);

    /** Sets per-column alignment; default is Left for column 0, Right
     *  for the rest. Size must match the column count. */
    void setAlignment(std::vector<Align> alignment);

    /** Appends one data row; cell count must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Appends a horizontal separator rule. */
    void addRule();

    /** Number of data rows added so far (rules excluded). */
    std::size_t rowCount() const;

    /** Renders the aligned table. */
    void print(std::ostream &os) const;

    /** Renders the same data as CSV (rules omitted). */
    void printCsv(std::ostream &os) const;

    /** Formats a double with @p digits fractional digits. */
    static std::string fixed(double value, int digits);

    /** Formats an integer with thousands separators (1,234,567). */
    static std::string grouped(std::uint64_t value);

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> columns;
    std::vector<Align> aligns;
    std::vector<Row> rows;
};

/** Escapes a CSV field (quotes fields containing separators). */
std::string csvEscape(const std::string &field);

} // namespace bpsim

#endif // BPSIM_UTIL_TABLE_HH
