#include "util/stats.hh"

#include <algorithm>
#include <cmath>

namespace bpsim
{

void
RunningStat::push(double x)
{
    if (n == 0) {
        minValue = maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
    ++n;
    total += x;
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, 1e-12));
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
percent(std::uint64_t numerator, std::uint64_t denominator)
{
    if (denominator == 0)
        return 0.0;
    return 100.0 * static_cast<double>(numerator) /
           static_cast<double>(denominator);
}

double
relativeChangePercent(double a, double b)
{
    if (a == 0.0)
        return 0.0;
    return (b - a) / a * 100.0;
}

} // namespace bpsim
