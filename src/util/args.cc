#include "util/args.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace bpsim
{

ArgParser::ArgParser(std::string program, std::string summary)
    : program(std::move(program)), summary(std::move(summary))
{
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    Option opt;
    opt.def = def;
    opt.value = def;
    opt.help = help;
    if (!options.emplace(name, std::move(opt)).second)
        BPSIM_PANIC("duplicate option --" << name);
    declarationOrder.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    Option opt;
    opt.help = help;
    opt.isFlag = true;
    if (!options.emplace(name, std::move(opt)).second)
        BPSIM_PANIC("duplicate flag --" << name);
    declarationOrder.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positionals.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options.find(name);
        if (it == options.end())
            BPSIM_FATAL("unknown option --" << name << "; try --help");
        Option &opt = it->second;
        if (opt.isFlag) {
            if (has_value)
                BPSIM_FATAL("flag --" << name << " does not take a value");
            opt.seen = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                BPSIM_FATAL("option --" << name << " needs a value");
            value = argv[++i];
        }
        opt.value = std::move(value);
        opt.seen = true;
    }
    return true;
}

const ArgParser::Option &
ArgParser::lookup(const std::string &name) const
{
    const auto it = options.find(name);
    if (it == options.end())
        BPSIM_PANIC("option --" << name << " was never declared");
    return it->second;
}

bool
ArgParser::flag(const std::string &name) const
{
    const Option &opt = lookup(name);
    if (!opt.isFlag)
        BPSIM_PANIC("--" << name << " is not a flag");
    return opt.seen;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    return lookup(name).value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    errno = 0;
    const long long value = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        BPSIM_FATAL("--" << name << ": '" << text << "' is not an integer");
    // strtoll clamps to LLONG_MIN/MAX on overflow; silently accepting
    // the clamped value would turn a typo into a huge valid setting.
    if (errno == ERANGE)
        BPSIM_FATAL("--" << name << ": '" << text
                    << "' is out of range for a 64-bit integer");
    return value;
}

std::uint64_t
ArgParser::getUint(const std::string &name) const
{
    const std::int64_t value = getInt(name);
    if (value < 0)
        BPSIM_FATAL("--" << name << " must be non-negative");
    return static_cast<std::uint64_t>(value);
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        BPSIM_FATAL("--" << name << ": '" << text << "' is not a number");
    // Overflow clamps to +-HUGE_VAL and underflow to ~0; both set
    // ERANGE and neither is the number the user wrote.
    if (errno == ERANGE)
        BPSIM_FATAL("--" << name << ": '" << text
                    << "' is out of range for a double");
    return value;
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program << " [options]\n\n" << summary << "\n\n"
       << "options:\n";
    for (const auto &name : declarationOrder) {
        const Option &opt = options.at(name);
        os << "  --" << name;
        if (!opt.isFlag)
            os << " <value>";
        os << "\n        " << opt.help;
        if (!opt.isFlag && !opt.def.empty())
            os << " (default: " << opt.def << ")";
        os << '\n';
    }
    os << "  --help\n        show this message\n";
    return os.str();
}

bool
ArgParser::declared(const std::string &name) const
{
    return options.find(name) != options.end();
}

void
CommonOptions::declare(ArgParser &args)
{
    args.addFlag("quick", "scale dynamic branch counts down 5x");
    args.addFlag("csv", "also emit tables as CSV");
    args.addFlag("json", "also dump per-job campaign results as JSON");
    args.addOption("jobs", "0",
                   "campaign worker threads (0 = one per hardware "
                   "thread)");
    args.addFlag("timing",
                 "include machine-dependent wall time / throughput in "
                 "JSON output");
    args.addOption("kernel-tier", "auto",
                   "banked replay kernel backend (auto, scalar, neon, "
                   "avx2, avx512); counts are identical on every tier");
    declareTraceCache(args);
}

void
CommonOptions::declareTraceCache(ArgParser &args)
{
    args.addOption("trace-cache", "",
                   "persistent trace store directory "
                   "(default: $BPSIM_TRACE_CACHE, then .bpsim-cache; "
                   "'none' disables)");
    args.addFlag("verbose", "progress logging to stderr");
}

CommonOptions
CommonOptions::fromArgs(const ArgParser &args)
{
    CommonOptions opts;
    if (args.declared("quick"))
        opts.quick = args.flag("quick");
    if (args.declared("csv"))
        opts.csv = args.flag("csv");
    if (args.declared("json"))
        opts.json = args.flag("json");
    if (args.declared("timing"))
        opts.timing = args.flag("timing");
    if (args.declared("verbose"))
        opts.verbose = args.flag("verbose");
    if (args.declared("jobs"))
        opts.jobs = static_cast<unsigned>(args.getUint("jobs"));
    if (args.declared("trace-cache"))
        opts.traceCache = args.get("trace-cache");
    if (args.declared("kernel-tier"))
        opts.kernelTier = args.get("kernel-tier");
    return opts;
}

} // namespace bpsim
