/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() terminates on user error (bad configuration, bad input
 * file); panic() terminates on an internal invariant violation.
 * warn() and inform() print to stderr and continue.
 */

#ifndef BPSIM_UTIL_LOGGING_HH
#define BPSIM_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace bpsim
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/**
 * Emits one log record; Fatal exits with status 1, Panic aborts.
 *
 * @param level severity class of the record
 * @param where "file:line" of the call site
 * @param message fully formatted message text
 */
[[noreturn]] void terminate(LogLevel level, const char *where,
                            const std::string &message);

void emit(LogLevel level, const char *where, const std::string &message);

/** Builds "file:line" strings for the logging macros. */
std::string location(const char *file, int line);

} // namespace detail

/** Global verbosity switch: when false, inform() output is dropped. */
void setVerbose(bool verbose);
bool verbose();

} // namespace bpsim

/** Report a user-caused unrecoverable condition and exit(1). */
#define BPSIM_FATAL(msg)                                                  \
    do {                                                                  \
        std::ostringstream bpsim_oss_;                                    \
        bpsim_oss_ << msg;                                                \
        ::bpsim::detail::terminate(                                       \
            ::bpsim::LogLevel::Fatal,                                     \
            ::bpsim::detail::location(__FILE__, __LINE__).c_str(),        \
            bpsim_oss_.str());                                            \
    } while (0)

/** Report an internal invariant violation and abort(). */
#define BPSIM_PANIC(msg)                                                  \
    do {                                                                  \
        std::ostringstream bpsim_oss_;                                    \
        bpsim_oss_ << msg;                                                \
        ::bpsim::detail::terminate(                                       \
            ::bpsim::LogLevel::Panic,                                     \
            ::bpsim::detail::location(__FILE__, __LINE__).c_str(),        \
            bpsim_oss_.str());                                            \
    } while (0)

/** Warn about a suspicious but survivable condition. */
#define BPSIM_WARN(msg)                                                   \
    do {                                                                  \
        std::ostringstream bpsim_oss_;                                    \
        bpsim_oss_ << msg;                                                \
        ::bpsim::detail::emit(                                            \
            ::bpsim::LogLevel::Warn,                                      \
            ::bpsim::detail::location(__FILE__, __LINE__).c_str(),        \
            bpsim_oss_.str());                                            \
    } while (0)

/** Status message, suppressed unless verbose mode is on. */
#define BPSIM_INFORM(msg)                                                 \
    do {                                                                  \
        if (::bpsim::verbose()) {                                         \
            std::ostringstream bpsim_oss_;                                \
            bpsim_oss_ << msg;                                            \
            ::bpsim::detail::emit(                                        \
                ::bpsim::LogLevel::Inform,                                \
                ::bpsim::detail::location(__FILE__, __LINE__).c_str(),    \
                bpsim_oss_.str());                                        \
        }                                                                 \
    } while (0)

#endif // BPSIM_UTIL_LOGGING_HH
