#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace bpsim
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &text)
{
    return '"' + jsonEscape(text) + '"';
}

std::string
jsonNumber(double value)
{
    // JSON has no NaN/Inf literals; null is the conventional stand-in.
    if (!std::isfinite(value))
        return "null";
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << value;
    return os.str();
}

} // namespace bpsim
