#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace bpsim
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &text)
{
    return '"' + jsonEscape(text) + '"';
}

std::string
jsonNumber(double value)
{
    // JSON has no NaN/Inf literals; null is the conventional stand-in.
    if (!std::isfinite(value))
        return "null";
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << value;
    return os.str();
}

/**
 * Recursive-descent parser over the JSON grammar. Depth is bounded
 * so pathological input ("[[[[...") from a network peer cannot
 * overflow the stack.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &error)
        : text(text), error(error)
    {
    }

    std::optional<JsonValue> document()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return std::nullopt;
        skipSpace();
        if (pos != text.size()) {
            fail("trailing characters after JSON value");
            return std::nullopt;
        }
        return value;
    }

  private:
    static constexpr std::size_t kMaxDepth = 64;

    bool fail(const std::string &message)
    {
        if (error.empty()) {
            error = message + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool consume(char expected, const char *what)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != expected)
            return fail(std::string("expected ") + what);
        ++pos;
        return true;
    }

    bool literal(const char *word, std::size_t length)
    {
        if (text.compare(pos, length, word) != 0)
            return fail(std::string("invalid literal"));
        pos += length;
        return true;
    }

    bool parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.valueKind = JsonValue::Kind::String;
            return parseString(out.stringValue);
          case 't':
            out.valueKind = JsonValue::Kind::Bool;
            out.boolValue = true;
            return literal("true", 4);
          case 'f':
            out.valueKind = JsonValue::Kind::Bool;
            out.boolValue = false;
            return literal("false", 5);
          case 'n':
            out.valueKind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, std::size_t depth)
    {
        out.valueKind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipSpace();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':', "':'"))
                return false;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            const auto existing = out.memberIndex.find(key);
            if (existing != out.memberIndex.end()) {
                out.items[existing->second] = std::move(value);
            } else {
                out.memberIndex.emplace(key, out.items.size());
                out.memberKeys.push_back(key);
                out.items.push_back(std::move(value));
            }
            skipSpace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume('}', "'}' or ','");
        }
    }

    bool parseArray(JsonValue &out, std::size_t depth)
    {
        out.valueKind = JsonValue::Kind::Array;
        ++pos; // '['
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items.push_back(std::move(value));
            skipSpace();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume(']', "']' or ','");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos; // opening quote
        for (;;) {
            if (pos >= text.size())
                return fail("unterminated string");
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                return fail("unterminated escape");
            switch (text[pos]) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 >= text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = text[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape digit");
                }
                pos += 4;
                // UTF-8 encode the BMP code point (surrogate pairs
                // land as two 3-byte sequences; the protocol never
                // emits them, so exact pairing is not required).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
            ++pos;
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected a JSON value");
        const std::string token = text.substr(start, pos - start);
        // Strict JSON forbids leading zeros ("01"); strtod accepts
        // them, so check before handing the token over.
        const std::size_t first = token[0] == '-' ? 1 : 0;
        if (token.size() > first + 1 && token[first] == '0' &&
            std::isdigit(static_cast<unsigned char>(token[first + 1])))
            return fail("malformed number '" + token + "'");
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number '" + token + "'");
        out.valueKind = JsonValue::Kind::Number;
        out.numberValue = value;
        return true;
    }

    const std::string &text;
    std::string &error;
    std::size_t pos = 0;
};

std::optional<JsonValue>
JsonValue::parse(const std::string &text, std::string &error)
{
    error.clear();
    return JsonParser(text, error).document();
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (valueKind != Kind::Object)
        return nullptr;
    const auto it = memberIndex.find(key);
    return it == memberIndex.end() ? nullptr : &items[it->second];
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *value = get(key);
    return value != nullptr && value->isString() ? value->asString()
                                                 : fallback;
}

double
JsonValue::getNumber(const std::string &key, double fallback) const
{
    const JsonValue *value = get(key);
    return value != nullptr && value->isNumber() ? value->asNumber()
                                                 : fallback;
}

std::uint64_t
JsonValue::getUint(const std::string &key, std::uint64_t fallback) const
{
    const JsonValue *value = get(key);
    if (value == nullptr || !value->isNumber())
        return fallback;
    // Casting a double outside uint64_t's range (or NaN) is
    // undefined behavior, and the number here can come straight off
    // the wire — fall back instead. 2^64 itself is exactly
    // representable, so < is the right exclusive bound.
    const double number = value->asNumber();
    if (std::isnan(number) || number < 0 ||
        number >= 18446744073709551616.0) {
        return fallback;
    }
    return static_cast<std::uint64_t>(number);
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *value = get(key);
    return value != nullptr && value->isBool() ? value->asBool()
                                               : fallback;
}

} // namespace bpsim
