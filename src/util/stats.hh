/**
 * @file
 * Small summary-statistics helpers used by the simulation harness
 * and the benchmark reporting code.
 */

#ifndef BPSIM_UTIL_STATS_HH
#define BPSIM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bpsim
{

/**
 * Streaming accumulator for mean / variance / min / max using
 * Welford's algorithm; O(1) space regardless of sample count.
 */
class RunningStat
{
  public:
    /** Adds one observation. */
    void push(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? runningMean : 0.0; }

    /** Sample variance (n - 1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n ? minValue : 0.0; }
    double max() const { return n ? maxValue : 0.0; }
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
    double total = 0.0;
};

/** Arithmetic mean of a vector; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean of a vector of positive values; values <= 0 are
 * clamped to a tiny epsilon so that a single zero does not collapse
 * the summary. 0 for an empty vector.
 */
double geomean(const std::vector<double> &values);

/**
 * Ratio helper expressed in percent: 100 * numerator / denominator,
 * 0 when the denominator is 0.
 */
double percent(std::uint64_t numerator, std::uint64_t denominator);

/**
 * Two-proportion comparison: relative change of @p b with respect to
 * @p a in percent ((b - a) / a * 100); 0 when a == 0.
 */
double relativeChangePercent(double a, double b);

} // namespace bpsim

#endif // BPSIM_UTIL_STATS_HH
