#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace bpsim
{

void
TextTable::setColumns(std::vector<std::string> names)
{
    if (!rows.empty())
        BPSIM_PANIC("setColumns() after rows were added");
    columns = std::move(names);
    aligns.assign(columns.size(), Align::Right);
    if (!aligns.empty())
        aligns[0] = Align::Left;
}

void
TextTable::setAlignment(std::vector<Align> alignment)
{
    if (alignment.size() != columns.size())
        BPSIM_PANIC("alignment size " << alignment.size()
                    << " != column count " << columns.size());
    aligns = std::move(alignment);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != columns.size())
        BPSIM_PANIC("row has " << cells.size() << " cells, expected "
                    << columns.size());
    rows.push_back(Row{false, std::move(cells)});
}

void
TextTable::addRule()
{
    rows.push_back(Row{true, {}});
}

std::size_t
TextTable::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows) {
        if (!row.rule)
            ++n;
    }
    return n;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto emitCell = [&](const std::string &text, std::size_t c) {
        const std::size_t pad = widths[c] - text.size();
        if (aligns[c] == Align::Right)
            os << std::string(pad, ' ') << text;
        else
            os << text << std::string(pad, ' ');
    };

    auto emitRule = [&]() {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                os << "-+-";
            os << std::string(widths[c], '-');
        }
        os << '\n';
    };

    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            os << " | ";
        emitCell(columns[c], c);
    }
    os << '\n';
    emitRule();

    for (const auto &row : rows) {
        if (row.rule) {
            emitRule();
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c)
                os << " | ";
            emitCell(row.cells[c], c);
        }
        os << '\n';
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            os << ',';
        os << csvEscape(columns[c]);
    }
    os << '\n';
    for (const auto &row : rows) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(row.cells[c]);
        }
        os << '\n';
    }
}

std::string
TextTable::fixed(double value, int digits)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

std::string
TextTable::grouped(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string result;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i != 0 && (n - i) % 3 == 0)
            result += ',';
        result += digits[i];
    }
    return result;
}

std::string
csvEscape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string escaped = "\"";
    for (char ch : field) {
        if (ch == '"')
            escaped += '"';
        escaped += ch;
    }
    escaped += '"';
    return escaped;
}

} // namespace bpsim
