/**
 * @file
 * Minimal JSON emission helpers.
 *
 * The project's machine-readable outputs (campaign results,
 * SimResult::toJson()) are flat JSON objects and arrays; these
 * helpers cover exactly what those writers need — string escaping
 * and round-trippable double formatting — without pulling in a JSON
 * library dependency.
 */

#ifndef BPSIM_UTIL_JSON_HH
#define BPSIM_UTIL_JSON_HH

#include <string>

namespace bpsim
{

/** Escapes a string for embedding inside JSON double quotes. */
std::string jsonEscape(const std::string &text);

/** Quotes and escapes a string as a JSON string literal. */
std::string jsonString(const std::string &text);

/** Formats a double with enough digits to round-trip exactly. */
std::string jsonNumber(double value);

} // namespace bpsim

#endif // BPSIM_UTIL_JSON_HH
