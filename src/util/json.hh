/**
 * @file
 * Minimal JSON emission and parsing helpers.
 *
 * The project's machine-readable outputs (campaign results,
 * SimResult::toJson()) are flat JSON objects and arrays; the
 * emission helpers cover exactly what those writers need — string
 * escaping and round-trippable double formatting — without pulling
 * in a JSON library dependency.
 *
 * JsonValue adds the other direction for the campaign service's
 * JSON-lines wire protocol (serve/protocol.hh): a small
 * recursive-descent parser over the full JSON grammar (objects,
 * arrays, strings with escapes, numbers, booleans, null). Parse
 * failures are reported as error strings, never terminations —
 * malformed network input must not kill a daemon.
 */

#ifndef BPSIM_UTIL_JSON_HH
#define BPSIM_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bpsim
{

/** Escapes a string for embedding inside JSON double quotes. */
std::string jsonEscape(const std::string &text);

/** Quotes and escapes a string as a JSON string literal. */
std::string jsonString(const std::string &text);

/** Formats a double with enough digits to round-trip exactly. */
std::string jsonNumber(double value);

/** One parsed JSON value (a tree; children owned by the parent). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parses one complete JSON document from @p text (leading and
     * trailing whitespace allowed, trailing garbage rejected).
     * Returns std::nullopt and fills @p error on malformed input.
     */
    static std::optional<JsonValue> parse(const std::string &text,
                                          std::string &error);

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Value accessors; calling the wrong one for the kind returns
     *  the type's default (false / 0.0 / "" / empty). */
    bool asBool() const { return boolValue; }
    double asNumber() const { return numberValue; }
    const std::string &asString() const { return stringValue; }
    const std::vector<JsonValue> &elements() const { return items; }

    /** Object member by key, or null when absent / not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Object member keys in document order (empty otherwise). */
    const std::vector<std::string> &keys() const { return memberKeys; }

    /** Convenience typed object lookups with defaults. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getNumber(const std::string &key, double fallback = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

  private:
    friend class JsonParser;

    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> items;
    /** Parallel to @ref memberKeys for objects (duplicate keys keep
     *  the last occurrence, like most JSON libraries). */
    std::vector<std::string> memberKeys;
    std::map<std::string, std::size_t> memberIndex;
};

} // namespace bpsim

#endif // BPSIM_UTIL_JSON_HH
