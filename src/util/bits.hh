/**
 * @file
 * Bit-manipulation helpers used throughout the predictor library.
 *
 * All predictor tables in this project are power-of-two sized and
 * indexed by low-order bit fields of branch addresses and history
 * registers, so the helpers here are centred on masking, extraction
 * and folding of bit fields.
 */

#ifndef BPSIM_UTIL_BITS_HH
#define BPSIM_UTIL_BITS_HH

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace bpsim
{

/** Returns a value with the low @p n bits set. @p n may be 0..64. */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extracts the @p n-bit field of @p value starting at bit @p lsb. */
constexpr std::uint64_t
bitField(std::uint64_t value, unsigned lsb, unsigned n)
{
    return (value >> lsb) & maskBits(n);
}

/** True when @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Integer log base 2 of a power of two.
 *
 * @pre isPowerOfTwo(value)
 */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Ceiling of log base 2; log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(std::uint64_t value)
{
    unsigned result = 0;
    std::uint64_t limit = 1;
    while (limit < value) {
        limit <<= 1;
        ++result;
    }
    return result;
}

/**
 * Folds a wide value into @p n bits by repeated xor of n-bit chunks.
 *
 * Used by hashed indexing schemes to keep the whole value's entropy
 * while producing a table index of the desired width.
 */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned n)
{
    if (n == 0)
        return 0;
    std::uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & maskBits(n);
        value >>= n;
    }
    return folded;
}

/** Reverses the low @p n bits of @p value (bit i swaps with n-1-i). */
constexpr std::uint64_t
reverseBits(std::uint64_t value, unsigned n)
{
    std::uint64_t result = 0;
    for (unsigned i = 0; i < n; ++i) {
        result = (result << 1) | ((value >> i) & 1);
    }
    return result;
}

} // namespace bpsim

#endif // BPSIM_UTIL_BITS_HH
