#include "util/random.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 seeder(seed);
    for (auto &word : state)
        word = seeder.next();
    // A pathological all-zero state would make the generator stick;
    // SplitMix64 cannot emit four zero words in a row, but guard anyway.
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
        state[0] = 1;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        BPSIM_PANIC("nextBounded() requires a non-zero bound");
    // Debiased modulo via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        BPSIM_PANIC("nextRange() with lo > hi: " << lo << " > " << hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 2^64 range.
    const std::uint64_t offset = span == 0 ? next64() : nextBounded(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

std::uint64_t
Rng::nextGeometric(double p, std::uint64_t max)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return max;
    // Inverse-CDF sampling: floor(log(u) / log(1 - p)).
    const double u = std::max(nextDouble(), 0x1.0p-60);
    const double value = std::floor(std::log(u) / std::log1p(-p));
    if (value >= static_cast<double>(max))
        return max;
    return static_cast<std::uint64_t>(value);
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += std::max(w, 0.0);
    if (total <= 0.0)
        return 0;
    double point = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        point -= std::max(weights[i], 0.0);
        if (point < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next64());
}

ZipfSampler::ZipfSampler(std::size_t n, double s, double offset)
{
    if (n == 0)
        BPSIM_PANIC("ZipfSampler requires n >= 1");
    if (offset < 0.0)
        BPSIM_PANIC("ZipfSampler offset must be non-negative");
    cumulative.resize(n);
    double running = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        running +=
            1.0 / std::pow(static_cast<double>(rank + 1) + offset, s);
        cumulative[rank] = running;
    }
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double point = rng.nextDouble() * cumulative.back();
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), point);
    const std::size_t index =
        static_cast<std::size_t>(it - cumulative.begin());
    return std::min(index, cumulative.size() - 1);
}

} // namespace bpsim
