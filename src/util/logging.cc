#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace bpsim
{

namespace
{

bool verboseFlag = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

namespace detail
{

std::string
location(const char *file, int line)
{
    return std::string(file) + ":" + std::to_string(line);
}

void
emit(LogLevel level, const char *where, const std::string &message)
{
    std::fprintf(stderr, "%s: %s (%s)\n", levelName(level),
                 message.c_str(), where);
    std::fflush(stderr);
}

void
terminate(LogLevel level, const char *where, const std::string &message)
{
    emit(level, where, message);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace bpsim
