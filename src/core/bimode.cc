#include "core/bimode.hh"

#include <sstream>

namespace bpsim
{

BiModeConfig
BiModeConfig::canonical(unsigned directionIndexBits)
{
    BiModeConfig cfg;
    cfg.directionIndexBits = directionIndexBits;
    cfg.choiceIndexBits = directionIndexBits;
    cfg.historyBits = directionIndexBits;
    return cfg;
}

BiModePredictor::BiModePredictor(const BiModeConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      choice(checkedTableEntries(cfg.choiceIndexBits, "bi-mode choice"),
             cfg.counterWidth,
             SaturatingCounter::weaklyTaken(cfg.counterWidth)),
      banks{CounterTable(checkedTableEntries(cfg.directionIndexBits,
                                             "bi-mode direction"),
                         cfg.counterWidth,
                         SaturatingCounter::weaklyNotTaken(cfg.counterWidth)),
            CounterTable(std::size_t{1} << cfg.directionIndexBits,
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth))}
{
    if (cfg.historyBits > cfg.directionIndexBits)
        BPSIM_FATAL("bi-mode history (" << cfg.historyBits
                    << " bits) cannot exceed the direction index width ("
                    << cfg.directionIndexBits << " bits)");
}

PredictionDetail
BiModePredictor::detailFast(std::uint64_t pc) const
{
    const bool choice_taken = choice.predictTaken(choiceIndexFor(pc));
    const std::uint32_t bank = choice_taken ? kTakenBank : kNotTakenBank;
    const std::size_t index = directionIndexFor(pc);
    PredictionDetail detail;
    detail.taken = banks[bank].predictTaken(index);
    detail.usesCounter = true;
    detail.bank = bank;
    detail.counterId =
        (static_cast<std::uint64_t>(bank) << cfg.directionIndexBits) | index;
    return detail;
}

void
BiModePredictor::resetFast()
{
    history.clear();
    choice.reset();
    banks[0].reset();
    banks[1].reset();
}

std::string
BiModePredictor::name() const
{
    std::ostringstream os;
    os << "bimode(d=" << cfg.directionIndexBits
       << ",c=" << cfg.choiceIndexBits
       << ",h=" << cfg.historyBits << ")";
    if (!cfg.partialUpdate)
        os << "[full-update]";
    if (cfg.alwaysUpdateChoice)
        os << "[always-choice]";
    return os.str();
}

std::uint64_t
BiModePredictor::storageBits() const
{
    return choice.storageBits() + banks[0].storageBits() +
           banks[1].storageBits() + history.storageBits();
}

std::uint64_t
BiModePredictor::counterBits() const
{
    return choice.storageBits() + banks[0].storageBits() +
           banks[1].storageBits();
}

std::uint64_t
BiModePredictor::directionCounters() const
{
    return banks[0].size() + banks[1].size();
}

} // namespace bpsim
