/**
 * @file
 * The bi-mode branch predictor — the primary contribution of
 * Lee, Chen & Mudge, "The Bi-Mode Branch Predictor", MICRO-30, 1997.
 *
 * Structure (paper Figure 1):
 *  - Two *direction* banks of 2-bit counters, a taken bank and a
 *    not-taken bank, both indexed gshare-style by pc xor global
 *    history.
 *  - A *choice* predictor: a pc-indexed 2-bit counter table whose
 *    sign selects which direction bank supplies the prediction.
 *
 * Update policy (paper Section 2.2):
 *  - Only the *selected* direction counter is updated with the
 *    outcome (partial update); the unselected bank is untouched.
 *  - The choice predictor is updated with the outcome, EXCEPT when
 *    its choice disagreed with the outcome but the selected
 *    direction counter still predicted correctly.
 *
 * Initialization (paper footnote 2): the choice table starts
 * weakly-taken, the taken bank weakly-taken, and the not-taken bank
 * weakly-not-taken.
 *
 * The effect is that the choice predictor classifies each branch by
 * its per-address bias, steering mostly-taken branches into one bank
 * and mostly-not-taken branches into the other, so that branches
 * aliasing to the same direction counter tend to agree — destructive
 * aliasing becomes neutral aliasing.
 */

#ifndef BPSIM_CORE_BIMODE_HH
#define BPSIM_CORE_BIMODE_HH

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "util/bits.hh"

namespace bpsim
{

/** Configuration of a BiModePredictor. */
struct BiModeConfig
{
    /** log2 counters per direction bank (each bank holds 2^d). */
    unsigned directionIndexBits = 10;
    /** log2 counters in the choice table; the paper uses half the
     *  second-level size, i.e. choiceIndexBits == directionIndexBits. */
    unsigned choiceIndexBits = 10;
    /** Global history length; the canonical design uses the full
     *  direction index width. */
    unsigned historyBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
    /** Paper policy: update only the selected direction bank. Turning
     *  this off (updating both banks) is an ablation. */
    bool partialUpdate = true;
    /** Ablation: update the choice table on every branch instead of
     *  applying the paper's exception. */
    bool alwaysUpdateChoice = false;

    /** Canonical configuration at a given direction-bank width:
     *  choice table half the second-level size, full-width history. */
    static BiModeConfig canonical(unsigned directionIndexBits);
};

/** The bi-mode predictor. */
class BiModePredictor : public FastPredictorBase<BiModePredictor>
{
  public:
    /** Bank identifiers as exposed in PredictionDetail::bank. */
    static constexpr std::uint32_t kNotTakenBank = 0;
    static constexpr std::uint32_t kTakenBank = 1;

    explicit BiModePredictor(const BiModeConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;

    /** Counters across both direction banks; ids are bank-major
     *  (not-taken bank first). The choice table is not included. */
    std::uint64_t directionCounters() const override;

    /** Direction-bank index for @p pc under the current history. */
    std::size_t
    directionIndexFor(std::uint64_t pc) const
    {
        const std::uint64_t address =
            pcIndexBits(pc, cfg.directionIndexBits);
        return static_cast<std::size_t>(address ^ history.value());
    }

    /** Choice-table index for @p pc. */
    std::size_t
    choiceIndexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            pcIndexBits(pc, cfg.choiceIndexBits));
    }

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        std::size_t choice_index, direction_index;
        indicesFor(pc, choice_index, direction_index);
        const std::uint32_t bank = choice.predictTaken(choice_index)
            ? kTakenBank : kNotTakenBank;
        return banks[bank].predictTaken(direction_index);
    }

    /**
     * Fused hot path: predict and update sharing one set of table
     * lookups. Returns the prediction predictFast() would have made
     * immediately before updateFast(); the state transition is
     * identical to predict-then-update.
     */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        std::size_t choice_index, index;
        indicesFor(pc, choice_index, index);
        const bool choice_taken = choice.predictTaken(choice_index);
        const std::uint32_t bank =
            choice_taken ? kTakenBank : kNotTakenBank;
        const bool prediction = banks[bank].predictTaken(index);

        // Direction banks: partial update — only the serving counter
        // learns the outcome, so the unselected bank's state for this
        // history pattern is preserved for the branches that live
        // there.
        banks[bank].update(index, taken);
        if (!cfg.partialUpdate)
            banks[bank ^ 1].update(index, taken);

        // Choice table: always trained toward the outcome, except
        // when it chose the "wrong" bank but that bank still
        // predicted correctly — evicting the branch from a bank that
        // serves it well would only create new interference.
        const bool keep_choice =
            !cfg.alwaysUpdateChoice &&
            choice_taken != taken && prediction == taken;
        if (!keep_choice)
            choice.update(choice_index, taken);

        history.push(taken);
        return prediction;
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        (void)stepFast(pc, taken);
    }

    const BiModeConfig &config() const { return cfg; }

    /** Read-only component access for tests and analyses. */
    const CounterTable &choiceTable() const { return choice; }
    const CounterTable &takenBank() const { return banks[kTakenBank]; }
    const CounterTable &notTakenBank() const { return banks[kNotTakenBank]; }

    /** Mutable SoA views for the SIMD bank (sim/simd/simd_bank.cc),
     *  which copies the tables and history into vector lane state
     *  and back. */
    CounterTable &choiceTableRef() { return choice; }
    CounterTable &bankRef(std::uint32_t bank) { return banks[bank]; }
    HistoryRegister &historyRef() { return history; }

  private:
    /**
     * Both table indices at once, deriving the shared word address a
     * single time instead of once per table as choiceIndexFor() and
     * directionIndexFor() do — bit-identical results minus the
     * re-derived subexpression. This is the hot-kernel entry: every
     * stepFast() needs both indices, and the scalar bank loop pays
     * this per lane per branch.
     */
    void
    indicesFor(std::uint64_t pc, std::size_t &choiceIndex,
               std::size_t &directionIndex) const
    {
        const std::uint64_t word = pc >> 2;
        choiceIndex = static_cast<std::size_t>(
            word & maskBits(cfg.choiceIndexBits));
        directionIndex = static_cast<std::size_t>(
            (word & maskBits(cfg.directionIndexBits)) ^
            history.value());
    }

    BiModeConfig cfg;
    HistoryRegister history;
    CounterTable choice;
    /** banks[0] = not-taken bank, banks[1] = taken bank. */
    CounterTable banks[2];
};

} // namespace bpsim

#endif // BPSIM_CORE_BIMODE_HH
