#include "core/factory.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <utility>

#include "core/bimode.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/filter.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/perceptron.hh"
#include "predictors/static_predictors.hh"
#include "predictors/tournament.hh"
#include "predictors/twolevel.hh"
#include "predictors/yags.hh"
#include "util/logging.hh"

namespace bpsim
{

ParseResult
PredictorSpec::tryParse(const std::string &text)
{
    ParseResult result;
    PredictorSpec &spec = result.spec;
    const auto colon = text.find(':');
    spec.kind = text.substr(0, colon);
    if (spec.kind.empty()) {
        result.error = "empty predictor kind in '" + text + "'";
        return result;
    }
    if (colon == std::string::npos)
        return result;

    std::string rest = text.substr(colon + 1);
    std::size_t start = 0;
    while (start <= rest.size()) {
        auto comma = rest.find(',', start);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string pair = rest.substr(start, comma - start);
        if (!pair.empty()) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos || eq == 0) {
                result.error = "bad parameter '" + pair + "' in '" +
                               text + "' (expected key=value)";
                return result;
            }
            const std::string key = pair.substr(0, eq);
            const std::string value_text = pair.substr(eq + 1);
            // strtoul happily wraps negatives ("d=-1" parses as
            // 2^64-1) and a cast would truncate >32-bit values, so
            // both must be rejected before conversion.
            if (value_text.find('-') != std::string::npos) {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text +
                               "' must be non-negative";
                return result;
            }
            char *end = nullptr;
            errno = 0;
            const unsigned long long value =
                std::strtoull(value_text.c_str(), &end, 0);
            if (end == value_text.c_str() || *end != '\0') {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text + "' is not a number";
                return result;
            }
            if (errno == ERANGE || value > UINT_MAX) {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text +
                               "' is out of range (max " +
                               std::to_string(UINT_MAX) + ")";
                return result;
            }
            const bool inserted =
                spec.params
                    .emplace(key, static_cast<unsigned>(value))
                    .second;
            if (!inserted) {
                result.error = "duplicate parameter " + key + " in '" +
                               text + "'";
                return result;
            }
        }
        start = comma + 1;
    }
    return result;
}

PredictorSpec
PredictorSpec::parse(const std::string &text)
{
    ParseResult result = tryParse(text);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.spec);
}

unsigned
PredictorSpec::get(const std::string &key, unsigned def) const
{
    const auto it = params.find(key);
    return it == params.end() ? def : it->second;
}

unsigned
PredictorSpec::require(const std::string &key) const
{
    const auto it = params.find(key);
    if (it == params.end())
        BPSIM_FATAL("predictor '" << kind << "' requires parameter "
                    << key << "=<value>");
    return it->second;
}

namespace
{

/** Thrown by build() on configuration errors; caught and converted
 *  to a PredictorResult by tryMakePredictor(). */
struct SpecError
{
    std::string message;
};

unsigned
requireParam(const PredictorSpec &spec, const std::string &key)
{
    const auto it = spec.params.find(key);
    if (it == spec.params.end())
        throw SpecError{"predictor '" + spec.kind +
                        "' requires parameter " + key + "=<value>"};
    return it->second;
}

PredictorPtr
build(const PredictorSpec &spec)
{
    const std::string &kind = spec.kind;

    if (kind == "taken")
        return std::make_unique<AlwaysTakenPredictor>();
    if (kind == "nottaken")
        return std::make_unique<AlwaysNotTakenPredictor>();
    if (kind == "btfn")
        return std::make_unique<BtfnPredictor>(spec.get("l", 12));
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>(
            requireParam(spec, "n"), spec.get("w", 2));
    if (kind == "gag") {
        TwoLevelConfig cfg = makeGAg(requireParam(spec, "h"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
    if (kind == "gas") {
        TwoLevelConfig cfg =
            makeGAs(requireParam(spec, "h"), requireParam(spec, "a"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
    if (kind == "pag") {
        TwoLevelConfig cfg =
            makePAg(requireParam(spec, "h"), requireParam(spec, "l"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
    if (kind == "pas") {
        TwoLevelConfig cfg =
            makePAs(requireParam(spec, "h"), requireParam(spec, "l"),
                    requireParam(spec, "a"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
    if (kind == "gshare") {
        const unsigned n = requireParam(spec, "n");
        return std::make_unique<GsharePredictor>(n, spec.get("h", n),
                                                 spec.get("w", 2));
    }
    if (kind == "bimode") {
        const unsigned d = requireParam(spec, "d");
        BiModeConfig cfg;
        cfg.directionIndexBits = d;
        cfg.choiceIndexBits = spec.get("c", d);
        cfg.historyBits = spec.get("h", d);
        cfg.counterWidth = spec.get("w", 2);
        cfg.partialUpdate = spec.get("partial", 1) != 0;
        cfg.alwaysUpdateChoice = spec.get("alwayschoice", 0) != 0;
        return std::make_unique<BiModePredictor>(cfg);
    }
    if (kind == "agree") {
        const unsigned n = requireParam(spec, "n");
        AgreeConfig cfg;
        cfg.indexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.biasIndexBits = spec.get("b", n);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<AgreePredictor>(cfg);
    }
    if (kind == "gskew") {
        const unsigned n = requireParam(spec, "n");
        GskewConfig cfg;
        cfg.bankIndexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.counterWidth = spec.get("w", 2);
        cfg.partialUpdate = spec.get("partial", 1) != 0;
        return std::make_unique<GskewPredictor>(cfg);
    }
    if (kind == "yags") {
        YagsConfig cfg;
        cfg.choiceIndexBits = requireParam(spec, "c");
        cfg.cacheIndexBits = requireParam(spec, "n");
        cfg.tagBits = spec.get("t", 6);
        cfg.historyBits = spec.get("h", cfg.cacheIndexBits);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<YagsPredictor>(cfg);
    }
    if (kind == "tournament")
        return TournamentPredictor::makeStandard(requireParam(spec, "n"));
    if (kind == "filter") {
        const unsigned n = requireParam(spec, "n");
        FilterConfig cfg;
        cfg.indexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.filterIndexBits = spec.get("b", n);
        cfg.filterCounterBits = spec.get("k", 6);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<FilterPredictor>(cfg);
    }
    if (kind == "perceptron") {
        PerceptronConfig cfg;
        cfg.tableIndexBits = requireParam(spec, "n");
        cfg.historyBits = spec.get("h", 24);
        cfg.weightBits = spec.get("w", 8);
        return std::make_unique<PerceptronPredictor>(cfg);
    }

    throw SpecError{"unknown predictor kind '" + kind + "'"};
}

} // namespace

PredictorResult
tryMakePredictor(const PredictorSpec &spec)
{
    try {
        return {build(spec), {}};
    } catch (const SpecError &err) {
        return {nullptr, err.message};
    }
}

PredictorResult
tryMakePredictor(const std::string &configText)
{
    ParseResult parsed = PredictorSpec::tryParse(configText);
    if (!parsed.ok())
        return {nullptr, std::move(parsed.error)};
    return tryMakePredictor(parsed.spec);
}

PredictorPtr
makePredictor(const std::string &configText)
{
    PredictorResult result = tryMakePredictor(configText);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.predictor);
}

PredictorPtr
makePredictor(const PredictorSpec &spec)
{
    PredictorResult result = tryMakePredictor(spec);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.predictor);
}

std::vector<std::string>
knownPredictorKinds()
{
    return {"taken", "nottaken", "btfn", "bimodal", "gag", "gas", "pag",
            "pas", "gshare", "bimode", "agree", "gskew", "yags",
            "tournament", "perceptron", "filter"};
}

bool
hasFastReplay(const std::string &kind)
{
    return kind == "bimodal" || kind == "gshare" || kind == "bimode" ||
           kind == "agree" || kind == "gskew" || kind == "yags" ||
           kind == "tournament";
}

std::string
fastReplayKind(const std::string &configText)
{
    ParseResult parsed = PredictorSpec::tryParse(configText);
    if (!parsed.ok() || !hasFastReplay(parsed.spec.kind))
        return {};
    return std::move(parsed.spec.kind);
}

} // namespace bpsim
