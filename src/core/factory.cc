#include "core/factory.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/registry.hh"
#include "util/logging.hh"

namespace bpsim
{

ParseResult
PredictorSpec::tryParse(const std::string &text)
{
    ParseResult result;
    PredictorSpec &spec = result.spec;
    const auto colon = text.find(':');
    spec.kind = text.substr(0, colon);
    if (spec.kind.empty()) {
        result.error = "empty predictor kind in '" + text + "'";
        return result;
    }
    if (colon == std::string::npos)
        return result;

    std::string rest = text.substr(colon + 1);
    std::size_t start = 0;
    while (start <= rest.size()) {
        auto comma = rest.find(',', start);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string pair = rest.substr(start, comma - start);
        if (!pair.empty()) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos || eq == 0) {
                result.error = "bad parameter '" + pair + "' in '" +
                               text + "' (expected key=value)";
                return result;
            }
            const std::string key = pair.substr(0, eq);
            const std::string value_text = pair.substr(eq + 1);
            // strtoul happily wraps negatives ("d=-1" parses as
            // 2^64-1) and a cast would truncate >32-bit values, so
            // both must be rejected before conversion.
            if (value_text.find('-') != std::string::npos) {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text +
                               "' must be non-negative";
                return result;
            }
            char *end = nullptr;
            errno = 0;
            const unsigned long long value =
                std::strtoull(value_text.c_str(), &end, 0);
            if (end == value_text.c_str() || *end != '\0') {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text + "' is not a number";
                return result;
            }
            if (errno == ERANGE || value > UINT_MAX) {
                result.error = "parameter " + key + "='" + value_text +
                               "' in '" + text +
                               "' is out of range (max " +
                               std::to_string(UINT_MAX) + ")";
                return result;
            }
            const bool inserted =
                spec.params
                    .emplace(key, static_cast<unsigned>(value))
                    .second;
            if (!inserted) {
                result.error = "duplicate parameter " + key + " in '" +
                               text + "'";
                return result;
            }
        }
        start = comma + 1;
    }
    return result;
}

PredictorSpec
PredictorSpec::parse(const std::string &text)
{
    ParseResult result = tryParse(text);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.spec);
}

unsigned
PredictorSpec::get(const std::string &key, unsigned def) const
{
    const auto it = params.find(key);
    return it == params.end() ? def : it->second;
}

unsigned
PredictorSpec::require(const std::string &key) const
{
    const auto it = params.find(key);
    if (it == params.end())
        BPSIM_FATAL("predictor '" << kind << "' requires parameter "
                    << key << "=<value>");
    return it->second;
}

namespace
{

/**
 * Registry fold replacing the old hand-written if-chain: the first
 * entry whose kind matches validates the spec against its schema and
 * builds. Throws SpecError on unknown kinds, unknown or missing
 * parameter keys, and builder-detected configuration errors.
 */
PredictorPtr
build(const PredictorSpec &spec)
{
    PredictorPtr predictor;
    bool matched = false;
    forEachPredictorEntry([&]<typename Entry>() {
        if (matched || spec.kind != Entry::kind)
            return;
        matched = true;
        validateSpecParams<Entry>(spec);
        predictor = Entry::build(spec);
    });
    if (!matched)
        throw SpecError{"unknown predictor kind '" + spec.kind + "'"};
    return predictor;
}

} // namespace

PredictorResult
tryMakePredictor(const PredictorSpec &spec)
{
    try {
        return {build(spec), {}};
    } catch (const SpecError &err) {
        return {nullptr, err.message};
    }
}

PredictorResult
tryMakePredictor(const std::string &configText)
{
    ParseResult parsed = PredictorSpec::tryParse(configText);
    if (!parsed.ok())
        return {nullptr, std::move(parsed.error)};
    return tryMakePredictor(parsed.spec);
}

PredictorPtr
makePredictor(const std::string &configText)
{
    PredictorResult result = tryMakePredictor(configText);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.predictor);
}

PredictorPtr
makePredictor(const PredictorSpec &spec)
{
    PredictorResult result = tryMakePredictor(spec);
    if (!result.ok())
        BPSIM_FATAL(result.error);
    return std::move(result.predictor);
}

std::vector<std::string>
knownPredictorKinds()
{
    std::vector<std::string> kinds;
    kinds.reserve(PredictorRegistry::size);
    forEachPredictorEntry(
        [&]<typename Entry>() { kinds.push_back(Entry::kind); });
    return kinds;
}

bool
hasFastReplay(const std::string &kind)
{
    bool fast = false;
    forEachPredictorEntry([&]<typename Entry>() {
        fast = fast || (Entry::fastReplay && kind == Entry::kind);
    });
    return fast;
}

std::vector<PredictorKindInfo>
predictorKindInfos()
{
    std::vector<PredictorKindInfo> infos;
    infos.reserve(PredictorRegistry::size);
    forEachPredictorEntry([&]<typename Entry>() {
        PredictorKindInfo info;
        info.kind = Entry::kind;
        info.description = Entry::doc;
        info.example = Entry::example;
        info.fastReplay = Entry::fastReplay;
        for (const ParamSpec &param : Entry::params)
            info.params.push_back(
                {param.key, param.required, param.doc});
        infos.push_back(std::move(info));
    });
    return infos;
}

std::string
predictorGrammarHelp()
{
    std::ostringstream os;
    os << "predictor config grammar: kind[:key=value[,key=value...]]\n";
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        os << "  " << info.example << "\n      " << info.description;
        if (info.fastReplay)
            os << " [fast replay]";
        os << "\n";
        for (const ParamInfo &param : info.params) {
            os << "      " << param.key << "  " << param.doc;
            if (param.required)
                os << " (required)";
            os << "\n";
        }
    }
    return os.str();
}

std::string
fastReplayKind(const std::string &configText)
{
    ParseResult parsed = PredictorSpec::tryParse(configText);
    if (!parsed.ok() || !hasFastReplay(parsed.spec.kind))
        return {};
    return std::move(parsed.spec.kind);
}

} // namespace bpsim
