/**
 * @file
 * The compile-time predictor registry: the single source of truth
 * for every predictor kind the project knows.
 *
 * One entry per factory kind declares, in one place,
 *
 *  - the kind string (`kind`) and a one-line description (`doc`),
 *  - the concrete C++ type (`Predictor`),
 *  - the parameter schema (`params`: key, required-or-defaulted,
 *    doc string) and a documented example config (`example`),
 *  - the builder (`build()`), and
 *  - whether the type has a devirtualized replay kernel
 *    (`fastReplay`, see sim/replay_kernel.hh).
 *
 * Every dispatch site in the system is a fold over this list:
 * core/factory.cc derives construction, parameter validation,
 * knownPredictorKinds(), hasFastReplay() and the grammar help text;
 * sim/replay.cc derives the typed kernel dispatch for both the solo
 * and the banked replay paths. Adding a predictor kind is therefore
 * exactly two steps — give the type a fast core (or not) and append
 * one entry here — and the factory, the replay kernels, the campaign
 * fusion scheduler and the registry-driven tests all pick it up with
 * no further code.
 *
 * The entries are plain structs with static members rather than
 * runtime registration so the replay layer can instantiate the
 * templated kernels per concrete type: the `fastReplay` flag is a
 * `constexpr` bool precisely so `if constexpr` folds can skip
 * kernel instantiation for types without a fast core.
 */

#ifndef BPSIM_CORE_REGISTRY_HH
#define BPSIM_CORE_REGISTRY_HH

#include <array>
#include <string>
#include <utility>

#include "core/bimode.hh"
#include "core/factory.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/filter.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/perceptron.hh"
#include "predictors/static_predictors.hh"
#include "predictors/tournament.hh"
#include "predictors/twolevel.hh"
#include "predictors/yags.hh"

namespace bpsim
{

/** One parameter in a registry entry's schema. */
struct ParamSpec
{
    /** Key as written in the config string (`key=value`). */
    const char *key;
    /** True when the builder has no default for this key. */
    bool required;
    /** Human-readable meaning, including the default for optional
     *  keys. */
    const char *doc;
};

/**
 * Thrown by registry builders and parameter validation on
 * configuration errors; caught and converted to a PredictorResult by
 * tryMakePredictor() in core/factory.cc. Never escapes the factory.
 */
struct SpecError
{
    std::string message;
};

/** Schema-checked required-parameter lookup for builders. Validation
 *  runs before any builder, so this only fires if an entry's builder
 *  requires a key its schema forgot to declare. */
inline unsigned
requireParam(const PredictorSpec &spec, const char *key)
{
    const auto it = spec.params.find(key);
    if (it == spec.params.end())
        throw SpecError{"predictor '" + spec.kind +
                        "' requires parameter " + key + "=<value>"};
    return it->second;
}

/*
 * The registry entries, in the order knownPredictorKinds() reports
 * them. Each is self-contained: schema, docs and builder together.
 */

struct TakenEntry
{
    using Predictor = AlwaysTakenPredictor;
    static constexpr const char *kind = "taken";
    static constexpr const char *doc = "static always-taken baseline";
    static constexpr const char *example = "taken";
    static constexpr bool fastReplay = false;
    static constexpr std::array<ParamSpec, 0> params{};

    static PredictorPtr
    build(const PredictorSpec &)
    {
        return std::make_unique<AlwaysTakenPredictor>();
    }
};

struct NotTakenEntry
{
    using Predictor = AlwaysNotTakenPredictor;
    static constexpr const char *kind = "nottaken";
    static constexpr const char *doc = "static always-not-taken baseline";
    static constexpr const char *example = "nottaken";
    static constexpr bool fastReplay = false;
    static constexpr std::array<ParamSpec, 0> params{};

    static PredictorPtr
    build(const PredictorSpec &)
    {
        return std::make_unique<AlwaysNotTakenPredictor>();
    }
};

struct BtfnEntry
{
    using Predictor = BtfnPredictor;
    static constexpr const char *kind = "btfn";
    static constexpr const char *doc =
        "backward-taken/forward-not-taken static heuristic";
    static constexpr const char *example = "btfn:l=10";
    static constexpr bool fastReplay = false;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"l", false, "log2 of the direction-sense cache (default 12)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        return std::make_unique<BtfnPredictor>(spec.get("l", 12));
    }
};

struct BimodalEntry
{
    using Predictor = BimodalPredictor;
    static constexpr const char *kind = "bimodal";
    static constexpr const char *doc =
        "pc-indexed saturating counters (Smith 1981)";
    static constexpr const char *example = "bimodal:n=12";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 of the counter count"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        return std::make_unique<BimodalPredictor>(
            requireParam(spec, "n"), spec.get("w", 2));
    }
};

struct GagEntry
{
    using Predictor = TwoLevelPredictor;
    static constexpr const char *kind = "gag";
    static constexpr const char *doc =
        "two-level GAg: global history, one PHT (Yeh-Patt)";
    static constexpr const char *example = "gag:h=12";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"h", true, "global history bits (PHT holds 2^h counters)"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        TwoLevelConfig cfg = makeGAg(requireParam(spec, "h"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
};

struct GasEntry
{
    using Predictor = TwoLevelPredictor;
    static constexpr const char *kind = "gas";
    static constexpr const char *doc =
        "two-level GAs: global history, 2^a pc-selected PHTs";
    static constexpr const char *example = "gas:h=8,a=4";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"h", true, "global history bits"},
        {"a", true, "pc bits selecting among 2^a PHTs"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        TwoLevelConfig cfg =
            makeGAs(requireParam(spec, "h"), requireParam(spec, "a"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
};

struct PagEntry
{
    using Predictor = TwoLevelPredictor;
    static constexpr const char *kind = "pag";
    static constexpr const char *doc =
        "two-level PAg: per-address history, one PHT";
    static constexpr const char *example = "pag:h=10,l=10";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"h", true, "per-address history bits"},
        {"l", true, "log2 of the per-address history table"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        TwoLevelConfig cfg =
            makePAg(requireParam(spec, "h"), requireParam(spec, "l"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
};

struct PasEntry
{
    using Predictor = TwoLevelPredictor;
    static constexpr const char *kind = "pas";
    static constexpr const char *doc =
        "two-level PAs: per-address history, 2^a pc-selected PHTs";
    static constexpr const char *example = "pas:h=8,l=10,a=2";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"h", true, "per-address history bits"},
        {"l", true, "log2 of the per-address history table"},
        {"a", true, "pc bits selecting among 2^a PHTs"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        TwoLevelConfig cfg =
            makePAs(requireParam(spec, "h"), requireParam(spec, "l"),
                    requireParam(spec, "a"));
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<TwoLevelPredictor>(cfg);
    }
};

struct GshareEntry
{
    using Predictor = GsharePredictor;
    static constexpr const char *kind = "gshare";
    static constexpr const char *doc =
        "global-history xor-indexed two-level (McFarling 1993)";
    static constexpr const char *example = "gshare:n=12,h=12";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 of the counter count"},
        {"h", false, "global history bits (default: n)"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        const unsigned n = requireParam(spec, "n");
        return std::make_unique<GsharePredictor>(n, spec.get("h", n),
                                                 spec.get("w", 2));
    }
};

struct BiModeEntry
{
    using Predictor = BiModePredictor;
    static constexpr const char *kind = "bimode";
    static constexpr const char *doc =
        "the bi-mode predictor (Lee, Chen & Mudge, MICRO-30)";
    static constexpr const char *example = "bimode:d=11,c=11,h=11";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"d", true, "log2 counters per direction bank"},
        {"c", false, "log2 of the choice table (default: d)"},
        {"h", false, "global history bits (default: d)"},
        {"w", false, "counter width in bits (default 2)"},
        {"partial", false,
         "1 = paper's partial update, 0 = both banks (default 1)"},
        {"alwayschoice", false,
         "1 = always train the choice table ablation (default 0)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        const unsigned d = requireParam(spec, "d");
        BiModeConfig cfg;
        cfg.directionIndexBits = d;
        cfg.choiceIndexBits = spec.get("c", d);
        cfg.historyBits = spec.get("h", d);
        cfg.counterWidth = spec.get("w", 2);
        cfg.partialUpdate = spec.get("partial", 1) != 0;
        cfg.alwaysUpdateChoice = spec.get("alwayschoice", 0) != 0;
        return std::make_unique<BiModePredictor>(cfg);
    }
};

struct AgreeEntry
{
    using Predictor = AgreePredictor;
    static constexpr const char *kind = "agree";
    static constexpr const char *doc =
        "bias-agreement de-aliased gshare (Sprangle et al., ISCA 1997)";
    static constexpr const char *example = "agree:n=12,h=12,b=12";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 of the agree-counter table"},
        {"h", false, "global history bits (default: n)"},
        {"b", false, "log2 of the biasing-bit table (default: n)"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        const unsigned n = requireParam(spec, "n");
        AgreeConfig cfg;
        cfg.indexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.biasIndexBits = spec.get("b", n);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<AgreePredictor>(cfg);
    }
};

struct GskewEntry
{
    using Predictor = GskewPredictor;
    static constexpr const char *kind = "gskew";
    static constexpr const char *doc =
        "majority-vote skewed predictor, e-gskew (Michaud et al.)";
    static constexpr const char *example = "gskew:n=11,h=11";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 counters per bank (three banks)"},
        {"h", false, "global history bits (default: n)"},
        {"w", false, "counter width in bits (default 2)"},
        {"partial", false,
         "1 = e-gskew partial update, 0 = all banks (default 1)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        const unsigned n = requireParam(spec, "n");
        GskewConfig cfg;
        cfg.bankIndexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.counterWidth = spec.get("w", 2);
        cfg.partialUpdate = spec.get("partial", 1) != 0;
        return std::make_unique<GskewPredictor>(cfg);
    }
};

struct YagsEntry
{
    using Predictor = YagsPredictor;
    static constexpr const char *kind = "yags";
    static constexpr const char *doc =
        "tagged-exception-cache bi-mode successor (Eden & Mudge)";
    static constexpr const char *example = "yags:c=12,n=10,t=6,h=10";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"c", true, "log2 of the choice (bimodal) table"},
        {"n", true, "log2 of each direction cache"},
        {"t", false, "partial tag bits per cache entry (default 6)"},
        {"h", false, "global history bits (default: n)"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        YagsConfig cfg;
        cfg.choiceIndexBits = requireParam(spec, "c");
        cfg.cacheIndexBits = requireParam(spec, "n");
        cfg.tagBits = spec.get("t", 6);
        cfg.historyBits = spec.get("h", cfg.cacheIndexBits);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<YagsPredictor>(cfg);
    }
};

struct TournamentEntry
{
    using Predictor = TournamentPredictor;
    static constexpr const char *kind = "tournament";
    static constexpr const char *doc =
        "meta-selected bimodal+gshare pair (McFarling 1993)";
    static constexpr const char *example = "tournament:n=12";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true,
         "log2 of the meta table and of each component's table"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        return TournamentPredictor::makeStandard(
            requireParam(spec, "n"));
    }
};

struct PerceptronEntry
{
    using Predictor = PerceptronPredictor;
    static constexpr const char *kind = "perceptron";
    static constexpr const char *doc =
        "table-of-perceptrons predictor (Jimenez & Lin, HPCA 2001)";
    static constexpr const char *example = "perceptron:n=8,h=24";
    static constexpr bool fastReplay = false;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 of the perceptron table"},
        {"h", false, "global history bits == weights (default 24)"},
        {"w", false, "weight width in bits (default 8)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        PerceptronConfig cfg;
        cfg.tableIndexBits = requireParam(spec, "n");
        cfg.historyBits = spec.get("h", 24);
        cfg.weightBits = spec.get("w", 8);
        return std::make_unique<PerceptronPredictor>(cfg);
    }
};

struct FilterEntry
{
    using Predictor = FilterPredictor;
    static constexpr const char *kind = "filter";
    static constexpr const char *doc =
        "PHT-interference-filtering gshare (Chang et al., PACT 1996)";
    static constexpr const char *example = "filter:n=12,h=12,b=12,k=6";
    static constexpr bool fastReplay = true;
    static constexpr auto params = std::to_array<ParamSpec>({
        {"n", true, "log2 of the gshare-indexed PHT"},
        {"h", false, "global history bits (default: n)"},
        {"b", false, "log2 of the per-branch filter table (default: n)"},
        {"k", false, "run-counter bits; saturation filters (default 6)"},
        {"w", false, "counter width in bits (default 2)"},
    });

    static PredictorPtr
    build(const PredictorSpec &spec)
    {
        const unsigned n = requireParam(spec, "n");
        FilterConfig cfg;
        cfg.indexBits = n;
        cfg.historyBits = spec.get("h", n);
        cfg.filterIndexBits = spec.get("b", n);
        cfg.filterCounterBits = spec.get("k", 6);
        cfg.counterWidth = spec.get("w", 2);
        return std::make_unique<FilterPredictor>(cfg);
    }
};

/** The ordered compile-time list of registry entries. */
template <typename... Entries>
struct EntryList
{
    /** Calls `f.template operator()<Entry>()` for each entry, in
     *  order. F is usually a templated lambda:
     *  `[&]<typename E>() { ... }`. */
    template <typename F>
    static void
    forEach(F &&f)
    {
        (f.template operator()<Entries>(), ...);
    }

    static constexpr std::size_t size = sizeof...(Entries);
};

/**
 * The registry. Entry order is the public kind order
 * (knownPredictorKinds(), help text, registry-driven tests).
 */
using PredictorRegistry =
    EntryList<TakenEntry, NotTakenEntry, BtfnEntry, BimodalEntry,
              GagEntry, GasEntry, PagEntry, PasEntry, GshareEntry,
              BiModeEntry, AgreeEntry, GskewEntry, YagsEntry,
              TournamentEntry, PerceptronEntry, FilterEntry>;

/** Folds @p f over every registry entry, in kind order. */
template <typename F>
void
forEachPredictorEntry(F &&f)
{
    PredictorRegistry::forEach(std::forward<F>(f));
}

/** Comma-separated accepted-key list of an entry's schema. */
template <typename Entry>
std::string
acceptedKeyList()
{
    std::string keys;
    for (const ParamSpec &param : Entry::params) {
        if (!keys.empty())
            keys += ", ";
        keys += param.key;
    }
    return keys;
}

/**
 * Validates @p spec against @p Entry's schema: every key must be
 * declared (misspelled keys like `gshare:hist=12` used to fall back
 * to defaults silently) and every required key must be present.
 * Throws SpecError; runs before the entry's builder.
 */
template <typename Entry>
void
validateSpecParams(const PredictorSpec &spec)
{
    for (const auto &given : spec.params) {
        bool known = false;
        for (const ParamSpec &param : Entry::params)
            known = known || given.first == param.key;
        if (!known) {
            std::string message = "unknown parameter '" + given.first +
                                  "' for predictor '" + spec.kind + "'";
            if (Entry::params.empty())
                message += " (takes no parameters)";
            else
                message +=
                    " (accepted keys: " + acceptedKeyList<Entry>() + ")";
            throw SpecError{std::move(message)};
        }
    }
    for (const ParamSpec &param : Entry::params) {
        if (param.required &&
            spec.params.find(param.key) == spec.params.end())
            throw SpecError{"predictor '" + spec.kind +
                            "' requires parameter " + param.key +
                            "=<value>"};
    }
}

} // namespace bpsim

#endif // BPSIM_CORE_REGISTRY_HH
