/**
 * @file
 * Construction of predictors from configuration strings.
 *
 * Grammar: `kind[:key=value[,key=value...]]`, e.g.
 *
 *   taken | nottaken | btfn:l=10
 *   bimodal:n=12
 *   gag:h=12 | gas:h=8,a=4 | pag:h=10,l=10 | pas:h=8,l=10,a=2
 *   gshare:n=12,h=12
 *   bimode:d=11,c=11,h=11
 *   agree:n=12,h=12,b=12
 *   gskew:n=11,h=11
 *   yags:c=12,n=10,t=6,h=10
 *   tournament:n=12
 *   perceptron:n=8,h=24
 *   filter:n=12,h=12,b=12,k=6
 *
 * Every example and benchmark binary accepts these strings, making
 * any predictor in the library reachable from the command line.
 */

#ifndef BPSIM_CORE_FACTORY_HH
#define BPSIM_CORE_FACTORY_HH

#include <map>
#include <string>
#include <vector>

#include "predictors/predictor.hh"

namespace bpsim
{

/** Parsed form of a predictor configuration string. */
struct PredictorSpec
{
    std::string kind;
    std::map<std::string, unsigned> params;

    /** Parses `kind:k=v,...`; fatal() on syntax errors. */
    static PredictorSpec parse(const std::string &text);

    /** Parameter lookup with a default. */
    unsigned get(const std::string &key, unsigned def) const;

    /** Parameter lookup that fatal()s when the key is missing. */
    unsigned require(const std::string &key) const;
};

/** Instantiates a predictor from a configuration string. */
PredictorPtr makePredictor(const std::string &configText);

/** Instantiates a predictor from a parsed spec. */
PredictorPtr makePredictor(const PredictorSpec &spec);

/** The list of recognized predictor kinds (for help texts). */
std::vector<std::string> knownPredictorKinds();

} // namespace bpsim

#endif // BPSIM_CORE_FACTORY_HH
