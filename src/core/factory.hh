/**
 * @file
 * Construction of predictors from configuration strings.
 *
 * Grammar: `kind[:key=value[,key=value...]]`. The kinds, their
 * parameter schemas and their builders all live in the compile-time
 * registry (core/registry.hh); this block mirrors the registry's
 * documented examples (predictorKindInfos() exposes them at
 * runtime, predictorGrammarHelp() renders the full schema):
 *
 *   taken | nottaken | btfn:l=10
 *   bimodal:n=12
 *   gag:h=12 | gas:h=8,a=4 | pag:h=10,l=10 | pas:h=8,l=10,a=2
 *   gshare:n=12,h=12
 *   bimode:d=11,c=11,h=11
 *   agree:n=12,h=12,b=12
 *   gskew:n=11,h=11
 *   yags:c=12,n=10,t=6,h=10
 *   tournament:n=12
 *   perceptron:n=8,h=24
 *   filter:n=12,h=12,b=12,k=6
 *
 * Every example and benchmark binary accepts these strings, making
 * any predictor in the library reachable from the command line.
 * Parameter keys are validated against the kind's schema: a
 * misspelled key (`gshare:hist=12`) is a construction error naming
 * the accepted keys, never a silent fall-back to a default.
 *
 * Two error-handling flavours are provided. The try-APIs
 * (PredictorSpec::tryParse(), tryMakePredictor()) report syntax and
 * configuration errors through a result object and never terminate —
 * batch drivers such as the campaign engine use them to surface
 * per-job errors without killing a whole run. The classic APIs
 * (PredictorSpec::parse(), makePredictor()) are thin wrappers that
 * fatal() on the same errors, for interactive tools where dying with
 * a message is the right behaviour.
 */

#ifndef BPSIM_CORE_FACTORY_HH
#define BPSIM_CORE_FACTORY_HH

#include <map>
#include <string>
#include <vector>

#include "predictors/predictor.hh"

namespace bpsim
{

struct ParseResult;

/** Parsed form of a predictor configuration string. */
struct PredictorSpec
{
    std::string kind;
    std::map<std::string, unsigned> params;

    /**
     * Parses `kind:k=v,...` without aborting. Syntax errors (missing
     * kind, malformed pairs, non-numeric values, duplicate keys) are
     * reported in ParseResult::error.
     */
    static ParseResult tryParse(const std::string &text);

    /** Parses `kind:k=v,...`; fatal() on syntax errors. */
    static PredictorSpec parse(const std::string &text);

    /** Parameter lookup with a default. */
    unsigned get(const std::string &key, unsigned def) const;

    /** Parameter lookup that fatal()s when the key is missing. */
    unsigned require(const std::string &key) const;
};

/** Outcome of PredictorSpec::tryParse(). */
struct ParseResult
{
    PredictorSpec spec;
    /** Empty on success; a human-readable message otherwise. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Outcome of tryMakePredictor(). */
struct PredictorResult
{
    /** Null when construction failed. */
    PredictorPtr predictor;
    /** Empty on success; a human-readable message otherwise. */
    std::string error;

    bool ok() const { return predictor != nullptr; }
};

/**
 * Instantiates a predictor from a configuration string without
 * aborting: parse errors, unknown kinds and missing required
 * parameters all come back in PredictorResult::error.
 */
PredictorResult tryMakePredictor(const std::string &configText);

/** Instantiates a predictor from a parsed spec without aborting. */
PredictorResult tryMakePredictor(const PredictorSpec &spec);

/** Instantiates a predictor from a configuration string; fatal() on
 *  any error. */
PredictorPtr makePredictor(const std::string &configText);

/** Instantiates a predictor from a parsed spec; fatal() on any
 *  error. */
PredictorPtr makePredictor(const PredictorSpec &spec);

/** The list of recognized predictor kinds (for help texts), in
 *  registry order. */
std::vector<std::string> knownPredictorKinds();

/** Runtime view of one schema parameter (see core/registry.hh). */
struct ParamInfo
{
    std::string key;
    /** True when the key has no default and must be given. */
    bool required = false;
    std::string doc;
};

/** Runtime view of one registry entry, for help texts, docs and the
 *  registry-driven tests. */
struct PredictorKindInfo
{
    std::string kind;
    /** One-line description of the scheme. */
    std::string description;
    /** A documented, always-constructible example config string. */
    std::string example;
    /** True when the kind runs on the devirtualized replay kernel. */
    bool fastReplay = false;
    std::vector<ParamInfo> params;
};

/** One entry per registered kind, in registry order — the runtime
 *  projection of the compile-time registry (core/registry.hh). */
std::vector<PredictorKindInfo> predictorKindInfos();

/** The full config grammar with per-kind parameter schemas, rendered
 *  from the registry for --help texts. */
std::string predictorGrammarHelp();

/**
 * True when predictors of @p kind have a devirtualized batched replay
 * kernel (sim/replay.hh). Runs of other kinds — and runs needing
 * per-branch tracking — use the virtual simulate() loop. The two
 * paths are bit-identical; this only classifies which one the
 * dispatcher may take.
 */
bool hasFastReplay(const std::string &kind);

/**
 * The kernel-eligible kind of @p configText, or "" when the config
 * does not parse or its kind has no devirtualized replay kernel.
 *
 * This is the campaign engine's grouping key: jobs on the same trace
 * whose configs share a non-empty fastReplayKind() can be fused into
 * one banked replay pass (sim/replay.hh, replayKernelBankAny()).
 * Config strings that fail to parse return "" and take the per-job
 * path, which is where their error is reported.
 */
std::string fastReplayKind(const std::string &configText);

} // namespace bpsim

#endif // BPSIM_CORE_FACTORY_HH
