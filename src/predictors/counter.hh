/**
 * @file
 * Saturating up/down counters and tables of them.
 *
 * The 2-bit saturating counter (Smith 1981) is the basic prediction
 * element of every scheme in the paper. Counter tables store packed
 * uint8 values with a shared width, since predictors allocate
 * thousands of identical counters.
 */

#ifndef BPSIM_PREDICTORS_COUNTER_HH
#define BPSIM_PREDICTORS_COUNTER_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

/**
 * Validates a table index width *before* the table is allocated.
 *
 * Predictor constructors size their tables in member-initializer
 * lists; validating there (rather than in the constructor body)
 * keeps a bad configuration from attempting a 2^40-entry allocation
 * before the check runs.
 *
 * @param bits index width to validate
 * @param what predictor name for the error message
 * @return 2^bits
 */
inline std::size_t
checkedTableEntries(unsigned bits, const char *what)
{
    if (bits > 28)
        BPSIM_FATAL(what << " table of 2^" << bits
                    << " entries is unreasonably large");
    return std::size_t{1} << bits;
}

/** A single n-bit saturating up/down counter. */
class SaturatingCounter
{
  public:
    /**
     * @param bits counter width, 1..8
     * @param initial starting value, clamped to the representable
     *                range
     */
    explicit SaturatingCounter(unsigned bits = 2, unsigned initial = 0)
        : widthBits(bits),
          maxValue(static_cast<std::uint8_t>(maskBits(bits)))
    {
        if (bits < 1 || bits > 8)
            BPSIM_PANIC("counter width " << bits << " out of range 1..8");
        current = initial > maxValue
            ? maxValue : static_cast<std::uint8_t>(initial);
    }

    /** Moves one step toward taken (up) or not-taken (down). */
    void
    update(bool taken)
    {
        if (taken) {
            if (current < maxValue)
                ++current;
        } else {
            if (current > 0)
                --current;
        }
    }

    /** Sign-bit prediction: taken in the upper half of the range. */
    bool predictTaken() const { return current > maxValue / 2; }

    /** True at either end of the range. */
    bool isSaturated() const { return current == 0 || current == maxValue; }

    std::uint8_t value() const { return current; }
    unsigned bits() const { return widthBits; }
    std::uint8_t max() const { return maxValue; }

    /** Weakly-taken start value for an n-bit counter (2 for 2-bit). */
    static std::uint8_t
    weaklyTaken(unsigned bits)
    {
        return static_cast<std::uint8_t>(maskBits(bits) / 2 + 1);
    }

    /** Weakly-not-taken start value (1 for 2-bit). */
    static std::uint8_t
    weaklyNotTaken(unsigned bits)
    {
        return static_cast<std::uint8_t>(maskBits(bits) / 2);
    }

  private:
    unsigned widthBits;
    std::uint8_t maxValue;
    std::uint8_t current = 0;
};

/** A fixed-size array of same-width saturating counters. */
class CounterTable
{
  public:
    /**
     * @param entries table size; must be a power of two
     * @param bits per-counter width
     * @param initial start value of every counter
     */
    CounterTable(std::size_t entries, unsigned bits, std::uint8_t initial)
        : widthBits(bits),
          maxValue(static_cast<std::uint8_t>(maskBits(bits))),
          initialValue(initial > maxValue ? maxValue : initial),
          values(entries, initialValue)
    {
        if (!isPowerOfTwo(entries))
            BPSIM_PANIC("counter table size " << entries
                        << " is not a power of two");
        if (bits < 1 || bits > 8)
            BPSIM_PANIC("counter width " << bits << " out of range 1..8");
    }

    void
    update(std::size_t index, bool taken)
    {
        // Branchless saturate-and-step: the direction depends on the
        // simulated outcome, which is poorly predicted by the *host*
        // branch predictor in the replay kernels; computing both
        // candidates and selecting compiles to conditional moves.
        std::uint16_t &v = values[index];
        const std::uint16_t up =
            static_cast<std::uint16_t>(v + (v < maxValue ? 1 : 0));
        const std::uint16_t down =
            static_cast<std::uint16_t>(v - (v > 0 ? 1 : 0));
        v = taken ? up : down;
    }

    bool
    predictTaken(std::size_t index) const
    {
        return values[index] > maxValue / 2;
    }

    std::uint8_t
    value(std::size_t index) const
    {
        return static_cast<std::uint8_t>(values[index]);
    }

    void set(std::size_t index, std::uint8_t v)
    {
        values[index] = v > maxValue ? maxValue : v;
    }

    /** Restores every counter to its construction value. */
    void
    reset()
    {
        std::fill(values.begin(), values.end(), initialValue);
    }

    std::size_t size() const { return values.size(); }
    unsigned bits() const { return widthBits; }
    std::uint8_t max() const { return maxValue; }

    /**
     * Raw counter storage, an SoA view for the SIMD bank builders
     * (sim/simd/simd_bank.cc), which copy whole tables into a shared
     * gather arena and back. Writers must keep every element within
     * 0..max(); predictTaken()/update() assume it.
     */
    const std::uint16_t *data() const { return values.data(); }
    std::uint16_t *data() { return values.data(); }

    /** Storage footprint of the counters. */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(values.size()) * widthBits;
    }

  private:
    unsigned widthBits;
    std::uint8_t maxValue;
    std::uint8_t initialValue;
    /**
     * Counter values never exceed 8 bits (maxValue), but they are
     * stored as uint16 on purpose: uint8 is unsigned char, whose
     * stores may alias *any* object under the C++ aliasing rules, so
     * a uint8 table forces the optimizer to reload every cached
     * member (data pointers, widths, history registers) after each
     * counter write in the inlined replay kernels. uint16 keeps the
     * table narrow while restoring type-based alias analysis.
     */
    std::vector<std::uint16_t> values;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_COUNTER_HH
