/**
 * @file
 * The perceptron branch predictor (Jiménez & Lin, HPCA 2001).
 *
 * Included as the concrete realization of the paper's §5 future-work
 * direction "find a cost-effective way to reduce the weakly biased
 * substreams": a perceptron weighs each global-history bit
 * independently, so it can learn linearly separable correlations
 * with far longer histories than a PHT of 2-bit counters can afford,
 * and is naturally resistant to the aliasing the bi-mode predictor
 * attacks (weights from uncorrelated branches average out instead of
 * flipping a counter).
 *
 * Implementation follows the original: a pc-indexed table of signed
 * 8-bit weight vectors, prediction = sign(w0 + sum wi * xi) with
 * xi = +/-1 from history bit i, trained on mispredictions or when
 * |output| <= theta, theta = 1.93h + 14.
 */

#ifndef BPSIM_PREDICTORS_PERCEPTRON_HH
#define BPSIM_PREDICTORS_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Perceptron predictor configuration. */
struct PerceptronConfig
{
    /** log2 of the perceptron table size. */
    unsigned tableIndexBits = 8;
    /** Global history length == weights per perceptron (plus bias). */
    unsigned historyBits = 24;
    /** Weight width in bits (8 in the original). */
    unsigned weightBits = 8;
};

/** Table-of-perceptrons global-history predictor. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(const PerceptronConfig &config);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;

    /** Each perceptron is reported as one "direction counter" so the
     *  stream analyses can attribute lookups to table entries. */
    std::uint64_t directionCounters() const override;

    /** The perceptron serving @p pc. */
    std::size_t indexFor(std::uint64_t pc) const;

    /** Raw output y for @p pc under the current history (for tests
     *  and confidence studies; prediction is y >= 0). */
    std::int32_t outputFor(std::uint64_t pc) const;

  private:
    std::int32_t weightAt(std::size_t perceptron, unsigned i) const;

    PerceptronConfig cfg;
    HistoryRegister history;
    std::int32_t threshold;
    std::int32_t weightMax;
    std::int32_t weightMin;
    /** Row-major: perceptron p's weights at [p * (h+1) .. +h]; index
     *  0 is the bias weight. */
    std::vector<std::int16_t> weights;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_PERCEPTRON_HH
