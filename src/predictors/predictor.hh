/**
 * @file
 * The branch predictor interface.
 *
 * All predictors in this project are conditional-direction predictors
 * operated trace-driven: the harness calls predictDetailed(pc), then
 * update(pc, outcome) with the resolved direction (the paper's
 * methodology; no speculative-history repair is modelled because the
 * paper models none).
 *
 * Besides the prediction itself, predictors expose *which* 2-bit
 * counter in their second-level structure served the request. The
 * bias-class analysis of the paper's Section 4 (Figures 5-8,
 * Tables 3-4) is built entirely on this hook, keeping the analysis
 * code independent of any particular predictor's internals.
 */

#ifndef BPSIM_PREDICTORS_PREDICTOR_HH
#define BPSIM_PREDICTORS_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

namespace bpsim
{

/** Result of one prediction, with analysis provenance. */
struct PredictionDetail
{
    /** Predicted direction. */
    bool taken = false;
    /** True when a direction counter served this prediction and
     *  counterId below is meaningful. */
    bool usesCounter = false;
    /** Bank that served the prediction, for banked predictors. */
    std::uint32_t bank = 0;
    /** Global id of the serving direction counter, unique across
     *  banks, in [0, directionCounters()). */
    std::uint64_t counterId = 0;
};

/** Abstract conditional branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predicts the direction of the branch at @p pc.
     *
     * Must not mutate predictor state; speculation effects are out of
     * scope for this trace-driven study.
     */
    virtual PredictionDetail predictDetailed(std::uint64_t pc) const = 0;

    /** Convenience wrapper returning only the direction. */
    bool predict(std::uint64_t pc) const
    {
        return predictDetailed(pc).taken;
    }

    /** Trains the predictor with the resolved direction of @p pc. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /**
     * Informs the predictor of the decoded taken-target of @p pc.
     * Harnesses call this alongside update(); only predictors that
     * exploit target geometry (e.g. BTFN) override it.
     */
    virtual void observeTarget(std::uint64_t pc, std::uint64_t target)
    {
        (void)pc;
        (void)target;
    }

    /** Restores the power-on state (including history registers). */
    virtual void reset() = 0;

    /** Short human-readable name including the configuration. */
    virtual std::string name() const = 0;

    /**
     * Total state in bits: counters, history registers, tags, bias
     * bits — everything the hardware would hold.
     */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Cost under the paper's convention: bits spent in prediction
     * counters only (the figures' x-axis is "K bytes of two-bit
     * counters"). Defaults to storageBits().
     */
    virtual std::uint64_t counterBits() const { return storageBits(); }

    /**
     * Number of direction counters addressable by
     * PredictionDetail::counterId; 0 when the predictor exposes no
     * counters (static predictors).
     */
    virtual std::uint64_t directionCounters() const { return 0; }
};

using PredictorPtr = std::unique_ptr<BranchPredictor>;

} // namespace bpsim

#endif // BPSIM_PREDICTORS_PREDICTOR_HH
