/**
 * @file
 * The Yeh-Patt two-level adaptive predictor taxonomy.
 *
 * A two-level predictor keeps branch history in a first level
 * (a single global register, or a table of per-address registers)
 * and prediction counters in a second level. The second-level index
 * concatenates the history pattern with optional pc bits; pc bits in
 * the index partition the counters into multiple pattern history
 * tables (PHTs):
 *
 *   GAg(h)       global history, one PHT
 *   GAs(h, a)    global history, 2^a PHTs selected by pc bits
 *   PAg(h, l)    per-address history (2^l registers), one PHT
 *   PAs(h, l, a) per-address history, 2^a PHTs
 */

#ifndef BPSIM_PREDICTORS_TWOLEVEL_HH
#define BPSIM_PREDICTORS_TWOLEVEL_HH

#include <optional>

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** First-level history organization. */
enum class HistoryScope
{
    Global,
    PerAddress,
};

/** Configuration of a two-level predictor. */
struct TwoLevelConfig
{
    /** First-level organization. */
    HistoryScope scope = HistoryScope::Global;
    /** History register width (h). */
    unsigned historyBits = 8;
    /** pc bits concatenated above the history in the index (a);
     *  the second level holds 2^a PHTs of 2^h counters. */
    unsigned pcBits = 0;
    /** log2 of the per-address history table size (l); ignored for
     *  Global scope. */
    unsigned localEntriesLog2 = 0;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
};

/** Generic two-level adaptive predictor covering GAg/GAs/PAg/PAs. */
class TwoLevelPredictor : public FastPredictorBase<TwoLevelPredictor>
{
  public:
    explicit TwoLevelPredictor(const TwoLevelConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Second-level index for @p pc under the current history. */
    std::size_t
    indexFor(std::uint64_t pc) const
    {
        // History fills the low bits; pc bits select the PHT above it.
        const std::uint64_t history = historyFor(pc);
        const std::uint64_t pht = pcIndexBits(pc, cfg.pcBits);
        return static_cast<std::size_t>(
            (pht << cfg.historyBits) | history);
    }

    /** Devirtualized hot path: == predictDetailed().taken. The scope
     *  branch is perfectly predictable (fixed per instance), so one
     *  generic core serves all four taxonomy points. */
    bool
    predictFast(std::uint64_t pc) const
    {
        return counters.predictTaken(indexFor(pc));
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        counters.update(indexFor(pc), taken);
        pushHistory(pc, taken);
    }

    /** Fused hot path: predict + update sharing one second-level
     *  index; bit-identical to predictFast() then updateFast(). */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        const std::size_t index = indexFor(pc);
        const bool prediction = counters.predictTaken(index);
        counters.update(index, taken);
        pushHistory(pc, taken);
        return prediction;
    }

    const TwoLevelConfig &config() const { return cfg; }

    /** Mutable SoA views for the SIMD bank (sim/simd/simd_bank.cc),
     *  which copies counters and first-level history into vector
     *  lane state and back. localHistoryRef() is null for Global
     *  scope. */
    CounterTable &tableRef() { return counters; }
    HistoryRegister &globalHistoryRef() { return globalHistory; }
    LocalHistoryTable *
    localHistoryRef()
    {
        return localHistory ? &*localHistory : nullptr;
    }

  private:
    std::uint64_t
    historyFor(std::uint64_t pc) const
    {
        if (cfg.scope == HistoryScope::Global)
            return globalHistory.value();
        return localHistory->value(pc);
    }

    void
    pushHistory(std::uint64_t pc, bool taken)
    {
        if (cfg.scope == HistoryScope::Global)
            globalHistory.push(taken);
        else
            localHistory->push(pc, taken);
    }

    TwoLevelConfig cfg;
    HistoryRegister globalHistory;
    std::optional<LocalHistoryTable> localHistory;
    CounterTable counters;
};

/** Convenience constructors for the named taxonomy points. */
TwoLevelConfig makeGAg(unsigned historyBits);
TwoLevelConfig makeGAs(unsigned historyBits, unsigned pcBits);
TwoLevelConfig makePAg(unsigned historyBits, unsigned localEntriesLog2);
TwoLevelConfig makePAs(unsigned historyBits, unsigned localEntriesLog2,
                       unsigned pcBits);

} // namespace bpsim

#endif // BPSIM_PREDICTORS_TWOLEVEL_HH
