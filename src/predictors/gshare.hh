/**
 * @file
 * The gshare predictor (McFarling 1993), parameterized the way the
 * paper studies it.
 *
 * gshare forms its second-level index by xor-ing global history with
 * low-order pc bits. With an n-bit index and m <= n history bits the
 * top n-m index bits are pure address bits, so the table behaves as
 * 2^(n-m) separate PHTs of 2^m counters — exactly the "multiple
 * PHTs" configurations of the paper:
 *
 *   m == n  -> gshare.1PHT (the textbook single-PHT configuration)
 *   m <  n  -> multi-PHT configurations, among which the paper's
 *              exhaustive sweep finds gshare.best
 */

#ifndef BPSIM_PREDICTORS_GSHARE_HH
#define BPSIM_PREDICTORS_GSHARE_HH

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Global-history xor-indexed two-level predictor. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param indexBits n: log2 of the counter count
     * @param historyBits m: global history length, m <= n
     * @param counterWidth counter width in bits
     */
    GsharePredictor(unsigned indexBits, unsigned historyBits,
                    unsigned counterWidth = 2);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Second-level index for @p pc under the current history. */
    std::size_t indexFor(std::uint64_t pc) const;

    unsigned indexBitCount() const { return indexBits; }
    unsigned historyBitCount() const { return history.bits(); }

    /** Number of PHTs this configuration is equivalent to. */
    std::uint64_t
    phtCount() const
    {
        return std::uint64_t{1} << (indexBits - history.bits());
    }

  private:
    unsigned indexBits;
    HistoryRegister history;
    CounterTable counters;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSHARE_HH
