/**
 * @file
 * The gshare predictor (McFarling 1993), parameterized the way the
 * paper studies it.
 *
 * gshare forms its second-level index by xor-ing global history with
 * low-order pc bits. With an n-bit index and m <= n history bits the
 * top n-m index bits are pure address bits, so the table behaves as
 * 2^(n-m) separate PHTs of 2^m counters — exactly the "multiple
 * PHTs" configurations of the paper:
 *
 *   m == n  -> gshare.1PHT (the textbook single-PHT configuration)
 *   m <  n  -> multi-PHT configurations, among which the paper's
 *              exhaustive sweep finds gshare.best
 */

#ifndef BPSIM_PREDICTORS_GSHARE_HH
#define BPSIM_PREDICTORS_GSHARE_HH

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Global-history xor-indexed two-level predictor. */
class GsharePredictor : public FastPredictorBase<GsharePredictor>
{
  public:
    /**
     * @param indexBits n: log2 of the counter count
     * @param historyBits m: global history length, m <= n
     * @param counterWidth counter width in bits
     */
    GsharePredictor(unsigned indexBits, unsigned historyBits,
                    unsigned counterWidth = 2);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Second-level index for @p pc under the current history. */
    std::size_t
    indexFor(std::uint64_t pc) const
    {
        // History xors into the low bits; with m < n the top n-m bits
        // stay pure address, i.e. they select among 2^(n-m) PHTs.
        const std::uint64_t address = pcIndexBits(pc, indexBits);
        return static_cast<std::size_t>(address ^ history.value());
    }

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        return counters.predictTaken(indexFor(pc));
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        counters.update(indexFor(pc), taken);
        history.push(taken);
    }

    /** Fused hot path: predict + update sharing one index/lookup;
     *  bit-identical to predictFast() then updateFast(). */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        const std::size_t index = indexFor(pc);
        const bool prediction = counters.predictTaken(index);
        counters.update(index, taken);
        history.push(taken);
        return prediction;
    }

    unsigned indexBitCount() const { return indexBits; }
    unsigned historyBitCount() const { return history.bits(); }

    /** Mutable SoA views for the SIMD bank (sim/simd/simd_bank.cc),
     *  which copies counters and history into vector lane state and
     *  back. */
    CounterTable &tableRef() { return counters; }
    HistoryRegister &historyRef() { return history; }

    /** Number of PHTs this configuration is equivalent to. */
    std::uint64_t
    phtCount() const
    {
        return std::uint64_t{1} << (indexBits - history.bits());
    }

  private:
    unsigned indexBits;
    HistoryRegister history;
    CounterTable counters;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSHARE_HH
