/**
 * @file
 * A return address stack (RAS).
 *
 * Returns are indirect branches whose target is wherever the matching
 * call came from; a BTB mispredicts them whenever a procedure is
 * called from more than one site. The RAS — a small hardware stack
 * pushed by calls and popped by returns — fixes that, and every
 * machine the paper discusses carries one. Included to complete the
 * front-end substrate around the direction predictors.
 */

#ifndef BPSIM_PREDICTORS_RAS_HH
#define BPSIM_PREDICTORS_RAS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bpsim
{

/** RAS accuracy statistics. */
struct RasStats
{
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t correctReturns = 0;
    /** Pops that found the stack empty. */
    std::uint64_t underflows = 0;
    /** Pushes that wrapped over the oldest entry. */
    std::uint64_t overflows = 0;

    double returnAccuracy() const;
};

/** Circular-buffer return address stack. */
class ReturnAddressStack
{
  public:
    /** @param depth stack entries (>= 1); 8-32 is hardware-typical */
    explicit ReturnAddressStack(unsigned depth);

    /** Records a call: pushes the return address (call pc + 4). */
    void pushCall(std::uint64_t callPc);

    /**
     * Predicts the target of a return and pops the stack; records
     * accuracy against the actual @p actualTarget.
     *
     * @return the predicted return address (0 when empty)
     */
    std::uint64_t popReturn(std::uint64_t actualTarget);

    /** Entries currently live. */
    std::size_t depthInUse() const { return liveEntries; }

    void reset();

    const RasStats &stats() const { return statistics; }

    std::string name() const;

    /** Storage: one 32-bit address per entry plus the pointer. */
    std::uint64_t storageBits() const;

  private:
    std::vector<std::uint64_t> stack;
    std::size_t top = 0;
    std::size_t liveEntries = 0;
    RasStats statistics;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_RAS_HH
