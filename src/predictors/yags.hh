/**
 * @file
 * The YAGS predictor (Eden & Mudge, MICRO-31 1998) — the direct
 * successor of the bi-mode predictor from the same group, included
 * as the paper's "future work" direction made concrete.
 *
 * YAGS keeps bi-mode's pc-indexed choice predictor but replaces the
 * two full direction banks with two small *tagged caches* (a taken
 * cache and a not-taken cache) that store only the exceptions — the
 * (history, pc) situations where a branch deviates from its bias.
 * A cache hit overrides the choice prediction; a miss falls back to
 * the choice predictor's direction.
 */

#ifndef BPSIM_PREDICTORS_YAGS_HH
#define BPSIM_PREDICTORS_YAGS_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** YAGS configuration. */
struct YagsConfig
{
    /** log2 of the choice (bimodal) table size. */
    unsigned choiceIndexBits = 12;
    /** log2 of each direction cache's entry count. */
    unsigned cacheIndexBits = 10;
    /** Partial tag width stored per cache entry. */
    unsigned tagBits = 6;
    /** Global history length. */
    unsigned historyBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
};

/** Tagged-exception-cache successor to bi-mode. */
class YagsPredictor : public BranchPredictor
{
  public:
    static constexpr std::uint32_t kNotTakenCache = 0;
    static constexpr std::uint32_t kTakenCache = 1;
    /** Bank id reported when the choice table served the prediction. */
    static constexpr std::uint32_t kChoiceBank = 2;

    explicit YagsPredictor(const YagsConfig &config);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

  private:
    struct CacheEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t counter = 0;
    };

    struct Lookup
    {
        std::size_t choiceIndex;
        bool choiceTaken;
        std::uint32_t cache;   // cache consulted (opposite of choice)
        std::size_t cacheIndex;
        std::uint16_t tag;
        bool hit;
        bool prediction;
    };

    Lookup lookupFor(std::uint64_t pc) const;
    std::size_t cacheIndexFor(std::uint64_t pc) const;
    std::uint16_t tagFor(std::uint64_t pc) const;

    YagsConfig cfg;
    HistoryRegister history;
    CounterTable choice;
    std::vector<CacheEntry> caches[2];
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_YAGS_HH
