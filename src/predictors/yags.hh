/**
 * @file
 * The YAGS predictor (Eden & Mudge, MICRO-31 1998) — the direct
 * successor of the bi-mode predictor from the same group, included
 * as the paper's "future work" direction made concrete.
 *
 * YAGS keeps bi-mode's pc-indexed choice predictor but replaces the
 * two full direction banks with two small *tagged caches* (a taken
 * cache and a not-taken cache) that store only the exceptions — the
 * (history, pc) situations where a branch deviates from its bias.
 * A cache hit overrides the choice prediction; a miss falls back to
 * the choice predictor's direction.
 */

#ifndef BPSIM_PREDICTORS_YAGS_HH
#define BPSIM_PREDICTORS_YAGS_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "util/bits.hh"

namespace bpsim
{

/** YAGS configuration. */
struct YagsConfig
{
    /** log2 of the choice (bimodal) table size. */
    unsigned choiceIndexBits = 12;
    /** log2 of each direction cache's entry count. */
    unsigned cacheIndexBits = 10;
    /** Partial tag width stored per cache entry. */
    unsigned tagBits = 6;
    /** Global history length. */
    unsigned historyBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
};

/** Tagged-exception-cache successor to bi-mode. */
class YagsPredictor : public FastPredictorBase<YagsPredictor>
{
  public:
    static constexpr std::uint32_t kNotTakenCache = 0;
    static constexpr std::uint32_t kTakenCache = 1;
    /** Bank id reported when the choice table served the prediction. */
    static constexpr std::uint32_t kChoiceBank = 2;

    explicit YagsPredictor(const YagsConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool predictFast(std::uint64_t pc) const
    {
        return lookupFor(pc).prediction;
    }

    /** Fused hot path: predict + update sharing one lookupFor();
     *  bit-identical to predictFast() then updateFast(). */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        const Lookup look = lookupFor(pc);
        const std::uint8_t max_counter =
            static_cast<std::uint8_t>(maskBits(cfg.counterWidth));

        if (look.hit) {
            // Branchless saturate-and-step, as in CounterTable.
            CacheEntry &entry = caches[look.cache][look.cacheIndex];
            const std::uint16_t up = static_cast<std::uint16_t>(
                entry.counter + (entry.counter < max_counter ? 1 : 0));
            const std::uint16_t down = static_cast<std::uint16_t>(
                entry.counter - (entry.counter > 0 ? 1 : 0));
            entry.counter = taken ? up : down;
        } else if (look.choiceTaken != taken) {
            // The branch deviated from its bias and no exception
            // entry existed: allocate one, initialized weakly toward
            // the outcome.
            CacheEntry &entry = caches[look.cache][look.cacheIndex];
            entry.valid = true;
            entry.tag = look.tag;
            entry.counter =
                taken ? SaturatingCounter::weaklyTaken(cfg.counterWidth)
                      : SaturatingCounter::weaklyNotTaken(
                            cfg.counterWidth);
        }

        // Choice table follows the bi-mode policy: train with the
        // outcome unless the choice was wrong but the cache corrected
        // it.
        const bool keep_choice =
            look.choiceTaken != taken && look.prediction == taken;
        if (!keep_choice)
            choice.update(look.choiceIndex, taken);

        history.push(taken);
        return look.prediction;
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        (void)stepFast(pc, taken);
    }

    struct CacheEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        /** Counter values fit 8 bits; uint16 storage keeps the entry
         *  stores out of the unsigned-char universal-aliasing class
         *  (see CounterTable::values). */
        std::uint16_t counter = 0;
    };

    const YagsConfig &config() const { return cfg; }

    /** @name Mutable SoA views for the SIMD bank
     *  (sim/simd/simd_bank.cc), which packs each cache entry into
     *  one arena word (counter | tag << 8 | valid << 24) and back. */
    /**@{*/
    CounterTable &choiceTableRef() { return choice; }
    std::vector<CacheEntry> &cacheRef(std::uint32_t cache)
    {
        return caches[cache];
    }
    HistoryRegister &historyRef() { return history; }
    /**@}*/

  private:
    struct Lookup
    {
        std::size_t choiceIndex;
        bool choiceTaken;
        std::uint32_t cache;   // cache consulted (opposite of choice)
        std::size_t cacheIndex;
        std::uint16_t tag;
        bool hit;
        bool prediction;
    };

    Lookup
    lookupFor(std::uint64_t pc) const
    {
        // The word address feeds all three derivations below (choice
        // index, cache index, tag), so it is extracted a single time
        // rather than re-shifted per field. This is the hot-kernel
        // entry: every stepFast() runs one lookupFor(), and the
        // scalar bank loop pays it per lane per branch.
        const std::uint64_t word = pc >> 2;
        Lookup look;
        look.choiceIndex = static_cast<std::size_t>(
            word & maskBits(cfg.choiceIndexBits));
        look.choiceTaken = choice.predictTaken(look.choiceIndex);
        // Exceptions to a taken bias live in the not-taken cache and
        // vice versa: consult the cache opposite to the choice.
        look.cache = look.choiceTaken ? kNotTakenCache : kTakenCache;
        look.cacheIndex = static_cast<std::size_t>(
            (word & maskBits(cfg.cacheIndexBits)) ^ history.value());
        // Tag with the pc bits just above the cache index so aliasing
        // pairs that share an index usually differ in tag.
        look.tag = static_cast<std::uint16_t>(
            (word >> cfg.cacheIndexBits) & maskBits(cfg.tagBits));
        const CacheEntry &entry = caches[look.cache][look.cacheIndex];
        look.hit = entry.valid && entry.tag == look.tag;
        if (look.hit) {
            const std::uint8_t mid = static_cast<std::uint8_t>(
                maskBits(cfg.counterWidth) / 2);
            look.prediction = entry.counter > mid;
        } else {
            look.prediction = look.choiceTaken;
        }
        return look;
    }

    YagsConfig cfg;
    HistoryRegister history;
    CounterTable choice;
    std::vector<CacheEntry> caches[2];
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_YAGS_HH
