/**
 * @file
 * The bimodal predictor: a pc-indexed table of saturating counters
 * (Smith 1981). It is both a baseline scheme and the choice
 * predictor inside the bi-mode predictor.
 */

#ifndef BPSIM_PREDICTORS_BIMODAL_HH
#define BPSIM_PREDICTORS_BIMODAL_HH

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** pc-indexed saturating-counter predictor. */
class BimodalPredictor : public FastPredictorBase<BimodalPredictor>
{
  public:
    /**
     * @param indexBits log2 of the counter count
     * @param counterWidth counter width in bits (2 in the paper)
     */
    explicit BimodalPredictor(unsigned indexBits, unsigned counterWidth = 2);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t directionCounters() const override;

    /** Index of the counter serving @p pc. */
    std::size_t
    indexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(pcIndexBits(pc, indexBits));
    }

    /**
     * Devirtualized hot path for the replay kernel: the direction of
     * predictDetailed() without the analysis provenance. Must stay
     * equal to predictDetailed().taken (the bit-identity contract of
     * sim/replay_kernel.hh).
     */
    bool
    predictFast(std::uint64_t pc) const
    {
        return counters.predictTaken(indexFor(pc));
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        counters.update(indexFor(pc), taken);
    }

    /** Fused hot path: predict + update sharing one index/lookup;
     *  bit-identical to predictFast() then updateFast(). */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        const std::size_t index = indexFor(pc);
        const bool prediction = counters.predictTaken(index);
        counters.update(index, taken);
        return prediction;
    }

    /** Read-only access for tests and composite predictors. */
    const CounterTable &table() const { return counters; }

    unsigned indexBitCount() const { return indexBits; }

    /** Mutable SoA view for the SIMD bank (sim/simd/simd_bank.cc),
     *  which copies the table into a gather arena and back. */
    CounterTable &tableRef() { return counters; }

  private:
    unsigned indexBits;
    CounterTable counters;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODAL_HH
