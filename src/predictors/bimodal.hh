/**
 * @file
 * The bimodal predictor: a pc-indexed table of saturating counters
 * (Smith 1981). It is both a baseline scheme and the choice
 * predictor inside the bi-mode predictor.
 */

#ifndef BPSIM_PREDICTORS_BIMODAL_HH
#define BPSIM_PREDICTORS_BIMODAL_HH

#include "predictors/counter.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** pc-indexed saturating-counter predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /**
     * @param indexBits log2 of the counter count
     * @param counterWidth counter width in bits (2 in the paper)
     */
    explicit BimodalPredictor(unsigned indexBits, unsigned counterWidth = 2);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t directionCounters() const override;

    /** Index of the counter serving @p pc. */
    std::size_t indexFor(std::uint64_t pc) const;

    /** Read-only access for tests and composite predictors. */
    const CounterTable &table() const { return counters; }

  private:
    unsigned indexBits;
    CounterTable counters;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODAL_HH
