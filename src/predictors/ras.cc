#include "predictors/ras.hh"

#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

double
RasStats::returnAccuracy() const
{
    return returns == 0 ? 0.0
                        : static_cast<double>(correctReturns) /
                              static_cast<double>(returns);
}

ReturnAddressStack::ReturnAddressStack(unsigned depth)
{
    if (depth == 0 || depth > 1024)
        BPSIM_FATAL("RAS depth must be 1..1024");
    stack.assign(depth, 0);
}

void
ReturnAddressStack::pushCall(std::uint64_t callPc)
{
    ++statistics.calls;
    top = (top + 1) % stack.size();
    stack[top] = callPc + 4;
    if (liveEntries == stack.size())
        ++statistics.overflows;
    else
        ++liveEntries;
}

std::uint64_t
ReturnAddressStack::popReturn(std::uint64_t actualTarget)
{
    ++statistics.returns;
    if (liveEntries == 0) {
        ++statistics.underflows;
        return 0;
    }
    const std::uint64_t predicted = stack[top];
    top = (top + stack.size() - 1) % stack.size();
    --liveEntries;
    if (predicted == actualTarget)
        ++statistics.correctReturns;
    return predicted;
}

void
ReturnAddressStack::reset()
{
    std::fill(stack.begin(), stack.end(), 0);
    top = 0;
    liveEntries = 0;
    statistics = RasStats{};
}

std::string
ReturnAddressStack::name() const
{
    std::ostringstream os;
    os << "ras(depth=" << stack.size() << ")";
    return os.str();
}

std::uint64_t
ReturnAddressStack::storageBits() const
{
    return static_cast<std::uint64_t>(stack.size()) * 32 +
           log2Ceil(stack.size());
}

} // namespace bpsim
