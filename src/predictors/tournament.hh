/**
 * @file
 * The McFarling combining (tournament) predictor ("Combining Branch
 * Predictors", WRL TN-36, 1993): two component predictors plus a
 * pc-indexed meta table of 2-bit counters that learns, per branch,
 * which component to trust. The Alpha 21264 shipped this structure.
 *
 * Included as an extension baseline: the bi-mode choice predictor is
 * a close cousin of the meta table, but selects between two *banks
 * of counters* rather than two *predictors*.
 */

#ifndef BPSIM_PREDICTORS_TOURNAMENT_HH
#define BPSIM_PREDICTORS_TOURNAMENT_HH

#include "predictors/bimodal.hh"
#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/gshare.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Meta-selected pair of component predictors. */
class TournamentPredictor : public FastPredictorBase<TournamentPredictor>
{
  public:
    /**
     * @param component0 first component (meta counter low side)
     * @param component1 second component (meta counter high side)
     * @param metaIndexBits log2 of the meta table size
     */
    TournamentPredictor(PredictorPtr component0, PredictorPtr component1,
                        unsigned metaIndexBits);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /**
     * Standard configuration: bimodal + gshare components sized so
     * the total counter budget is 2^(n+1) counters plus the meta
     * table of 2^n.
     */
    static PredictorPtr makeStandard(unsigned indexBits);

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        const unsigned selected =
            meta.predictTaken(metaIndexFor(pc)) ? 1 : 0;
        if (bimodalComponent && gshareComponent) {
            return selected == 1 ? gshareComponent->predictFast(pc)
                                 : bimodalComponent->predictFast(pc);
        }
        return components[selected]->predict(pc);
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        bool p0, p1;
        if (bimodalComponent && gshareComponent) {
            p0 = bimodalComponent->predictFast(pc);
            p1 = gshareComponent->predictFast(pc);
        } else {
            p0 = components[0]->predict(pc);
            p1 = components[1]->predict(pc);
        }
        // Train the meta table only when the components disagree,
        // toward whichever was right.
        if (p0 != p1)
            meta.update(metaIndexFor(pc), p1 == taken);
        if (bimodalComponent && gshareComponent) {
            bimodalComponent->updateFast(pc, taken);
            gshareComponent->updateFast(pc, taken);
        } else {
            components[0]->update(pc, taken);
            components[1]->update(pc, taken);
        }
    }

    /**
     * Fused hot path: predict + update sharing the meta lookup and
     * the component predictions; bit-identical to predictFast() then
     * updateFast(). The components are state-independent of each
     * other and of the meta table, so fusing their predict/update
     * pairs cannot reorder any visible state transition.
     */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        if (bimodalComponent && gshareComponent) {
            // One shared word-address extraction feeds the meta index
            // and both component indices: each is a mask (plus the
            // gshare history xor) away, instead of every component
            // call re-deriving pc >> 2 for itself.
            const std::uint64_t word = pc >> 2;
            const std::size_t meta_index = static_cast<std::size_t>(
                word & maskBits(metaIndexBits));
            const bool use_second = meta.predictTaken(meta_index);
            CounterTable &bimodal_table = bimodalComponent->tableRef();
            const std::size_t bimodal_index =
                static_cast<std::size_t>(
                    word & maskBits(bimodalComponent->indexBitCount()));
            const bool p0 = bimodal_table.predictTaken(bimodal_index);
            bimodal_table.update(bimodal_index, taken);
            CounterTable &gshare_table = gshareComponent->tableRef();
            HistoryRegister &gshare_history =
                gshareComponent->historyRef();
            const std::size_t gshare_index = static_cast<std::size_t>(
                (word & maskBits(gshareComponent->indexBitCount())) ^
                gshare_history.value());
            const bool p1 = gshare_table.predictTaken(gshare_index);
            gshare_table.update(gshare_index, taken);
            gshare_history.push(taken);
            if (p0 != p1)
                meta.update(meta_index, p1 == taken);
            return use_second ? p1 : p0;
        }
        const bool prediction = predictFast(pc);
        updateFast(pc, taken);
        return prediction;
    }

    /** @name Mutable SoA views for the SIMD bank
     *  (sim/simd/simd_bank.cc), which copies tables and history into
     *  vector lane state and back. */
    /**@{*/
    CounterTable &metaTableRef() { return meta; }
    unsigned metaIndexBitCount() const { return metaIndexBits; }
    /** Typed components of the standard bimodal+gshare pairing; null
     *  for custom pairings (which then run the scalar bank). */
    BimodalPredictor *bimodalComponentPtr() { return bimodalComponent; }
    GsharePredictor *gshareComponentPtr() { return gshareComponent; }
    /**@}*/

  private:
    std::size_t
    metaIndexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(pcIndexBits(pc, metaIndexBits));
    }

    PredictorPtr components[2];
    /**
     * Typed views of the components for the devirtualized path; null
     * when a component is not the standard bimodal/gshare pair, in
     * which case the fast methods fall back to virtual dispatch.
     */
    BimodalPredictor *bimodalComponent = nullptr;
    GsharePredictor *gshareComponent = nullptr;
    unsigned metaIndexBits;
    CounterTable meta;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_TOURNAMENT_HH
