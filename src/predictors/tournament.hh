/**
 * @file
 * The McFarling combining (tournament) predictor ("Combining Branch
 * Predictors", WRL TN-36, 1993): two component predictors plus a
 * pc-indexed meta table of 2-bit counters that learns, per branch,
 * which component to trust. The Alpha 21264 shipped this structure.
 *
 * Included as an extension baseline: the bi-mode choice predictor is
 * a close cousin of the meta table, but selects between two *banks
 * of counters* rather than two *predictors*.
 */

#ifndef BPSIM_PREDICTORS_TOURNAMENT_HH
#define BPSIM_PREDICTORS_TOURNAMENT_HH

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Meta-selected pair of component predictors. */
class TournamentPredictor : public BranchPredictor
{
  public:
    /**
     * @param component0 first component (meta counter low side)
     * @param component1 second component (meta counter high side)
     * @param metaIndexBits log2 of the meta table size
     */
    TournamentPredictor(PredictorPtr component0, PredictorPtr component1,
                        unsigned metaIndexBits);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /**
     * Standard configuration: bimodal + gshare components sized so
     * the total counter budget is 2^(n+1) counters plus the meta
     * table of 2^n.
     */
    static PredictorPtr makeStandard(unsigned indexBits);

  private:
    std::size_t metaIndexFor(std::uint64_t pc) const;

    PredictorPtr components[2];
    unsigned metaIndexBits;
    CounterTable meta;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_TOURNAMENT_HH
