#include "predictors/perceptron.hh"

#include <cmath>
#include <sstream>

#include "predictors/counter.hh"

namespace bpsim
{

PerceptronPredictor::PerceptronPredictor(const PerceptronConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      threshold(static_cast<std::int32_t>(
          std::floor(1.93 * cfg.historyBits + 14.0))),
      weightMax((1 << (cfg.weightBits - 1)) - 1),
      weightMin(-(1 << (cfg.weightBits - 1)))
{
    if (cfg.historyBits == 0 || cfg.historyBits > 63)
        BPSIM_FATAL("perceptron history must be 1..63 bits");
    if (cfg.weightBits < 2 || cfg.weightBits > 16)
        BPSIM_FATAL("perceptron weights must be 2..16 bits");
    const std::size_t entries =
        checkedTableEntries(cfg.tableIndexBits, "perceptron");
    weights.assign(entries * (cfg.historyBits + 1), 0);
}

std::size_t
PerceptronPredictor::indexFor(std::uint64_t pc) const
{
    return static_cast<std::size_t>(pcIndexBits(pc, cfg.tableIndexBits));
}

std::int32_t
PerceptronPredictor::weightAt(std::size_t perceptron, unsigned i) const
{
    return weights[perceptron * (cfg.historyBits + 1) + i];
}

std::int32_t
PerceptronPredictor::outputFor(std::uint64_t pc) const
{
    const std::size_t p = indexFor(pc);
    // Bias weight plus the +/-1 dot product with the history bits.
    std::int32_t y = weightAt(p, 0);
    const std::uint64_t h = history.value();
    for (unsigned i = 0; i < cfg.historyBits; ++i) {
        const bool bit = (h >> i) & 1;
        y += bit ? weightAt(p, i + 1) : -weightAt(p, i + 1);
    }
    return y;
}

PredictionDetail
PerceptronPredictor::predictDetailed(std::uint64_t pc) const
{
    PredictionDetail detail;
    detail.taken = outputFor(pc) >= 0;
    detail.usesCounter = true;
    detail.bank = 0;
    detail.counterId = indexFor(pc);
    return detail;
}

void
PerceptronPredictor::update(std::uint64_t pc, bool taken)
{
    const std::int32_t y = outputFor(pc);
    const bool prediction = y >= 0;
    // Train on a misprediction or while the output magnitude has not
    // cleared the confidence threshold.
    if (prediction != taken || std::abs(y) <= threshold) {
        const std::size_t base = indexFor(pc) * (cfg.historyBits + 1);
        auto adjust = [&](std::size_t slot, bool agrees) {
            std::int16_t &w = weights[slot];
            if (agrees) {
                if (w < weightMax)
                    ++w;
            } else {
                if (w > weightMin)
                    --w;
            }
        };
        adjust(base + 0, taken);
        const std::uint64_t h = history.value();
        for (unsigned i = 0; i < cfg.historyBits; ++i) {
            const bool bit = (h >> i) & 1;
            adjust(base + i + 1, bit == taken);
        }
    }
    history.push(taken);
}

void
PerceptronPredictor::reset()
{
    history.clear();
    std::fill(weights.begin(), weights.end(), 0);
}

std::string
PerceptronPredictor::name() const
{
    std::ostringstream os;
    os << "perceptron(n=" << cfg.tableIndexBits
       << ",h=" << cfg.historyBits << ",w=" << cfg.weightBits << ")";
    return os.str();
}

std::uint64_t
PerceptronPredictor::storageBits() const
{
    return static_cast<std::uint64_t>(weights.size()) * cfg.weightBits +
           history.storageBits();
}

std::uint64_t
PerceptronPredictor::counterBits() const
{
    // All prediction state is weights; the paper-style x-axis cost is
    // the full weight storage.
    return static_cast<std::uint64_t>(weights.size()) * cfg.weightBits;
}

std::uint64_t
PerceptronPredictor::directionCounters() const
{
    return std::uint64_t{1} << cfg.tableIndexBits;
}

} // namespace bpsim
