/**
 * @file
 * Stateless baseline predictors: always-taken, always-not-taken, and
 * backward-taken/forward-not-taken (BTFN). These anchor the accuracy
 * comparisons and exercise the no-counter path of the analysis code.
 */

#ifndef BPSIM_PREDICTORS_STATIC_PREDICTORS_HH
#define BPSIM_PREDICTORS_STATIC_PREDICTORS_HH

#include <vector>

#include "predictors/predictor.hh"

namespace bpsim
{

/** Predicts every branch taken. */
class AlwaysTakenPredictor : public BranchPredictor
{
  public:
    PredictionDetail
    predictDetailed(std::uint64_t) const override
    {
        return PredictionDetail{true, false, 0, 0};
    }

    void update(std::uint64_t, bool) override {}
    void reset() override {}
    std::string name() const override { return "always-taken"; }
    std::uint64_t storageBits() const override { return 0; }
};

/** Predicts every branch not taken. */
class AlwaysNotTakenPredictor : public BranchPredictor
{
  public:
    PredictionDetail
    predictDetailed(std::uint64_t) const override
    {
        return PredictionDetail{false, false, 0, 0};
    }

    void update(std::uint64_t, bool) override {}
    void reset() override {}
    std::string name() const override { return "always-not-taken"; }
    std::uint64_t storageBits() const override { return 0; }
};

/**
 * Backward-taken / forward-not-taken.
 *
 * A trace-driven BTFN needs the branch target to classify direction;
 * since the BranchPredictor interface is pc-only (matching the
 * hardware front end before decode), the target sense is learned
 * from the first update: a sticky per-pc "backward" bit would need a
 * table, so instead we use the static heuristic on the pc/target
 * relation recorded at update time via a small direction cache.
 */
class BtfnPredictor : public BranchPredictor
{
  public:
    /** @param entriesLog2 log2 size of the direction-sense cache */
    explicit BtfnPredictor(unsigned entriesLog2);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;

    /** Records the taken-target of @p pc, fixing the
     *  backward/forward sense of the branch. */
    void observeTarget(std::uint64_t pc, std::uint64_t target) override;

    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;

  private:
    unsigned indexBits;
    /** 0 = unknown, 1 = forward, 2 = backward. */
    std::vector<std::uint8_t> sense;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_STATIC_PREDICTORS_HH
