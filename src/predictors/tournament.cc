#include "predictors/tournament.hh"

#include <sstream>

namespace bpsim
{

TournamentPredictor::TournamentPredictor(PredictorPtr component0,
                                         PredictorPtr component1,
                                         unsigned metaIndexBits)
    : components{std::move(component0), std::move(component1)},
      metaIndexBits(metaIndexBits),
      meta(std::size_t{1} << metaIndexBits, 2,
           SaturatingCounter::weaklyTaken(2))
{
    if (!components[0] || !components[1])
        BPSIM_PANIC("tournament components must be non-null");
    // Capture typed component views so the hot path can skip virtual
    // dispatch when this is the standard bimodal+gshare pairing.
    bimodalComponent = dynamic_cast<BimodalPredictor *>(
        components[0].get());
    gshareComponent = dynamic_cast<GsharePredictor *>(
        components[1].get());
}

PredictionDetail
TournamentPredictor::detailFast(std::uint64_t pc) const
{
    // Meta counter "taken" side selects component 1.
    const unsigned selected = meta.predictTaken(metaIndexFor(pc)) ? 1 : 0;
    PredictionDetail detail = components[selected]->predictDetailed(pc);
    // Re-map the component's counter id into the combined space:
    // component 0 first, component 1 after it.
    if (detail.usesCounter && selected == 1)
        detail.counterId += components[0]->directionCounters();
    detail.bank = selected;
    return detail;
}

void
TournamentPredictor::resetFast()
{
    meta.reset();
    components[0]->reset();
    components[1]->reset();
}

std::string
TournamentPredictor::name() const
{
    std::ostringstream os;
    os << "tournament(" << components[0]->name() << "+"
       << components[1]->name() << ",m=" << metaIndexBits << ")";
    return os.str();
}

std::uint64_t
TournamentPredictor::storageBits() const
{
    return meta.storageBits() + components[0]->storageBits() +
           components[1]->storageBits();
}

std::uint64_t
TournamentPredictor::counterBits() const
{
    return meta.storageBits() + components[0]->counterBits() +
           components[1]->counterBits();
}

std::uint64_t
TournamentPredictor::directionCounters() const
{
    return components[0]->directionCounters() +
           components[1]->directionCounters();
}

PredictorPtr
TournamentPredictor::makeStandard(unsigned indexBits)
{
    auto bimodal = std::make_unique<BimodalPredictor>(indexBits);
    auto gshare = std::make_unique<GsharePredictor>(indexBits, indexBits);
    return std::make_unique<TournamentPredictor>(
        std::move(bimodal), std::move(gshare), indexBits);
}

} // namespace bpsim
