#include "predictors/agree.hh"

#include <algorithm>
#include <sstream>

namespace bpsim
{

AgreePredictor::AgreePredictor(const AgreeConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      counters(checkedTableEntries(cfg.indexBits, "agree"),
               cfg.counterWidth,
               SaturatingCounter::weaklyTaken(cfg.counterWidth)),
      biasBit(checkedTableEntries(cfg.biasIndexBits, "agree bias"), 0),
      biasValid(std::size_t{1} << cfg.biasIndexBits, 0)
{
    if (cfg.historyBits > cfg.indexBits)
        BPSIM_FATAL("agree history cannot exceed the index width");
}

PredictionDetail
AgreePredictor::detailFast(std::uint64_t pc) const
{
    const std::size_t bias_index = biasIndexFor(pc);
    const std::size_t index = counterIndexFor(pc);
    // An unseen branch has no bias yet; treat the bias as taken
    // (matching the counters' weakly-taken start).
    const bool bias = biasValid[bias_index] ? biasBit[bias_index] != 0
                                            : true;
    const bool agree = counters.predictTaken(index);
    PredictionDetail detail;
    detail.taken = agree == bias;
    detail.usesCounter = true;
    detail.bank = 0;
    detail.counterId = index;
    return detail;
}

void
AgreePredictor::resetFast()
{
    history.clear();
    counters.reset();
    std::fill(biasBit.begin(), biasBit.end(), 0);
    std::fill(biasValid.begin(), biasValid.end(), 0);
}

std::string
AgreePredictor::name() const
{
    std::ostringstream os;
    os << "agree(n=" << cfg.indexBits << ",h=" << cfg.historyBits
       << ",b=" << cfg.biasIndexBits << ")";
    return os.str();
}

std::uint64_t
AgreePredictor::storageBits() const
{
    return counters.storageBits() + history.storageBits() +
           biasBit.size() + biasValid.size();
}

std::uint64_t
AgreePredictor::counterBits() const
{
    return counters.storageBits();
}

std::uint64_t
AgreePredictor::directionCounters() const
{
    return counters.size();
}

} // namespace bpsim
