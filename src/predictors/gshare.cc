#include "predictors/gshare.hh"

#include <sstream>

namespace bpsim
{

GsharePredictor::GsharePredictor(unsigned indexBits, unsigned historyBits,
                                 unsigned counterWidth)
    : indexBits(indexBits),
      history(historyBits),
      counters(checkedTableEntries(indexBits, "gshare"), counterWidth,
               SaturatingCounter::weaklyTaken(counterWidth))
{
    if (historyBits > indexBits)
        BPSIM_FATAL("gshare history (" << historyBits
                    << " bits) cannot exceed the index width ("
                    << indexBits << " bits)");
}

PredictionDetail
GsharePredictor::detailFast(std::uint64_t pc) const
{
    const std::size_t index = indexFor(pc);
    return PredictionDetail{counters.predictTaken(index), true, 0, index};
}

void
GsharePredictor::resetFast()
{
    counters.reset();
    history.clear();
}

std::string
GsharePredictor::name() const
{
    std::ostringstream os;
    os << "gshare(n=" << indexBits << ",h=" << history.bits() << ")";
    return os.str();
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return counters.storageBits() + history.storageBits();
}

std::uint64_t
GsharePredictor::counterBits() const
{
    return counters.storageBits();
}

std::uint64_t
GsharePredictor::directionCounters() const
{
    return counters.size();
}

} // namespace bpsim
