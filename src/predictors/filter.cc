#include "predictors/filter.hh"

#include <algorithm>
#include <sstream>

#include "util/bits.hh"

namespace bpsim
{

FilterPredictor::FilterPredictor(const FilterConfig &config)
    : cfg(config),
      runSaturation(
          static_cast<std::uint16_t>(maskBits(cfg.filterCounterBits))),
      history(cfg.historyBits),
      pht(checkedTableEntries(cfg.indexBits, "filter PHT"),
          cfg.counterWidth,
          SaturatingCounter::weaklyTaken(cfg.counterWidth))
{
    if (cfg.historyBits > cfg.indexBits)
        BPSIM_FATAL("filter history cannot exceed the PHT index width");
    if (cfg.filterCounterBits < 1 || cfg.filterCounterBits > 8)
        BPSIM_FATAL("filter run counter must be 1..8 bits");
    filter.resize(
        checkedTableEntries(cfg.filterIndexBits, "filter table"));
}

bool
FilterPredictor::isFiltered(std::uint64_t pc) const
{
    return filter[filterIndexFor(pc)].runLength == runSaturation;
}

PredictionDetail
FilterPredictor::detailFast(std::uint64_t pc) const
{
    const std::size_t filter_index = filterIndexFor(pc);
    const FilterEntry &entry = filter[filter_index];
    PredictionDetail detail;
    detail.usesCounter = true;
    if (entry.runLength == runSaturation) {
        // Saturated run: the per-branch direction predicts and the
        // PHT is bypassed entirely.
        detail.taken = entry.direction != 0;
        detail.bank = kFilterBank;
        detail.counterId = pht.size() + filter_index;
    } else {
        const std::size_t index = phtIndexFor(pc);
        detail.taken = pht.predictTaken(index);
        detail.bank = kPhtBank;
        detail.counterId = index;
    }
    return detail;
}

void
FilterPredictor::resetFast()
{
    history.clear();
    pht.reset();
    std::fill(filter.begin(), filter.end(), FilterEntry{});
}

std::string
FilterPredictor::name() const
{
    std::ostringstream os;
    os << "filter(n=" << cfg.indexBits << ",h=" << cfg.historyBits
       << ",b=" << cfg.filterIndexBits
       << ",k=" << cfg.filterCounterBits << ")";
    return os.str();
}

std::uint64_t
FilterPredictor::storageBits() const
{
    const std::uint64_t per_filter_entry = 1 + cfg.filterCounterBits;
    return pht.storageBits() + history.storageBits() +
           static_cast<std::uint64_t>(filter.size()) * per_filter_entry;
}

std::uint64_t
FilterPredictor::counterBits() const
{
    // Paper-style cost: the PHT counters plus the filter state the
    // scheme adds (the BTB it rides in is not charged).
    return pht.storageBits();
}

std::uint64_t
FilterPredictor::directionCounters() const
{
    return pht.size() + filter.size();
}

} // namespace bpsim
