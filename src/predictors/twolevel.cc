#include "predictors/twolevel.hh"

#include <sstream>

namespace bpsim
{

TwoLevelPredictor::TwoLevelPredictor(const TwoLevelConfig &config)
    : cfg(config),
      globalHistory(cfg.scope == HistoryScope::Global ? cfg.historyBits : 0),
      counters(checkedTableEntries(cfg.historyBits + cfg.pcBits,
                                   "two-level"),
               cfg.counterWidth,
               SaturatingCounter::weaklyTaken(cfg.counterWidth))
{
    if (cfg.scope == HistoryScope::PerAddress) {
        localHistory.emplace(cfg.localEntriesLog2, cfg.historyBits);
    }
}

PredictionDetail
TwoLevelPredictor::detailFast(std::uint64_t pc) const
{
    const std::size_t index = indexFor(pc);
    return PredictionDetail{counters.predictTaken(index), true, 0, index};
}

void
TwoLevelPredictor::resetFast()
{
    counters.reset();
    globalHistory.clear();
    if (localHistory)
        localHistory->clear();
}

std::string
TwoLevelPredictor::name() const
{
    std::ostringstream os;
    if (cfg.scope == HistoryScope::Global) {
        if (cfg.pcBits == 0)
            os << "GAg(h=" << cfg.historyBits << ")";
        else
            os << "GAs(h=" << cfg.historyBits << ",a=" << cfg.pcBits << ")";
    } else {
        if (cfg.pcBits == 0) {
            os << "PAg(h=" << cfg.historyBits
               << ",l=" << cfg.localEntriesLog2 << ")";
        } else {
            os << "PAs(h=" << cfg.historyBits
               << ",l=" << cfg.localEntriesLog2
               << ",a=" << cfg.pcBits << ")";
        }
    }
    return os.str();
}

std::uint64_t
TwoLevelPredictor::storageBits() const
{
    std::uint64_t bits = counters.storageBits();
    if (cfg.scope == HistoryScope::Global)
        bits += globalHistory.storageBits();
    else
        bits += localHistory->storageBits();
    return bits;
}

std::uint64_t
TwoLevelPredictor::counterBits() const
{
    return counters.storageBits();
}

std::uint64_t
TwoLevelPredictor::directionCounters() const
{
    return counters.size();
}

TwoLevelConfig
makeGAg(unsigned historyBits)
{
    TwoLevelConfig cfg;
    cfg.scope = HistoryScope::Global;
    cfg.historyBits = historyBits;
    return cfg;
}

TwoLevelConfig
makeGAs(unsigned historyBits, unsigned pcBits)
{
    TwoLevelConfig cfg = makeGAg(historyBits);
    cfg.pcBits = pcBits;
    return cfg;
}

TwoLevelConfig
makePAg(unsigned historyBits, unsigned localEntriesLog2)
{
    TwoLevelConfig cfg;
    cfg.scope = HistoryScope::PerAddress;
    cfg.historyBits = historyBits;
    cfg.localEntriesLog2 = localEntriesLog2;
    return cfg;
}

TwoLevelConfig
makePAs(unsigned historyBits, unsigned localEntriesLog2, unsigned pcBits)
{
    TwoLevelConfig cfg = makePAg(historyBits, localEntriesLog2);
    cfg.pcBits = pcBits;
    return cfg;
}

} // namespace bpsim
