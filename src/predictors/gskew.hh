/**
 * @file
 * The skewed branch predictor, e-gskew (Michaud, Seznec & Uhlig,
 * "Trading Conflict and Capacity Aliasing in Conditional Branch
 * Predictors", ISCA 1997) — the hardware-hashing de-aliasing scheme
 * the paper cites as its strongest small-budget competitor.
 *
 * Three equally-sized counter banks are indexed by three different
 * hash functions of (pc, global history); the prediction is the
 * majority vote. A pair of branches may conflict in one bank, but
 * the skewing property makes it unlikely they conflict in two, so
 * the vote usually out-votes the conflict.
 *
 * The original paper builds its hashes from GF(2) skewing matrices;
 * we substitute odd-multiplier mixing hashes with equivalent
 * inter-bank dispersion (documented in DESIGN.md) — the property the
 * scheme needs is only that the three index functions disperse
 * colliding pairs across banks.
 */

#ifndef BPSIM_PREDICTORS_GSKEW_HH
#define BPSIM_PREDICTORS_GSKEW_HH

#include <array>

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** gskew configuration. */
struct GskewConfig
{
    /** log2 counters per bank (three banks total). */
    unsigned bankIndexBits = 10;
    /** Global history length. */
    unsigned historyBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
    /**
     * Enhanced (e-gskew) partial update: bank 0 (the bimodal-indexed
     * bank) always updates; the other banks update only when the
     * overall prediction was wrong or they voted with the outcome.
     */
    bool partialUpdate = true;
};

/** Majority-vote skewed predictor. */
class GskewPredictor : public BranchPredictor
{
  public:
    explicit GskewPredictor(const GskewConfig &config);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Index into @p bank for @p pc under the current history. */
    std::size_t indexFor(unsigned bank, std::uint64_t pc) const;

  private:
    GskewConfig cfg;
    HistoryRegister history;
    std::array<CounterTable, 3> banks;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSKEW_HH
