/**
 * @file
 * The skewed branch predictor, e-gskew (Michaud, Seznec & Uhlig,
 * "Trading Conflict and Capacity Aliasing in Conditional Branch
 * Predictors", ISCA 1997) — the hardware-hashing de-aliasing scheme
 * the paper cites as its strongest small-budget competitor.
 *
 * Three equally-sized counter banks are indexed by three different
 * hash functions of (pc, global history); the prediction is the
 * majority vote. A pair of branches may conflict in one bank, but
 * the skewing property makes it unlikely they conflict in two, so
 * the vote usually out-votes the conflict.
 *
 * The original paper builds its hashes from GF(2) skewing matrices;
 * we substitute odd-multiplier mixing hashes with equivalent
 * inter-bank dispersion (documented in DESIGN.md) — the property the
 * scheme needs is only that the three index functions disperse
 * colliding pairs across banks.
 */

#ifndef BPSIM_PREDICTORS_GSKEW_HH
#define BPSIM_PREDICTORS_GSKEW_HH

#include <array>

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** gskew configuration. */
struct GskewConfig
{
    /** log2 counters per bank (three banks total). */
    unsigned bankIndexBits = 10;
    /** Global history length. */
    unsigned historyBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
    /**
     * Enhanced (e-gskew) partial update: bank 0 (the bimodal-indexed
     * bank) always updates; the other banks update only when the
     * overall prediction was wrong or they voted with the outcome.
     */
    bool partialUpdate = true;
};

/** Majority-vote skewed predictor. */
class GskewPredictor : public FastPredictorBase<GskewPredictor>
{
  public:
    explicit GskewPredictor(const GskewConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Index into @p bank for @p pc under the current history. */
    std::size_t
    indexFor(unsigned bank, std::uint64_t pc) const
    {
        // Feed more address bits than the index needs so the hash can
        // disperse; pc bits above the bank width still matter.
        const std::uint64_t address =
            bitField(pc, 2, cfg.bankIndexBits + 8);
        return static_cast<std::size_t>(
            bankHash(bank, address, history.value(), cfg.bankIndexBits));
    }

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        std::size_t indices[3];
        indicesFor(pc, indices);
        const int votes = static_cast<int>(banks[0].predictTaken(indices[0])) +
                          static_cast<int>(banks[1].predictTaken(indices[1])) +
                          static_cast<int>(banks[2].predictTaken(indices[2]));
        return votes >= 2;
    }

    /** Fused hot path: predict + update sharing one set of bank
     *  hashes and lookups; bit-identical to predictFast() then
     *  updateFast(). */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        std::size_t indices[3];
        indicesFor(pc, indices);
        const bool vote0 = banks[0].predictTaken(indices[0]);
        const bool vote1 = banks[1].predictTaken(indices[1]);
        const bool vote2 = banks[2].predictTaken(indices[2]);
        const bool prediction = static_cast<int>(vote0) +
                                    static_cast<int>(vote1) +
                                    static_cast<int>(vote2) >=
                                2;

        if (!cfg.partialUpdate || prediction != taken) {
            // On a misprediction (or with partial update disabled)
            // every bank re-learns the outcome.
            banks[0].update(indices[0], taken);
            banks[1].update(indices[1], taken);
            banks[2].update(indices[2], taken);
        } else {
            // Correct prediction: strengthen only the banks that
            // voted with the outcome, plus the always-updated bimodal
            // bank — the e-gskew partial update that protects
            // dissenting banks' state for the branches they serve
            // correctly.
            banks[0].update(indices[0], taken);
            if (vote1 == taken)
                banks[1].update(indices[1], taken);
            if (vote2 == taken)
                banks[2].update(indices[2], taken);
        }
        history.push(taken);
        return prediction;
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        (void)stepFast(pc, taken);
    }

    const GskewConfig &config() const { return cfg; }

    /** @name Mutable SoA views for the SIMD bank
     *  (sim/simd/simd_bank.cc), which copies the banks and history
     *  into vector lane state and back. */
    /**@{*/
    CounterTable &bankRef(unsigned bank) { return banks[bank]; }
    HistoryRegister &historyRef() { return history; }
    /**@}*/

  private:
    /**
     * All three bank indices at once, deriving the shared address
     * field, history value and bank mask a single time instead of
     * once per bank as indexFor() does. The constant bank arguments
     * let the compiler fold each bankHash() switch away, so the
     * per-index work is exactly indexFor()'s (bit-identical results)
     * minus the re-derived subexpressions. This is the hot-kernel
     * entry: gskew was the slowest replay kernel because every
     * stepFast() paid the hashing three times over.
     */
    void
    indicesFor(std::uint64_t pc, std::size_t (&indices)[3]) const
    {
        const std::uint64_t address =
            bitField(pc, 2, cfg.bankIndexBits + 8);
        const std::uint64_t hist = history.value();
        indices[0] = static_cast<std::size_t>(
            bankHash(0, address, hist, cfg.bankIndexBits));
        indices[1] = static_cast<std::size_t>(
            bankHash(1, address, hist, cfg.bankIndexBits));
        indices[2] = static_cast<std::size_t>(
            bankHash(2, address, hist, cfg.bankIndexBits));
    }

    /**
     * Per-bank mixing of the (pc, history) pair. Bank 0 is indexed by
     * address alone (the e-gskew "bimodal bank"); banks 1 and 2 mix
     * the history in with different odd multipliers so that a pair of
     * branches colliding in one bank disperses in the others.
     */
    static std::uint64_t
    bankHash(unsigned bank, std::uint64_t address, std::uint64_t history,
             unsigned indexBits)
    {
        switch (bank) {
          case 0:
            return address & maskBits(indexBits);
          case 1: {
            const std::uint64_t mixed =
                (address ^ history) * 0x9e3779b97f4a7c15ULL;
            return foldXor(mixed, indexBits);
          }
          default: {
            const std::uint64_t mixed =
                (address + (history << 1)) * 0xc2b2ae3d27d4eb4fULL;
            return foldXor(mixed, indexBits);
          }
        }
    }

    GskewConfig cfg;
    HistoryRegister history;
    std::array<CounterTable, 3> banks;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSKEW_HH
