/**
 * @file
 * CRTP adapter mapping the virtual BranchPredictor interface onto a
 * predictor's devirtualized fast core.
 *
 * Every kernel-eligible predictor (core/registry.hh entries with
 * fastReplay) implements a non-virtual core —
 *
 *   PredictionDetail detailFast(pc) const   full-provenance predict
 *   bool predictFast(pc) const              direction only
 *   void updateFast(pc, taken)              state transition
 *   bool stepFast(pc, taken)                fused predict+update
 *   void resetFast()                        power-on state
 *
 * — which the replay kernel (sim/replay_kernel.hh) calls directly.
 * This base derives the virtual predictDetailed()/update()/reset()
 * from that core, so the virtual path and the fast path are the same
 * code by construction: the bit-identity contract between
 * simulate() and replayKernel() cannot drift because there is no
 * second implementation to drift.
 *
 * The overrides are final: a predictor that needs different virtual
 * behaviour than its fast core has, by definition, no fast core and
 * should derive from BranchPredictor directly.
 */

#ifndef BPSIM_PREDICTORS_FAST_BASE_HH
#define BPSIM_PREDICTORS_FAST_BASE_HH

#include "predictors/predictor.hh"

namespace bpsim
{

/** Derives the virtual predictor interface from Derived's
 *  non-virtual fast core (detailFast/updateFast/resetFast). */
template <typename Derived>
class FastPredictorBase : public BranchPredictor
{
  public:
    PredictionDetail
    predictDetailed(std::uint64_t pc) const final
    {
        return self().detailFast(pc);
    }

    void
    update(std::uint64_t pc, bool taken) final
    {
        self().updateFast(pc, taken);
    }

    void reset() final { self().resetFast(); }

  private:
    Derived &self() { return static_cast<Derived &>(*this); }
    const Derived &
    self() const
    {
        return static_cast<const Derived &>(*this);
    }
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_FAST_BASE_HH
