#include "predictors/bimodal.hh"

#include <sstream>

#include "predictors/history.hh"

namespace bpsim
{

BimodalPredictor::BimodalPredictor(unsigned indexBits, unsigned counterWidth)
    : indexBits(indexBits),
      counters(checkedTableEntries(indexBits, "bimodal"), counterWidth,
               SaturatingCounter::weaklyTaken(counterWidth))
{
}

PredictionDetail
BimodalPredictor::detailFast(std::uint64_t pc) const
{
    const std::size_t index = indexFor(pc);
    return PredictionDetail{counters.predictTaken(index), true, 0, index};
}

void
BimodalPredictor::resetFast()
{
    counters.reset();
}

std::string
BimodalPredictor::name() const
{
    std::ostringstream os;
    os << "bimodal(n=" << indexBits << ")";
    return os.str();
}

std::uint64_t
BimodalPredictor::storageBits() const
{
    return counters.storageBits();
}

std::uint64_t
BimodalPredictor::directionCounters() const
{
    return counters.size();
}

} // namespace bpsim
