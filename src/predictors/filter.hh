/**
 * @file
 * The filtering predictor (Chang, Evers & Patt, "Improving Branch
 * Prediction Accuracy by Reducing Pattern History Table
 * Interference", PACT 1996) — the third de-aliasing proposal the
 * paper cites in §2.1, alongside agree and gskew.
 *
 * Observation: most dynamic branches come from strongly biased
 * static branches that a trivial per-branch mechanism predicts
 * perfectly; letting them into the shared PHT only creates
 * interference for the branches that genuinely need history. The
 * filter is a per-branch saturating run counter (in hardware, rides
 * in the BTB entry): once a branch has gone the same direction
 * enough consecutive times, that direction predicts it and the
 * branch neither consults nor updates the gshare PHT.
 */

#ifndef BPSIM_PREDICTORS_FILTER_HH
#define BPSIM_PREDICTORS_FILTER_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Filtering predictor configuration. */
struct FilterConfig
{
    /** log2 of the PHT size (gshare-indexed). */
    unsigned indexBits = 10;
    /** Global history length, <= indexBits. */
    unsigned historyBits = 10;
    /** log2 of the filter (per-branch) table size. */
    unsigned filterIndexBits = 10;
    /** Width of the run counter; saturation engages the filter. */
    unsigned filterCounterBits = 6;
    /** PHT counter width. */
    unsigned counterWidth = 2;
};

/** PHT-interference-filtering gshare. */
class FilterPredictor : public BranchPredictor
{
  public:
    /** Bank id reported when the filter served the prediction. */
    static constexpr std::uint32_t kPhtBank = 0;
    static constexpr std::uint32_t kFilterBank = 1;

    explicit FilterPredictor(const FilterConfig &config);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** True when the branch at @p pc is currently filtered. */
    bool isFiltered(std::uint64_t pc) const;

  private:
    struct FilterEntry
    {
        /** Direction of the current run (1 = taken). */
        std::uint8_t direction = 0;
        /** Consecutive same-direction outcomes, saturating. */
        std::uint8_t runLength = 0;
    };

    std::size_t phtIndexFor(std::uint64_t pc) const;
    std::size_t filterIndexFor(std::uint64_t pc) const;

    FilterConfig cfg;
    std::uint8_t runSaturation;
    HistoryRegister history;
    CounterTable pht;
    std::vector<FilterEntry> filter;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_FILTER_HH
