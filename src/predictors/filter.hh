/**
 * @file
 * The filtering predictor (Chang, Evers & Patt, "Improving Branch
 * Prediction Accuracy by Reducing Pattern History Table
 * Interference", PACT 1996) — the third de-aliasing proposal the
 * paper cites in §2.1, alongside agree and gskew.
 *
 * Observation: most dynamic branches come from strongly biased
 * static branches that a trivial per-branch mechanism predicts
 * perfectly; letting them into the shared PHT only creates
 * interference for the branches that genuinely need history. The
 * filter is a per-branch saturating run counter (in hardware, rides
 * in the BTB entry): once a branch has gone the same direction
 * enough consecutive times, that direction predicts it and the
 * branch neither consults nor updates the gshare PHT.
 */

#ifndef BPSIM_PREDICTORS_FILTER_HH
#define BPSIM_PREDICTORS_FILTER_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Filtering predictor configuration. */
struct FilterConfig
{
    /** log2 of the PHT size (gshare-indexed). */
    unsigned indexBits = 10;
    /** Global history length, <= indexBits. */
    unsigned historyBits = 10;
    /** log2 of the filter (per-branch) table size. */
    unsigned filterIndexBits = 10;
    /** Width of the run counter; saturation engages the filter. */
    unsigned filterCounterBits = 6;
    /** PHT counter width. */
    unsigned counterWidth = 2;
};

/** PHT-interference-filtering gshare. */
class FilterPredictor : public FastPredictorBase<FilterPredictor>
{
  public:
    /** Bank id reported when the filter served the prediction. */
    static constexpr std::uint32_t kPhtBank = 0;
    static constexpr std::uint32_t kFilterBank = 1;

    explicit FilterPredictor(const FilterConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** True when the branch at @p pc is currently filtered. */
    bool isFiltered(std::uint64_t pc) const;

    /** PHT index for @p pc under the current history. */
    std::size_t
    phtIndexFor(std::uint64_t pc) const
    {
        const std::uint64_t address = pcIndexBits(pc, cfg.indexBits);
        return static_cast<std::size_t>(address ^ history.value());
    }

    /** Filter-table index for @p pc. */
    std::size_t
    filterIndexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            pcIndexBits(pc, cfg.filterIndexBits));
    }

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        const FilterEntry &entry = filter[filterIndexFor(pc)];
        if (entry.runLength == runSaturation)
            return entry.direction != 0;
        return pht.predictTaken(phtIndexFor(pc));
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        (void)stepFast(pc, taken);
    }

    /**
     * Fused hot path: predict + update sharing the filter-entry
     * lookup and one PHT index; bit-identical to predictFast() then
     * updateFast(). A filtered branch bypasses the PHT on both
     * sides, so the fused path touches the PHT at most once.
     */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        // One shared word-address extraction feeds both table
        // indices: each is a mask (plus the PHT history xor) away,
        // instead of filterIndexFor/phtIndexFor re-deriving pc >> 2
        // for themselves.
        const std::uint64_t word = pc >> 2;
        FilterEntry &entry = filter[static_cast<std::size_t>(
            word & maskBits(cfg.filterIndexBits))];
        const bool was_filtered = entry.runLength == runSaturation;
        bool prediction;
        if (was_filtered) {
            prediction = entry.direction != 0;
        } else {
            // Only unfiltered branches touch the PHT — that is the
            // whole interference-reduction mechanism.
            const std::size_t index = static_cast<std::size_t>(
                (word & maskBits(cfg.indexBits)) ^ history.value());
            prediction = pht.predictTaken(index);
            pht.update(index, taken);
        }
        if ((entry.direction != 0) == taken) {
            if (entry.runLength < runSaturation)
                ++entry.runLength;
        } else {
            // Direction change: restart the run.
            entry.direction = taken ? 1 : 0;
            entry.runLength = 1;
        }
        history.push(taken);
        return prediction;
    }

    struct FilterEntry
    {
        /** Direction of the current run (1 = taken). uint16 rather
         *  than uint8 for the same aliasing reason as CounterTable:
         *  unsigned-char stores would defeat type-based alias
         *  analysis in the inlined replay kernel. */
        std::uint16_t direction = 0;
        /** Consecutive same-direction outcomes, saturating. */
        std::uint16_t runLength = 0;
    };

    const FilterConfig &config() const { return cfg; }
    std::uint16_t runSaturationValue() const { return runSaturation; }

    /** @name Mutable SoA views for the SIMD bank
     *  (sim/simd/simd_bank.cc), which packs each filter entry into
     *  one arena word (direction | runLength << 1) and back. */
    /**@{*/
    CounterTable &phtRef() { return pht; }
    std::vector<FilterEntry> &filterRef() { return filter; }
    HistoryRegister &historyRef() { return history; }
    /**@}*/

  private:
    FilterConfig cfg;
    std::uint16_t runSaturation;
    HistoryRegister history;
    CounterTable pht;
    std::vector<FilterEntry> filter;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_FILTER_HH
