/**
 * @file
 * Branch history registers.
 *
 * Global history (the outcomes of the most recent branches,
 * regardless of address) feeds the G-class schemes; per-address
 * history tables feed the P-class schemes of the Yeh-Patt taxonomy.
 */

#ifndef BPSIM_PREDICTORS_HISTORY_HH
#define BPSIM_PREDICTORS_HISTORY_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

/** An m-bit outcome shift register (1 = taken). */
class HistoryRegister
{
  public:
    /** @param bits register width, 0..64 (0 = degenerate, always 0) */
    explicit HistoryRegister(unsigned bits)
        : widthBits(bits), mask(maskBits(bits))
    {
        if (bits > 64)
            BPSIM_PANIC("history width " << bits << " exceeds 64");
    }

    /** Shifts in the newest outcome at the low end. */
    void
    push(bool taken)
    {
        contents = ((contents << 1) | (taken ? 1 : 0)) & mask;
    }

    /** Current history pattern (low @c bits() bits). */
    std::uint64_t value() const { return contents; }

    /** History truncated to its newest @p n outcomes. */
    std::uint64_t low(unsigned n) const { return contents & maskBits(n); }

    void clear() { contents = 0; }

    /** Restores a pattern captured by value(); masked to the register
     *  width. The SIMD bank (sim/simd/) uses this to store vector
     *  lane state back after a replay. */
    void setValue(std::uint64_t v) { contents = v & mask; }

    unsigned bits() const { return widthBits; }

    std::uint64_t storageBits() const { return widthBits; }

  private:
    unsigned widthBits;
    std::uint64_t mask;
    std::uint64_t contents = 0;
};

/**
 * First-level table of per-address history registers, indexed by
 * low-order pc word-address bits.
 */
class LocalHistoryTable
{
  public:
    /**
     * @param entriesLog2 log2 of the number of registers
     * @param bits width of each register
     */
    LocalHistoryTable(unsigned entriesLog2, unsigned bits)
        : indexBits(entriesLog2), widthBits(bits),
          mask(maskBits(bits)),
          table(std::size_t{1} << entriesLog2, 0)
    {
        if (bits > 64)
            BPSIM_PANIC("history width " << bits << " exceeds 64");
    }

    /** Index of the register serving @p pc (pc is a byte address of a
     *  4-byte-aligned instruction, so bits 2+ carry the entropy). */
    std::size_t
    indexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(bitField(pc, 2, indexBits));
    }

    std::uint64_t value(std::uint64_t pc) const
    {
        return table[indexFor(pc)];
    }

    void
    push(std::uint64_t pc, bool taken)
    {
        std::uint64_t &h = table[indexFor(pc)];
        h = ((h << 1) | (taken ? 1 : 0)) & mask;
    }

    void clear() { std::fill(table.begin(), table.end(), 0); }

    std::size_t entries() const { return table.size(); }
    unsigned entriesLog2() const { return indexBits; }
    unsigned bits() const { return widthBits; }

    /**
     * Raw register storage for the SIMD bank builders (sim/simd/),
     * which copy the table into a uint32 gather arena and back.
     * Writers must keep every element within the register mask.
     */
    const std::uint64_t *data() const { return table.data(); }
    std::uint64_t *data() { return table.data(); }

    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(table.size()) * widthBits;
    }

  private:
    unsigned indexBits;
    unsigned widthBits;
    std::uint64_t mask;
    std::vector<std::uint64_t> table;
};

/** Low-order word-address bits of a branch pc (drops the two zero
 *  byte-offset bits of 4-byte-aligned instructions). */
inline std::uint64_t
pcIndexBits(std::uint64_t pc, unsigned n)
{
    return bitField(pc, 2, n);
}

} // namespace bpsim

#endif // BPSIM_PREDICTORS_HISTORY_HH
