/**
 * @file
 * A branch target buffer (BTB) substrate.
 *
 * Direction predictors answer "taken or not"; the front end also
 * needs "where to". The paper situates its predictors alongside the
 * BTB of contemporary machines (Pentium Pro, Alpha 21264) and the
 * agree predictor literally stores its bias bits there, so the
 * library carries a faithful set-associative BTB: tagged entries,
 * true-LRU replacement, allocate-on-taken.
 */

#ifndef BPSIM_PREDICTORS_BTB_HH
#define BPSIM_PREDICTORS_BTB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bpsim
{

/** BTB geometry. */
struct BtbConfig
{
    /** log2 of the number of sets. */
    unsigned setsLog2 = 9;
    /** Associativity. */
    unsigned ways = 4;
    /** Partial tag width stored per entry. */
    unsigned tagBits = 8;
};

/** Hit/miss statistics of a BTB run. */
struct BtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    /** Hits whose stored target was stale (target changed). */
    std::uint64_t targetMismatches = 0;
    std::uint64_t allocations = 0;
    std::uint64_t evictions = 0;

    double hitRate() const;
};

/** Set-associative branch target buffer. */
class BranchTargetBuffer
{
  public:
    explicit BranchTargetBuffer(const BtbConfig &config);

    /**
     * Looks @p pc up; counts into the statistics.
     *
     * @return the stored target on a hit, nullopt on a miss
     */
    std::optional<std::uint64_t> lookup(std::uint64_t pc);

    /**
     * Trains the BTB with a resolved branch. Taken branches
     * allocate/refresh their entry; not-taken branches leave the
     * array untouched (the usual allocate-on-taken policy).
     */
    void update(std::uint64_t pc, std::uint64_t target, bool taken);

    /** Restores the power-on (empty) state; statistics cleared. */
    void reset();

    const BtbStats &stats() const { return statistics; }

    std::string name() const;

    /** Storage: valid + tag + target (32 bits modelled) + LRU rank. */
    std::uint64_t storageBits() const;

    std::size_t sets() const { return std::size_t{1} << cfg.setsLog2; }
    unsigned ways() const { return cfg.ways; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t target = 0;
        /** Smaller = more recently used. */
        std::uint32_t lruRank = 0;
    };

    std::size_t setIndexFor(std::uint64_t pc) const;
    std::uint32_t tagFor(std::uint64_t pc) const;
    Entry *findEntry(std::uint64_t pc);
    void touch(std::size_t set, std::size_t way);

    BtbConfig cfg;
    std::vector<Entry> entries;
    BtbStats statistics;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BTB_HH
