#include "predictors/yags.hh"

#include <sstream>

#include "util/bits.hh"

namespace bpsim
{

YagsPredictor::YagsPredictor(const YagsConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      choice(checkedTableEntries(cfg.choiceIndexBits, "YAGS choice"),
             cfg.counterWidth,
             SaturatingCounter::weaklyTaken(cfg.counterWidth))
{
    if (cfg.historyBits > cfg.cacheIndexBits)
        BPSIM_FATAL("YAGS history cannot exceed the cache index width");
    if (cfg.tagBits > 16)
        BPSIM_FATAL("YAGS tags wider than 16 bits are not supported");
    const std::size_t cache_entries =
        checkedTableEntries(cfg.cacheIndexBits, "YAGS cache");
    caches[0].resize(cache_entries);
    caches[1].resize(cache_entries);
}

std::size_t
YagsPredictor::cacheIndexFor(std::uint64_t pc) const
{
    const std::uint64_t address = pcIndexBits(pc, cfg.cacheIndexBits);
    return static_cast<std::size_t>(address ^ history.value());
}

std::uint16_t
YagsPredictor::tagFor(std::uint64_t pc) const
{
    // Tag with the pc bits just above the cache index so aliasing
    // pairs that share an index usually differ in tag.
    return static_cast<std::uint16_t>(
        bitField(pc, 2 + cfg.cacheIndexBits, cfg.tagBits));
}

YagsPredictor::Lookup
YagsPredictor::lookupFor(std::uint64_t pc) const
{
    Lookup look;
    look.choiceIndex =
        static_cast<std::size_t>(pcIndexBits(pc, cfg.choiceIndexBits));
    look.choiceTaken = choice.predictTaken(look.choiceIndex);
    // Exceptions to a taken bias live in the not-taken cache and
    // vice versa: consult the cache opposite to the choice.
    look.cache = look.choiceTaken ? kNotTakenCache : kTakenCache;
    look.cacheIndex = cacheIndexFor(pc);
    look.tag = tagFor(pc);
    const CacheEntry &entry = caches[look.cache][look.cacheIndex];
    look.hit = entry.valid && entry.tag == look.tag;
    if (look.hit) {
        const std::uint8_t mid =
            static_cast<std::uint8_t>(maskBits(cfg.counterWidth) / 2);
        look.prediction = entry.counter > mid;
    } else {
        look.prediction = look.choiceTaken;
    }
    return look;
}

PredictionDetail
YagsPredictor::predictDetailed(std::uint64_t pc) const
{
    const Lookup look = lookupFor(pc);
    PredictionDetail detail;
    detail.taken = look.prediction;
    detail.usesCounter = true;
    const std::uint64_t cache_size = caches[0].size();
    if (look.hit) {
        detail.bank = look.cache;
        detail.counterId =
            static_cast<std::uint64_t>(look.cache) * cache_size +
            look.cacheIndex;
    } else {
        detail.bank = kChoiceBank;
        detail.counterId = 2 * cache_size + look.choiceIndex;
    }
    return detail;
}

void
YagsPredictor::update(std::uint64_t pc, bool taken)
{
    const Lookup look = lookupFor(pc);
    const std::uint8_t max_counter =
        static_cast<std::uint8_t>(maskBits(cfg.counterWidth));

    if (look.hit) {
        CacheEntry &entry = caches[look.cache][look.cacheIndex];
        if (taken) {
            if (entry.counter < max_counter)
                ++entry.counter;
        } else {
            if (entry.counter > 0)
                --entry.counter;
        }
    } else if (look.choiceTaken != taken) {
        // The branch deviated from its bias and no exception entry
        // existed: allocate one, initialized weakly toward the
        // outcome.
        CacheEntry &entry = caches[look.cache][look.cacheIndex];
        entry.valid = true;
        entry.tag = look.tag;
        entry.counter = taken ? SaturatingCounter::weaklyTaken(
                                    cfg.counterWidth)
                              : SaturatingCounter::weaklyNotTaken(
                                    cfg.counterWidth);
    }

    // Choice table follows the bi-mode policy: train with the
    // outcome unless the choice was wrong but the cache corrected it.
    const bool keep_choice =
        look.choiceTaken != taken && look.prediction == taken;
    if (!keep_choice)
        choice.update(look.choiceIndex, taken);

    history.push(taken);
}

void
YagsPredictor::reset()
{
    history.clear();
    choice.reset();
    for (auto &cache : caches)
        std::fill(cache.begin(), cache.end(), CacheEntry{});
}

std::string
YagsPredictor::name() const
{
    std::ostringstream os;
    os << "yags(c=" << cfg.choiceIndexBits << ",n=" << cfg.cacheIndexBits
       << ",t=" << cfg.tagBits << ",h=" << cfg.historyBits << ")";
    return os.str();
}

std::uint64_t
YagsPredictor::storageBits() const
{
    const std::uint64_t per_entry = 1 + cfg.tagBits + cfg.counterWidth;
    return choice.storageBits() + history.storageBits() +
           2 * caches[0].size() * per_entry;
}

std::uint64_t
YagsPredictor::counterBits() const
{
    // Paper-style cost counts prediction counters only, not tags.
    return choice.storageBits() +
           2 * caches[0].size() * cfg.counterWidth;
}

std::uint64_t
YagsPredictor::directionCounters() const
{
    return 2 * caches[0].size() + choice.size();
}

} // namespace bpsim
