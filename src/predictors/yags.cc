#include "predictors/yags.hh"

#include <sstream>

#include "util/bits.hh"

namespace bpsim
{

YagsPredictor::YagsPredictor(const YagsConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      choice(checkedTableEntries(cfg.choiceIndexBits, "YAGS choice"),
             cfg.counterWidth,
             SaturatingCounter::weaklyTaken(cfg.counterWidth))
{
    if (cfg.historyBits > cfg.cacheIndexBits)
        BPSIM_FATAL("YAGS history cannot exceed the cache index width");
    if (cfg.tagBits > 16)
        BPSIM_FATAL("YAGS tags wider than 16 bits are not supported");
    const std::size_t cache_entries =
        checkedTableEntries(cfg.cacheIndexBits, "YAGS cache");
    caches[0].resize(cache_entries);
    caches[1].resize(cache_entries);
}

PredictionDetail
YagsPredictor::detailFast(std::uint64_t pc) const
{
    const Lookup look = lookupFor(pc);
    PredictionDetail detail;
    detail.taken = look.prediction;
    detail.usesCounter = true;
    const std::uint64_t cache_size = caches[0].size();
    if (look.hit) {
        detail.bank = look.cache;
        detail.counterId =
            static_cast<std::uint64_t>(look.cache) * cache_size +
            look.cacheIndex;
    } else {
        detail.bank = kChoiceBank;
        detail.counterId = 2 * cache_size + look.choiceIndex;
    }
    return detail;
}

void
YagsPredictor::resetFast()
{
    history.clear();
    choice.reset();
    for (auto &cache : caches)
        std::fill(cache.begin(), cache.end(), CacheEntry{});
}

std::string
YagsPredictor::name() const
{
    std::ostringstream os;
    os << "yags(c=" << cfg.choiceIndexBits << ",n=" << cfg.cacheIndexBits
       << ",t=" << cfg.tagBits << ",h=" << cfg.historyBits << ")";
    return os.str();
}

std::uint64_t
YagsPredictor::storageBits() const
{
    const std::uint64_t per_entry = 1 + cfg.tagBits + cfg.counterWidth;
    return choice.storageBits() + history.storageBits() +
           2 * caches[0].size() * per_entry;
}

std::uint64_t
YagsPredictor::counterBits() const
{
    // Paper-style cost counts prediction counters only, not tags.
    return choice.storageBits() +
           2 * caches[0].size() * cfg.counterWidth;
}

std::uint64_t
YagsPredictor::directionCounters() const
{
    return 2 * caches[0].size() + choice.size();
}

} // namespace bpsim
