#include "predictors/btb.hh"

#include <sstream>

#include "predictors/history.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace bpsim
{

double
BtbStats::hitRate() const
{
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
}

BranchTargetBuffer::BranchTargetBuffer(const BtbConfig &config)
    : cfg(config)
{
    if (cfg.ways == 0 || cfg.ways > 16)
        BPSIM_FATAL("BTB associativity must be 1..16");
    if (cfg.setsLog2 > 24)
        BPSIM_FATAL("BTB set count is unreasonably large");
    if (cfg.tagBits == 0 || cfg.tagBits > 32)
        BPSIM_FATAL("BTB tags must be 1..32 bits");
    entries.resize((std::size_t{1} << cfg.setsLog2) * cfg.ways);
}

std::size_t
BranchTargetBuffer::setIndexFor(std::uint64_t pc) const
{
    return static_cast<std::size_t>(pcIndexBits(pc, cfg.setsLog2));
}

std::uint32_t
BranchTargetBuffer::tagFor(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(
        bitField(pc, 2 + cfg.setsLog2, cfg.tagBits));
}

BranchTargetBuffer::Entry *
BranchTargetBuffer::findEntry(std::uint64_t pc)
{
    const std::size_t set = setIndexFor(pc);
    const std::uint32_t tag = tagFor(pc);
    for (unsigned way = 0; way < cfg.ways; ++way) {
        Entry &entry = entries[set * cfg.ways + way];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

void
BranchTargetBuffer::touch(std::size_t set, std::size_t way)
{
    // True LRU: entries more recent than the touched one age by one.
    Entry &touched = entries[set * cfg.ways + way];
    const std::uint32_t old_rank = touched.lruRank;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &entry = entries[set * cfg.ways + w];
        if (entry.valid && entry.lruRank < old_rank)
            ++entry.lruRank;
    }
    touched.lruRank = 0;
}

std::optional<std::uint64_t>
BranchTargetBuffer::lookup(std::uint64_t pc)
{
    ++statistics.lookups;
    if (Entry *entry = findEntry(pc)) {
        ++statistics.hits;
        const std::size_t set = setIndexFor(pc);
        touch(set, static_cast<std::size_t>(
                       entry - &entries[set * cfg.ways]));
        return entry->target;
    }
    return std::nullopt;
}

void
BranchTargetBuffer::update(std::uint64_t pc, std::uint64_t target,
                           bool taken)
{
    if (!taken)
        return;
    const std::size_t set = setIndexFor(pc);
    if (Entry *entry = findEntry(pc)) {
        if (entry->target != target) {
            ++statistics.targetMismatches;
            entry->target = target;
        }
        touch(set,
              static_cast<std::size_t>(entry - &entries[set * cfg.ways]));
        return;
    }

    // Miss: allocate into the invalid or least-recently-used way.
    std::size_t victim = 0;
    std::uint32_t worst_rank = 0;
    for (unsigned way = 0; way < cfg.ways; ++way) {
        Entry &entry = entries[set * cfg.ways + way];
        if (!entry.valid) {
            victim = way;
            break;
        }
        if (entry.lruRank >= worst_rank) {
            worst_rank = entry.lruRank;
            victim = way;
        }
    }
    Entry &slot = entries[set * cfg.ways + victim];
    if (slot.valid)
        ++statistics.evictions;
    ++statistics.allocations;
    slot.valid = true;
    slot.tag = tagFor(pc);
    slot.target = target;
    slot.lruRank = static_cast<std::uint32_t>(cfg.ways);
    touch(set, victim);
}

void
BranchTargetBuffer::reset()
{
    std::fill(entries.begin(), entries.end(), Entry{});
    statistics = BtbStats{};
}

std::string
BranchTargetBuffer::name() const
{
    std::ostringstream os;
    os << "btb(sets=" << (1u << cfg.setsLog2) << ",ways=" << cfg.ways
       << ",tag=" << cfg.tagBits << ")";
    return os.str();
}

std::uint64_t
BranchTargetBuffer::storageBits() const
{
    const std::uint64_t per_entry =
        1 + cfg.tagBits + 32 + log2Ceil(cfg.ways);
    return static_cast<std::uint64_t>(entries.size()) * per_entry;
}

} // namespace bpsim
