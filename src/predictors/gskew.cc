#include "predictors/gskew.hh"

#include <sstream>

#include "util/bits.hh"

namespace bpsim
{

GskewPredictor::GskewPredictor(const GskewConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      banks{CounterTable(checkedTableEntries(cfg.bankIndexBits, "gskew"),
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth)),
            CounterTable(std::size_t{1} << cfg.bankIndexBits,
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth)),
            CounterTable(std::size_t{1} << cfg.bankIndexBits,
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth))}
{
}

PredictionDetail
GskewPredictor::detailFast(std::uint64_t pc) const
{
    int votes = 0;
    std::size_t serving_index = 0;
    std::uint32_t serving_bank = 0;
    for (unsigned bank = 0; bank < 3; ++bank) {
        const std::size_t index = indexFor(bank, pc);
        if (banks[bank].predictTaken(index))
            ++votes;
        if (bank == 0) {
            serving_index = index;
            serving_bank = 0;
        }
    }
    PredictionDetail detail;
    detail.taken = votes >= 2;
    // The vote has no single serving counter; report the bimodal
    // bank's counter as the representative for analysis purposes.
    detail.usesCounter = true;
    detail.bank = serving_bank;
    detail.counterId = serving_index;
    return detail;
}

void
GskewPredictor::resetFast()
{
    history.clear();
    for (auto &bank : banks)
        bank.reset();
}

std::string
GskewPredictor::name() const
{
    std::ostringstream os;
    os << "gskew(n=" << cfg.bankIndexBits << ",h=" << cfg.historyBits
       << ")";
    if (!cfg.partialUpdate)
        os << "[full-update]";
    return os.str();
}

std::uint64_t
GskewPredictor::storageBits() const
{
    return banks[0].storageBits() * 3 + history.storageBits();
}

std::uint64_t
GskewPredictor::counterBits() const
{
    return banks[0].storageBits() * 3;
}

std::uint64_t
GskewPredictor::directionCounters() const
{
    return banks[0].size();
}

} // namespace bpsim
