#include "predictors/gskew.hh"

#include <sstream>

#include "util/bits.hh"

namespace bpsim
{

namespace
{

/**
 * Per-bank mixing of the (pc, history) pair. Bank 0 is indexed by
 * address alone (the e-gskew "bimodal bank"); banks 1 and 2 mix the
 * history in with different odd multipliers so that a pair of
 * branches colliding in one bank disperses in the others.
 */
std::uint64_t
bankHash(unsigned bank, std::uint64_t address, std::uint64_t history,
         unsigned indexBits)
{
    switch (bank) {
      case 0:
        return address & maskBits(indexBits);
      case 1: {
        const std::uint64_t mixed =
            (address ^ history) * 0x9e3779b97f4a7c15ULL;
        return foldXor(mixed, indexBits);
      }
      default: {
        const std::uint64_t mixed =
            (address + (history << 1)) * 0xc2b2ae3d27d4eb4fULL;
        return foldXor(mixed, indexBits);
      }
    }
}

} // namespace

GskewPredictor::GskewPredictor(const GskewConfig &config)
    : cfg(config),
      history(cfg.historyBits),
      banks{CounterTable(checkedTableEntries(cfg.bankIndexBits, "gskew"),
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth)),
            CounterTable(std::size_t{1} << cfg.bankIndexBits,
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth)),
            CounterTable(std::size_t{1} << cfg.bankIndexBits,
                         cfg.counterWidth,
                         SaturatingCounter::weaklyTaken(cfg.counterWidth))}
{
}

std::size_t
GskewPredictor::indexFor(unsigned bank, std::uint64_t pc) const
{
    // Feed more address bits than the index needs so the hash can
    // disperse; pc bits above the bank width still matter.
    const std::uint64_t address = bitField(pc, 2, cfg.bankIndexBits + 8);
    return static_cast<std::size_t>(
        bankHash(bank, address, history.value(), cfg.bankIndexBits));
}

PredictionDetail
GskewPredictor::predictDetailed(std::uint64_t pc) const
{
    int votes = 0;
    std::size_t serving_index = 0;
    std::uint32_t serving_bank = 0;
    for (unsigned bank = 0; bank < 3; ++bank) {
        const std::size_t index = indexFor(bank, pc);
        if (banks[bank].predictTaken(index))
            ++votes;
        if (bank == 0) {
            serving_index = index;
            serving_bank = 0;
        }
    }
    PredictionDetail detail;
    detail.taken = votes >= 2;
    // The vote has no single serving counter; report the bimodal
    // bank's counter as the representative for analysis purposes.
    detail.usesCounter = true;
    detail.bank = serving_bank;
    detail.counterId = serving_index;
    return detail;
}

void
GskewPredictor::update(std::uint64_t pc, bool taken)
{
    bool bank_votes[3];
    std::size_t indices[3];
    int votes = 0;
    for (unsigned bank = 0; bank < 3; ++bank) {
        indices[bank] = indexFor(bank, pc);
        bank_votes[bank] = banks[bank].predictTaken(indices[bank]);
        if (bank_votes[bank])
            ++votes;
    }
    const bool prediction = votes >= 2;

    if (!cfg.partialUpdate || prediction != taken) {
        // On a misprediction (or with partial update disabled) every
        // bank re-learns the outcome.
        for (unsigned bank = 0; bank < 3; ++bank)
            banks[bank].update(indices[bank], taken);
    } else {
        // Correct prediction: strengthen only the banks that voted
        // with the outcome, plus the always-updated bimodal bank —
        // the e-gskew partial update that protects dissenting banks'
        // state for the branches they serve correctly.
        banks[0].update(indices[0], taken);
        for (unsigned bank = 1; bank < 3; ++bank) {
            if (bank_votes[bank] == taken)
                banks[bank].update(indices[bank], taken);
        }
    }
    history.push(taken);
}

void
GskewPredictor::reset()
{
    history.clear();
    for (auto &bank : banks)
        bank.reset();
}

std::string
GskewPredictor::name() const
{
    std::ostringstream os;
    os << "gskew(n=" << cfg.bankIndexBits << ",h=" << cfg.historyBits
       << ")";
    if (!cfg.partialUpdate)
        os << "[full-update]";
    return os.str();
}

std::uint64_t
GskewPredictor::storageBits() const
{
    return banks[0].storageBits() * 3 + history.storageBits();
}

std::uint64_t
GskewPredictor::counterBits() const
{
    return banks[0].storageBits() * 3;
}

std::uint64_t
GskewPredictor::directionCounters() const
{
    return banks[0].size();
}

} // namespace bpsim
