#include "predictors/static_predictors.hh"

#include <algorithm>
#include <sstream>

#include "predictors/history.hh"

namespace bpsim
{

BtfnPredictor::BtfnPredictor(unsigned entriesLog2)
    : indexBits(entriesLog2),
      sense(std::size_t{1} << entriesLog2, 0)
{
}

PredictionDetail
BtfnPredictor::predictDetailed(std::uint64_t pc) const
{
    const std::size_t index =
        static_cast<std::size_t>(pcIndexBits(pc, indexBits));
    // Unknown branches default to not-taken (forward-biased code).
    const bool taken = sense[index] == 2;
    return PredictionDetail{taken, false, 0, 0};
}

void
BtfnPredictor::update(std::uint64_t, bool)
{
    // Direction sense is learned from observeTarget() only.
}

void
BtfnPredictor::observeTarget(std::uint64_t pc, std::uint64_t target)
{
    const std::size_t index =
        static_cast<std::size_t>(pcIndexBits(pc, indexBits));
    sense[index] = target <= pc ? 2 : 1;
}

void
BtfnPredictor::reset()
{
    std::fill(sense.begin(), sense.end(), 0);
}

std::string
BtfnPredictor::name() const
{
    std::ostringstream os;
    os << "btfn(l=" << indexBits << ")";
    return os.str();
}

std::uint64_t
BtfnPredictor::storageBits() const
{
    // Two bits of sense state per entry.
    return static_cast<std::uint64_t>(sense.size()) * 2;
}

} // namespace bpsim
