/**
 * @file
 * The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997),
 * one of the concurrent de-aliasing proposals the paper compares
 * against in its related-work discussion.
 *
 * Each branch carries a *biasing bit* (in hardware, attached to the
 * BTB/I-cache line; here, a pc-indexed bit table) set to the
 * branch's first observed outcome. The gshare-indexed second-level
 * counters then predict whether the branch will AGREE with its bias
 * rather than whether it will be taken. Two oppositely-biased
 * branches aliasing to the same counter both push it toward "agree",
 * converting destructive interference into neutral interference.
 */

#ifndef BPSIM_PREDICTORS_AGREE_HH
#define BPSIM_PREDICTORS_AGREE_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Agree predictor configuration. */
struct AgreeConfig
{
    /** log2 of the agree-counter table size. */
    unsigned indexBits = 10;
    /** Global history length, <= indexBits. */
    unsigned historyBits = 10;
    /** log2 of the biasing-bit table size. */
    unsigned biasIndexBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
};

/** Bias-agreement de-aliased gshare. */
class AgreePredictor : public BranchPredictor
{
  public:
    explicit AgreePredictor(const AgreeConfig &config);

    PredictionDetail predictDetailed(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

  private:
    std::size_t counterIndexFor(std::uint64_t pc) const;
    std::size_t biasIndexFor(std::uint64_t pc) const;

    AgreeConfig cfg;
    HistoryRegister history;
    CounterTable counters;
    /** Biasing bit per entry plus a valid bit (first-use capture). */
    std::vector<std::uint8_t> biasBit;
    std::vector<std::uint8_t> biasValid;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_AGREE_HH
