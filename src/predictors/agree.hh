/**
 * @file
 * The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997),
 * one of the concurrent de-aliasing proposals the paper compares
 * against in its related-work discussion.
 *
 * Each branch carries a *biasing bit* (in hardware, attached to the
 * BTB/I-cache line; here, a pc-indexed bit table) set to the
 * branch's first observed outcome. The gshare-indexed second-level
 * counters then predict whether the branch will AGREE with its bias
 * rather than whether it will be taken. Two oppositely-biased
 * branches aliasing to the same counter both push it toward "agree",
 * converting destructive interference into neutral interference.
 */

#ifndef BPSIM_PREDICTORS_AGREE_HH
#define BPSIM_PREDICTORS_AGREE_HH

#include <vector>

#include "predictors/counter.hh"
#include "predictors/fast_base.hh"
#include "predictors/history.hh"
#include "predictors/predictor.hh"

namespace bpsim
{

/** Agree predictor configuration. */
struct AgreeConfig
{
    /** log2 of the agree-counter table size. */
    unsigned indexBits = 10;
    /** Global history length, <= indexBits. */
    unsigned historyBits = 10;
    /** log2 of the biasing-bit table size. */
    unsigned biasIndexBits = 10;
    /** Counter width in bits. */
    unsigned counterWidth = 2;
};

/** Bias-agreement de-aliased gshare. */
class AgreePredictor : public FastPredictorBase<AgreePredictor>
{
  public:
    explicit AgreePredictor(const AgreeConfig &config);

    PredictionDetail detailFast(std::uint64_t pc) const;
    void resetFast();
    std::string name() const override;
    std::uint64_t storageBits() const override;
    std::uint64_t counterBits() const override;
    std::uint64_t directionCounters() const override;

    /** Devirtualized hot path: == predictDetailed().taken. */
    bool
    predictFast(std::uint64_t pc) const
    {
        const std::size_t bias_index = biasIndexFor(pc);
        // An unseen branch has no bias yet; treat the bias as taken
        // (matching the counters' weakly-taken start).
        const bool bias =
            biasValid[bias_index] ? biasBit[bias_index] != 0 : true;
        return counters.predictTaken(counterIndexFor(pc)) == bias;
    }

    /** Devirtualized hot path: the state transition of update(). */
    void
    updateFast(std::uint64_t pc, bool taken)
    {
        const std::size_t bias_index = biasIndexFor(pc);
        if (!biasValid[bias_index]) {
            // First encounter fixes the biasing bit to the outcome.
            biasValid[bias_index] = 1;
            biasBit[bias_index] = taken ? 1 : 0;
        }
        const bool bias = biasBit[bias_index] != 0;
        counters.update(counterIndexFor(pc), taken == bias);
        history.push(taken);
    }

    /** Fused hot path: predict + update sharing one set of lookups;
     *  bit-identical to predictFast() then updateFast(). The
     *  prediction uses the pre-update bias (default taken for an
     *  unseen branch); the counter trains against the post-capture
     *  bias, exactly as the split path does. */
    bool
    stepFast(std::uint64_t pc, bool taken)
    {
        const std::size_t bias_index = biasIndexFor(pc);
        const std::size_t index = counterIndexFor(pc);
        const bool old_bias =
            biasValid[bias_index] ? biasBit[bias_index] != 0 : true;
        const bool prediction = counters.predictTaken(index) == old_bias;
        if (!biasValid[bias_index]) {
            biasValid[bias_index] = 1;
            biasBit[bias_index] = taken ? 1 : 0;
        }
        const bool bias = biasBit[bias_index] != 0;
        counters.update(index, taken == bias);
        history.push(taken);
        return prediction;
    }

    const AgreeConfig &config() const { return cfg; }

    /** Mutable SoA views for the SIMD bank (sim/simd/simd_bank.cc),
     *  which copies counters, biasing bits and history into vector
     *  lane state and back. */
    CounterTable &tableRef() { return counters; }
    HistoryRegister &historyRef() { return history; }
    std::vector<std::uint16_t> &biasBitRef() { return biasBit; }
    std::vector<std::uint16_t> &biasValidRef() { return biasValid; }

  private:
    std::size_t
    counterIndexFor(std::uint64_t pc) const
    {
        const std::uint64_t address = pcIndexBits(pc, cfg.indexBits);
        return static_cast<std::size_t>(address ^ history.value());
    }

    std::size_t
    biasIndexFor(std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            pcIndexBits(pc, cfg.biasIndexBits));
    }

    AgreeConfig cfg;
    HistoryRegister history;
    CounterTable counters;
    /** Biasing bit per entry plus a valid bit (first-use capture).
     *  uint16 rather than uint8 for the same aliasing reason as
     *  CounterTable: unsigned-char stores would defeat type-based
     *  alias analysis in the inlined replay kernel. */
    std::vector<std::uint16_t> biasBit;
    std::vector<std::uint16_t> biasValid;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_AGREE_HH
