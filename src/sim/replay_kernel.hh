/**
 * @file
 * The devirtualized batched replay kernel.
 *
 * replayKernel() is the hot loop of the project: it streams a
 * PackedTrace (contiguous pc array + taken bitmap, conditionals only)
 * through a *concrete* predictor type, so every predict/update call
 * inlines instead of going through the BranchPredictor vtable, and
 * the taken bitmap is loaded one 64-branch word at a time.
 * replayKernelBank() is its multi-configuration form: one trace pass
 * steps a contiguous bank of same-kind instances, which is how
 * campaign jobs sharing a trace are fused (campaign/campaign.cc).
 *
 * Bit-identity contract: for any predictor P and trace T,
 * replayKernel(P, pack(T)) and simulate(P, T) must produce identical
 * branches/mispredictions/takenBranches and leave P in the identical
 * state. The kernel leans on two invariants of the virtual loop:
 *
 *  - predictDetailed() is const and side-effect-free, so warm-up
 *    records (whose predictions are discarded) can skip prediction
 *    entirely and only train;
 *  - none of the kernel-eligible predictor kinds override
 *    observeTarget(), so the target-observation call is omitted.
 *
 * tests/sim/test_replay.cc enforces the contract for every
 * factory-constructible spec.
 */

#ifndef BPSIM_SIM_REPLAY_KERNEL_HH
#define BPSIM_SIM_REPLAY_KERNEL_HH

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/probe.hh"
#include "sim/simd/kernel_tier.hh"
#include "sim/simd/simd_bank.hh"
#include "sim/simulator.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{

/** Taken outcomes in trace positions [from, to) — the bitmap span's
 *  population count, lane-independent by definition. */
inline std::uint64_t
countTakenInRange(const PackedTrace &packed, std::size_t from,
                  std::size_t to)
{
    std::uint64_t taken = 0;
    for (std::size_t i = from; i < to;) {
        const std::size_t word_index = i / PackedTrace::kWordBits;
        const std::size_t word_end = std::min(
            to, (word_index + 1) * PackedTrace::kWordBits);
        const std::uint64_t word = packed.takenWord(word_index) >>
                                   (i % PackedTrace::kWordBits);
        const std::size_t consumed = word_end - i;
        const std::uint64_t mask =
            consumed >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << consumed) - 1;
        taken += static_cast<std::uint64_t>(std::popcount(word & mask));
        i = word_end;
    }
    return taken;
}

/**
 * Replays @p packed through @p predictor using its non-virtual
 * predictFast()/updateFast() methods.
 *
 * @tparam Pred a concrete predictor type providing
 *         `void updateFast(std::uint64_t pc, bool taken)` (the state
 *         transition of its virtual update()) and
 *         `bool stepFast(std::uint64_t pc, bool taken)` (fused
 *         predict + update sharing one set of table lookups,
 *         bit-identical to predict-then-update).
 * @tparam Probe per-branch accounting sink (sim/probe.hh); the
 *         default NullProbe instantiates the exact unprobed loop.
 *         The probe sees every *measured* branch (warm-up records
 *         are never recorded, matching the virtual loop's
 *         per-branch collection).
 */
template <typename Pred, typename Probe = NullProbe>
SimResult
replayKernel(Pred &predictor, const PackedTrace &packed,
             const SimConfig &config = {}, Probe probe = {})
{
    SimResult result;
    result.predictorName = predictor.name();
    result.counterBits = predictor.counterBits();
    result.storageBits = predictor.storageBits();

    const std::size_t total = packed.size();
    const std::uint64_t *pcs = packed.pcData();
    const std::size_t warmup = static_cast<std::size_t>(
        std::min<std::uint64_t>(config.warmupBranches, total));

    const auto start = std::chrono::steady_clock::now();

    // Warm-up records train the predictor but are excluded from the
    // statistics. Predictions are side-effect-free, so skipping them
    // here leaves the predictor in the same state as the virtual loop.
    for (std::size_t i = 0; i < warmup; ++i)
        predictor.updateFast(pcs[i], packed.taken(i));

    // Measured region: stream the taken bitmap one 64-branch word at
    // a time, shifting outcomes out of a register instead of
    // re-indexing the bitmap per branch.
    std::uint64_t mispredictions = 0;
    std::uint64_t taken_branches = 0;
    std::size_t i = warmup;
    while (i < total) {
        const std::size_t word_index = i / PackedTrace::kWordBits;
        const std::size_t word_end = std::min(
            total, (word_index + 1) * PackedTrace::kWordBits);
        std::uint64_t word =
            packed.takenWord(word_index) >> (i % PackedTrace::kWordBits);
        for (; i < word_end; ++i, word >>= 1) {
            const std::uint64_t pc = pcs[i];
            const bool taken = (word & 1) != 0;
            const bool mispredicted =
                predictor.stepFast(pc, taken) != taken;
            mispredictions += static_cast<std::uint64_t>(mispredicted);
            taken_branches += static_cast<std::uint64_t>(taken);
            probe.record(i, mispredicted);
        }
    }

    result.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    result.branches = total - warmup;
    result.mispredictions = mispredictions;
    result.takenBranches = taken_branches;
    return result;
}

/**
 * Banked multi-configuration replay: one trace pass drives a whole
 * vector of same-kind predictor instances.
 *
 * The campaign workloads this project exists for are "many
 * configurations over one trace" — a size ladder or an exhaustive
 * history sweep replays the identical packed pc array and taken
 * bitmap once per rung. replayKernelBank() eliminates that
 * redundancy: the trace is streamed a single time in 64-branch
 * blocks, each block's pcs and outcome word feeding every instance
 * in the bank while they are L1-hot, regardless of how many
 * configurations ride along. Within a block the lanes run
 * lane-major (see the loop comment below), so each lane's hot state
 * lives in registers for the whole block.
 *
 * Bit-identity contract: lane i of replayKernelBank(bank, packed,
 * config) must produce exactly the counts of replayKernel(bank[i],
 * packed, config) run alone, and leave bank[i] in the identical
 * state. This holds by construction — each lane runs the same
 * stepFast()/updateFast() sequence it would run alone — and is
 * enforced for every fast-replay kind by
 * tests/sim/test_replay_bank.cc.
 *
 * Timing: only the whole pass is timeable; each lane's wallNanos is
 * the pass time divided by the lane count and its fusedLanes field
 * records the bank width (see SimResult::wallNanos).
 *
 * @tparam BankProbe per-lane accounting sink (sim/probe.hh); the
 *         default NullBankProbe instantiates the exact unprobed
 *         pass. Probed SIMD runs scatter-add into a per-lane uint32
 *         arena (SimdBankProbe) merged into the bank probe's uint64
 *         blocks after the pass; shapes the 32-bit sink cannot
 *         express run the probed scalar bank instead (logged once
 *         per process, detail::logProbedBankFallback()).
 */
template <typename Pred, typename BankProbe = NullBankProbe>
std::vector<SimResult>
replayKernelBank(std::vector<Pred> &bank, const PackedTrace &packed,
                 const SimConfig &config = {}, BankProbe probe = {})
{
    const std::size_t lanes = bank.size();
    std::vector<SimResult> results(lanes);
    if (lanes == 0)
        return results;
    // One lane degenerates to the single kernel — same loop, and the
    // exact (undivided, unflagged) timing semantics.
    if (lanes == 1) {
        results[0] = replayKernel(bank[0], packed, config,
                                  probe.lane(0));
        return results;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        results[l].predictorName = bank[l].name();
        results[l].counterBits = bank[l].counterBits();
        results[l].storageBits = bank[l].storageBits();
    }

    const std::size_t total = packed.size();
    const std::uint64_t *pcs = packed.pcData();
    const std::size_t warmup = static_cast<std::size_t>(
        std::min<std::uint64_t>(config.warmupBranches, total));

    // Vectorized tiers: flatten the bank into SoA lane state and
    // step 4/8/16 lanes per instruction (sim/simd/). Bit-identity
    // with the scalar loop below holds by construction — lanes are
    // the vector axis, branches stay serial (see simd_kernel.hh) —
    // and is enforced per tier by tests/sim/test_replay_bank.cc.
    // Banks the flattening cannot express (ineligible kind, oversize
    // arena) fall through to the scalar loop.
    const KernelTier tier = resolveKernelTier(config.kernelTier);
    if (tier != KernelTier::Scalar) {
        if (std::optional<SimdBankState> simd = buildSimdBank(bank)) {
            // Probed runs need the per-lane uint32 misprediction
            // arena on top of the counter arenas; shapes it cannot
            // express (overlong trace, oversize probe arena) fall
            // through to the probed scalar bank.
            SimdBankProbe simdProbe;
            SimdBankProbe *probePtr = nullptr;
            bool probeReady = true;
            if constexpr (BankProbe::kEnabled) {
                if (buildSimdBankProbe(simdProbe, probe.ids,
                                       probe.staticCount, *simd,
                                       total)) {
                    probePtr = &simdProbe;
                } else {
                    probeReady = false;
                    detail::logProbedBankFallback(
                        bank.front().name(),
                        "per-branch probe arena exceeds the 32-bit "
                        "sink");
                }
            }
            const auto simd_start = std::chrono::steady_clock::now();
            if (probeReady &&
                runSimdBank(*simd, tier, pcs, packed.wordData(), total,
                            warmup, probePtr)) {
                const std::uint64_t simd_nanos =
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            simd_start)
                            .count());
                storeSimdBank(*simd, bank);
                if constexpr (BankProbe::kEnabled) {
                    // Widen the pass's uint32 counters into the
                    // probe's per-lane uint64 blocks.
                    for (std::size_t l = 0; l < lanes; ++l) {
                        const std::uint32_t *src =
                            simdProbe.arena.data() +
                            simdProbe.laneBase[l];
                        std::uint64_t *dst =
                            probe.lane(l).misses;
                        for (std::size_t k = 0;
                             k < simdProbe.staticCount; ++k)
                            dst[k] += src[k];
                    }
                }
                const std::uint64_t taken_branches =
                    countTakenInRange(packed, warmup, total);
                for (std::size_t l = 0; l < lanes; ++l) {
                    results[l].branches = total - warmup;
                    results[l].mispredictions =
                        simd->mispredictions[l];
                    results[l].takenBranches = taken_branches;
                    results[l].wallNanos =
                        (simd_nanos + lanes / 2) / lanes;
                    results[l].fusedLanes =
                        static_cast<std::uint32_t>(lanes);
                    results[l].kernelTier = tier;
                }
                return results;
            }
            if (probeReady) {
                // The resolved tier has no backend in this binary
                // (shouldn't happen — resolution checks
                // availability); the scalar loop below is always a
                // correct answer.
                detail::logSimdBankFallback(
                    bank.front().name(),
                    "resolved tier has no backend in this binary");
                if constexpr (BankProbe::kEnabled) {
                    detail::logProbedBankFallback(
                        bank.front().name(),
                        "resolved tier has no backend in this binary");
                }
            }
        } else if constexpr (BankProbe::kEnabled) {
            // buildSimdBank() already logged the generic fallback;
            // mirror it on the probed channel so per-branch users
            // see which path produced their counts.
            detail::logProbedBankFallback(
                bank.front().name(),
                "bank shape has no SIMD flattening");
        }
    }

    Pred *lane = bank.data();
    std::vector<std::uint64_t> lane_mispredictions(lanes, 0);
    std::uint64_t *mispredictions = lane_mispredictions.data();

    const auto start = std::chrono::steady_clock::now();

    // Lane-major within 64-branch blocks: the trace is still streamed
    // once (each block's pcs and taken word are L1-hot while every
    // lane consumes them), but each lane runs a whole block before
    // the next lane is touched. Branch-major order would force every
    // lane's hot state (history register, table base pointer) back
    // through memory on each branch — the stores of the other lanes'
    // steps could alias them; lane-major keeps that state in
    // registers for 64 consecutive steps, which is where the fused
    // path's speedup over per-job passes comes from. Lanes are
    // independent, so reordering steps across lanes cannot change any
    // lane's result.
    std::size_t i = 0;
    while (i < warmup) {
        const std::size_t word_index = i / PackedTrace::kWordBits;
        const std::size_t block_end = std::min(
            warmup, (word_index + 1) * PackedTrace::kWordBits);
        const std::uint64_t block_word =
            packed.takenWord(word_index) >> (i % PackedTrace::kWordBits);
        for (std::size_t l = 0; l < lanes; ++l) {
            std::uint64_t word = block_word;
            for (std::size_t j = i; j < block_end; ++j, word >>= 1)
                lane[l].updateFast(pcs[j], (word & 1) != 0);
        }
        i = block_end;
    }

    // Measured-region blocks span several bitmap words so each lane
    // turn covers enough branches to amortize its state reload; the
    // block still fits comfortably in L1 (kBlockWords * 64 pcs = 4 KiB
    // plus the bitmap words).
    constexpr std::size_t kBlockWords = 8;
    constexpr std::size_t kBlockBranches =
        kBlockWords * PackedTrace::kWordBits;
    std::uint64_t taken_branches = 0;
    while (i < total) {
        const std::size_t block_end =
            std::min(total, (i / kBlockBranches + 1) * kBlockBranches);
        for (std::size_t l = 0; l < lanes; ++l) {
            const auto laneProbe = probe.lane(l);
            std::uint64_t missed = 0;
            std::size_t j = i;
            while (j < block_end) {
                const std::size_t word_index = j / PackedTrace::kWordBits;
                const std::size_t word_end = std::min(
                    block_end,
                    (word_index + 1) * PackedTrace::kWordBits);
                std::uint64_t word = packed.takenWord(word_index) >>
                                     (j % PackedTrace::kWordBits);
                for (; j < word_end; ++j, word >>= 1) {
                    const bool taken = (word & 1) != 0;
                    const bool mispredicted =
                        lane[l].stepFast(pcs[j], taken) != taken;
                    missed += static_cast<std::uint64_t>(mispredicted);
                    laneProbe.record(j, mispredicted);
                }
            }
            mispredictions[l] += missed;
        }
        // The block's taken count is lane-independent: popcount of
        // the bitmap span actually consumed.
        for (std::size_t j = i; j < block_end;) {
            const std::size_t word_index = j / PackedTrace::kWordBits;
            const std::size_t word_end = std::min(
                block_end, (word_index + 1) * PackedTrace::kWordBits);
            const std::uint64_t word = packed.takenWord(word_index) >>
                                       (j % PackedTrace::kWordBits);
            const std::size_t consumed = word_end - j;
            const std::uint64_t mask =
                consumed >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << consumed) - 1;
            taken_branches += static_cast<std::uint64_t>(
                std::popcount(word & mask));
            j = word_end;
        }
        i = block_end;
    }

    const std::uint64_t bank_nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    for (std::size_t l = 0; l < lanes; ++l) {
        results[l].branches = total - warmup;
        results[l].mispredictions = lane_mispredictions[l];
        results[l].takenBranches = taken_branches;
        // Round the per-lane attribution so the reconstructed pass
        // time is off by at most lanes/2 ns instead of always
        // truncating low.
        results[l].wallNanos = (bank_nanos + lanes / 2) / lanes;
        results[l].fusedLanes = static_cast<std::uint32_t>(lanes);
        results[l].kernelTier = KernelTier::Scalar;
    }
    return results;
}

} // namespace bpsim

#endif // BPSIM_SIM_REPLAY_KERNEL_HH
