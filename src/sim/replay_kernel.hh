/**
 * @file
 * The devirtualized batched replay kernel.
 *
 * replayKernel() is the hot loop of the project: it streams a
 * PackedTrace (contiguous pc array + taken bitmap, conditionals only)
 * through a *concrete* predictor type, so every predict/update call
 * inlines instead of going through the BranchPredictor vtable, and
 * the taken bitmap is loaded one 64-branch word at a time.
 *
 * Bit-identity contract: for any predictor P and trace T,
 * replayKernel(P, pack(T)) and simulate(P, T) must produce identical
 * branches/mispredictions/takenBranches and leave P in the identical
 * state. The kernel leans on two invariants of the virtual loop:
 *
 *  - predictDetailed() is const and side-effect-free, so warm-up
 *    records (whose predictions are discarded) can skip prediction
 *    entirely and only train;
 *  - none of the kernel-eligible predictor kinds override
 *    observeTarget(), so the target-observation call is omitted.
 *
 * tests/sim/test_replay.cc enforces the contract for every
 * factory-constructible spec.
 */

#ifndef BPSIM_SIM_REPLAY_KERNEL_HH
#define BPSIM_SIM_REPLAY_KERNEL_HH

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "sim/simulator.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{

/**
 * Replays @p packed through @p predictor using its non-virtual
 * predictFast()/updateFast() methods.
 *
 * @tparam Pred a concrete predictor type providing
 *         `void updateFast(std::uint64_t pc, bool taken)` (the state
 *         transition of its virtual update()) and
 *         `bool stepFast(std::uint64_t pc, bool taken)` (fused
 *         predict + update sharing one set of table lookups,
 *         bit-identical to predict-then-update).
 */
template <typename Pred>
SimResult
replayKernel(Pred &predictor, const PackedTrace &packed,
             const SimConfig &config = {})
{
    SimResult result;
    result.predictorName = predictor.name();
    result.counterBits = predictor.counterBits();
    result.storageBits = predictor.storageBits();

    const std::size_t total = packed.size();
    const std::uint64_t *pcs = packed.pcData();
    const std::size_t warmup = static_cast<std::size_t>(
        std::min<std::uint64_t>(config.warmupBranches, total));

    const auto start = std::chrono::steady_clock::now();

    // Warm-up records train the predictor but are excluded from the
    // statistics. Predictions are side-effect-free, so skipping them
    // here leaves the predictor in the same state as the virtual loop.
    for (std::size_t i = 0; i < warmup; ++i)
        predictor.updateFast(pcs[i], packed.taken(i));

    // Measured region: stream the taken bitmap one 64-branch word at
    // a time, shifting outcomes out of a register instead of
    // re-indexing the bitmap per branch.
    std::uint64_t mispredictions = 0;
    std::uint64_t taken_branches = 0;
    std::size_t i = warmup;
    while (i < total) {
        const std::size_t word_index = i / PackedTrace::kWordBits;
        const std::size_t word_end = std::min(
            total, (word_index + 1) * PackedTrace::kWordBits);
        std::uint64_t word =
            packed.takenWord(word_index) >> (i % PackedTrace::kWordBits);
        for (; i < word_end; ++i, word >>= 1) {
            const std::uint64_t pc = pcs[i];
            const bool taken = (word & 1) != 0;
            const bool prediction = predictor.stepFast(pc, taken);
            mispredictions +=
                static_cast<std::uint64_t>(prediction != taken);
            taken_branches += static_cast<std::uint64_t>(taken);
        }
    }

    result.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    result.branches = total - warmup;
    result.mispredictions = mispredictions;
    result.takenBranches = taken_branches;
    return result;
}

} // namespace bpsim

#endif // BPSIM_SIM_REPLAY_KERNEL_HH
