/**
 * @file
 * The paper's predictor cost ladder.
 *
 * The figures' x-axis is predictor size in K bytes of 2-bit
 * counters, from 0.25 KB to 32 KB in powers of two. A gshare point
 * at 2^n counters costs 2^n/4 bytes; the equal-step bi-mode point
 * uses direction banks one bit narrower, which makes its natural
 * cost 1.5x the next smaller gshare — exactly how the paper plots
 * the curves.
 */

#ifndef BPSIM_SIM_SIZE_LADDER_HH
#define BPSIM_SIM_SIZE_LADDER_HH

#include <cstdint>
#include <vector>

namespace bpsim
{

/** One rung of the evaluation ladder. */
struct SizePoint
{
    /** gshare index width n at this rung (2^n counters). */
    unsigned gshareIndexBits;
    /** bi-mode direction-bank width d at this rung (the next rung
     *  down, giving the 1.5x natural cost). */
    unsigned bimodeDirectionBits;
    /** gshare cost at this rung, in K bytes of 2-bit counters. */
    double gshareKBytes() const;
    /** bi-mode natural cost at this rung, in K bytes. */
    double bimodeKBytes() const;
};

/**
 * The paper's ladder: 0.25, 0.5, 1, 2, 4, 8, 16, 32 K bytes
 * (gshare n = 10..17; bi-mode d = 9..16).
 */
std::vector<SizePoint> paperSizeLadder();

/** A shorter ladder for quick runs: @p first..@p last inclusive
 *  gshare index widths. */
std::vector<SizePoint> sizeLadder(unsigned firstIndexBits,
                                  unsigned lastIndexBits);

} // namespace bpsim

#endif // BPSIM_SIM_SIZE_LADDER_HH
