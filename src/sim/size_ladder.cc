#include "sim/size_ladder.hh"

#include "util/logging.hh"

namespace bpsim
{

double
SizePoint::gshareKBytes() const
{
    // 2^n counters at 2 bits = 2^n / 4 bytes.
    return static_cast<double>(std::uint64_t{1} << gshareIndexBits) /
           4.0 / 1024.0;
}

double
SizePoint::bimodeKBytes() const
{
    // Choice (2^d) + two banks (2 * 2^d) = 3 * 2^d counters.
    return 3.0 * static_cast<double>(std::uint64_t{1} << bimodeDirectionBits)
           / 4.0 / 1024.0;
}

std::vector<SizePoint>
paperSizeLadder()
{
    return sizeLadder(10, 17);
}

std::vector<SizePoint>
sizeLadder(unsigned firstIndexBits, unsigned lastIndexBits)
{
    if (firstIndexBits < 2 || firstIndexBits > lastIndexBits ||
        lastIndexBits > 24) {
        BPSIM_FATAL("bad size ladder range " << firstIndexBits << ".."
                    << lastIndexBits);
    }
    std::vector<SizePoint> ladder;
    for (unsigned n = firstIndexBits; n <= lastIndexBits; ++n)
        ladder.push_back(SizePoint{n, n - 1});
    return ladder;
}

} // namespace bpsim
