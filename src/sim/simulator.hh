/**
 * @file
 * The trace-driven simulation loop and its result type.
 */

#ifndef BPSIM_SIM_SIMULATOR_HH
#define BPSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/simd/kernel_tier.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/** Simulation options. */
struct SimConfig
{
    /** Records at the head of the trace that train the predictor but
     *  are excluded from the accuracy statistics. The paper measures
     *  whole traces (0); warm-up is available for sensitivity runs. */
    std::uint64_t warmupBranches = 0;
    /** Collect per-static-branch execution/misprediction counts. */
    bool trackPerBranch = false;
    /** Replay-kernel backend for banked passes; Auto defers to the
     *  process-wide selection (--kernel-tier, BPSIM_KERNEL_TIER, CPU
     *  detection — see sim/simd/kernel_tier.hh). Counts never depend
     *  on it: every tier is bit-identical to the scalar oracle. */
    KernelTier kernelTier = KernelTier::Auto;
};

/** Per-static-branch outcome of a simulation. */
struct PerBranchResult
{
    std::uint64_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t takenCount = 0;
};

/** Outcome of one predictor-on-trace run. */
struct SimResult
{
    std::string predictorName;
    /** Benchmark the trace came from, when the harness knows it
     *  (campaign runs always fill it; plain simulate() leaves it
     *  empty). Makes a serialized result self-describing. */
    std::string benchmark;
    /** Factory configuration string the predictor was built from,
     *  when the harness knows it. */
    std::string configText;
    /** Paper-convention cost (bits in prediction counters). */
    std::uint64_t counterBits = 0;
    /** Full state cost. */
    std::uint64_t storageBits = 0;
    /** Measured conditional branches (after warm-up). */
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t takenBranches = 0;
    /** Wall-clock time of the replay loop, in nanoseconds. Timing is
     *  machine-dependent, so it is excluded from serialization unless
     *  explicitly requested (see toJson()).
     *
     *  Fused-replay semantics: when this result came out of a banked
     *  multi-configuration pass (sim/replay_kernel.hh,
     *  replayKernelBank()), the bank replays the trace once for all
     *  lanes and only the whole pass is timeable. wallNanos then
     *  holds the bank's wall time divided by fusedLanes — an
     *  *approximate attribution* (per-lane costs inside one pass are
     *  not separable), chosen so that summing wallNanos across the
     *  bank's results reconstructs the measured pass time and
     *  branchesPerSec() reports each lane's share of the fused
     *  throughput. Results timed alone keep exact semantics and
     *  fusedLanes == 0. */
    std::uint64_t wallNanos = 0;
    /** Lane count of the banked replay pass this result shared, or 0
     *  when the run was timed alone (see wallNanos). */
    std::uint32_t fusedLanes = 0;
    /** Kernel backend that produced the counts (Scalar for the
     *  virtual loop, the solo kernel and the scalar bank). Purely
     *  informational — counts are tier-invariant — and serialized
     *  only with the timing fields, which are what it explains. */
    KernelTier kernelTier = KernelTier::Scalar;
    /** Per-branch details when SimConfig::trackPerBranch is set,
     *  sorted by descending execution count. */
    std::vector<PerBranchResult> perBranch;

    /** Misprediction rate in percent. */
    double mispredictionRate() const;

    /** Prediction accuracy in percent. */
    double accuracy() const { return 100.0 - mispredictionRate(); }

    /** Cost in the paper's x-axis unit (K bytes of counters). */
    double counterKBytes() const;

    /** Replay throughput (0 when no timing was captured). */
    double branchesPerSec() const;

    /**
     * Writes the result as one JSON object — the single place that
     * defines the serialized form (campaign emitters and any future
     * exporters all call this). Per-branch detail is emitted as a
     * "perBranch" array only when the run collected it, so output of
     * untracked runs is byte-identical to before the probe layer.
     * Timing fields are emitted only when @p withTiming is set, so
     * default output stays deterministic across machines and runs.
     */
    void toJson(std::ostream &os, bool withTiming = false) const;
};

/**
 * Runs @p predictor over @p trace (which is rewound first).
 * Non-conditional records train nothing and are skipped, matching
 * the paper's conditional-branch-only statistics.
 */
SimResult simulate(BranchPredictor &predictor, TraceReader &trace,
                   const SimConfig &config = {});

} // namespace bpsim

#endif // BPSIM_SIM_SIMULATOR_HH
