/**
 * @file
 * Replay-path dispatch: one entry point that picks the fastest
 * bit-identical way to run a predictor over a trace.
 *
 * simulateAny() routes a run to the devirtualized replay kernel
 * (sim/replay_kernel.hh) when the predictor's concrete type has one
 * and the run does not need per-branch tracking; everything else
 * falls back to the virtual simulate() loop. Callers never need to
 * know which path was taken — results are bit-identical by contract.
 *
 * The kind classification lives in core/factory
 * (hasFastReplay()); this dispatcher lives in sim because it depends
 * on the simulation loop, which core must not.
 */

#ifndef BPSIM_SIM_REPLAY_HH
#define BPSIM_SIM_REPLAY_HH

#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "trace/packed_trace.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/**
 * Runs @p predictor over one benchmark trace by the fastest
 * bit-identical path.
 *
 * @param predictor the predictor to drive (any kind)
 * @param trace rewindable reader for the virtual fallback path
 * @param packed packed form of the same trace, or null to force the
 *        virtual path (e.g. when no PackedTrace has been built)
 * @param config simulation options; trackPerBranch forces the
 *        virtual path because the kernel does not collect
 *        per-branch detail
 *
 * @pre @p packed, when non-null, must be built from the same records
 *      @p trace yields — the dispatcher cannot check this.
 */
SimResult simulateAny(BranchPredictor &predictor, TraceReader &trace,
                      const PackedTrace *packed,
                      const SimConfig &config = {});

} // namespace bpsim

#endif // BPSIM_SIM_REPLAY_HH
