/**
 * @file
 * Replay-path dispatch: one entry point that picks the fastest
 * bit-identical way to run a predictor over a trace.
 *
 * simulateAny() routes a run to the devirtualized replay kernel
 * (sim/replay_kernel.hh) when the predictor's concrete type has one;
 * everything else falls back to the virtual simulate() loop. Runs
 * that ask for per-branch detail (SimConfig::trackPerBranch) take the
 * same kernel with a PerBranchProbe (sim/probe.hh) instead of being
 * forced onto the virtual path. Callers never need to know which path
 * was taken — results, including the per-branch table, are
 * bit-identical by contract.
 *
 * The kind classification lives in core/factory
 * (hasFastReplay()); this dispatcher lives in sim because it depends
 * on the simulation loop, which core must not.
 */

#ifndef BPSIM_SIM_REPLAY_HH
#define BPSIM_SIM_REPLAY_HH

#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "trace/packed_trace.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/**
 * Runs @p predictor over one benchmark trace by the fastest
 * bit-identical path.
 *
 * @param predictor the predictor to drive (any kind)
 * @param trace rewindable reader for the virtual fallback path
 * @param packed packed form of the same trace, or null to force the
 *        virtual path (e.g. when no PackedTrace has been built)
 * @param config simulation options; trackPerBranch runs the kernel
 *        with a per-branch probe and fills SimResult::perBranch
 *
 * @pre @p packed, when non-null, must be built from the same records
 *      @p trace yields — the dispatcher cannot check this.
 */
SimResult simulateAny(BranchPredictor &predictor, TraceReader &trace,
                      const PackedTrace *packed,
                      const SimConfig &config = {});

/**
 * Banked replay of a same-kind predictor group: one pass over
 * @p packed steps every instance (sim/replay_kernel.hh,
 * replayKernelBank()), bit-identical per instance to a lone
 * replayKernel() run.
 *
 * The instances' state is moved into a contiguous bank for the pass
 * and moved back afterwards, so on success each predictors[i] holds
 * exactly the state a solo run would have left and results[i] its
 * counts (with the shared-pass timing attribution described at
 * SimResult::wallNanos).
 *
 * @param kind the factory kind every instance was built from; must
 *        be a fastReplayKind() (core/factory.hh)
 * @param predictors the group, all non-null and all of @p kind
 * @return true when the bank ran; false when @p kind has no bank
 *         kernel or an instance is not of that concrete type — the
 *         group is then untouched and the caller falls back to
 *         per-instance simulateAny()
 */
bool replayKernelBankAny(const std::string &kind,
                         const std::vector<BranchPredictor *> &predictors,
                         const PackedTrace &packed,
                         const SimConfig &config,
                         std::vector<SimResult> &results);

} // namespace bpsim

#endif // BPSIM_SIM_REPLAY_HH
