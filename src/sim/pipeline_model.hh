/**
 * @file
 * First-order pipeline impact model.
 *
 * The paper's introduction motivates predictors by the pipeline
 * bubbles mispredictions cause; this model turns misprediction rates
 * into estimated CPI and speedup the way 1990s papers did:
 *
 *   CPI = CPI_base + f_branch * mispredict_rate * penalty
 *
 * with f_branch the conditional-branch fraction of the instruction
 * stream and penalty the refill depth in cycles (defaults roughly
 * match a 4-wide OoO core of the era: Alpha 21264-class).
 */

#ifndef BPSIM_SIM_PIPELINE_MODEL_HH
#define BPSIM_SIM_PIPELINE_MODEL_HH

namespace bpsim
{

/** Machine parameters of the first-order model. */
struct PipelineModel
{
    /** CPI with perfect branch prediction. */
    double baseCpi = 0.5;
    /** Conditional branches per instruction. */
    double branchFraction = 0.16;
    /** Cycles lost per misprediction (redirect + refill). */
    double mispredictPenaltyCycles = 7.0;

    /** Estimated CPI at a misprediction rate given in percent. */
    double cpiAt(double mispredictRatePercent) const;

    /** Estimated IPC at a misprediction rate given in percent. */
    double ipcAt(double mispredictRatePercent) const;

    /**
     * Speedup (in percent) of running at @p improvedRatePercent
     * instead of @p baseRatePercent.
     */
    double speedupPercent(double baseRatePercent,
                          double improvedRatePercent) const;
};

} // namespace bpsim

#endif // BPSIM_SIM_PIPELINE_MODEL_HH
