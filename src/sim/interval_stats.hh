/**
 * @file
 * Learning-curve measurement: misprediction rate per fixed-size
 * interval of the trace.
 *
 * Trace-driven accuracy numbers hide the predictor's warm-up; the
 * interval series exposes it (how fast each scheme converges, and
 * whether phase changes in the workload knock it off). Used by the
 * learning_curve example and by the warm-up sensitivity checks.
 */

#ifndef BPSIM_SIM_INTERVAL_STATS_HH
#define BPSIM_SIM_INTERVAL_STATS_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"
#include "trace/trace_source.hh"

namespace bpsim
{

/** Misprediction time series at fixed intervals. */
struct IntervalSeries
{
    std::uint64_t intervalLength = 0;
    /** Misprediction percentage of each full interval, in order; a
     *  trailing partial interval is dropped. */
    std::vector<double> mispredictPercent;
    /** Whole-run misprediction percentage (all records). */
    double overallPercent = 0.0;

    /** Mean of the last @p n intervals (steady-state estimate). */
    double steadyStatePercent(std::size_t n = 4) const;

    /** First interval whose rate is within @p slackPercent points of
     *  the steady state; the series size if never. */
    std::size_t warmupIntervals(double slackPercent = 1.0) const;
};

/**
 * Runs @p predictor (reset first) over @p trace (rewound first),
 * collecting per-interval misprediction rates.
 *
 * @param intervalLength conditional branches per interval (>= 1)
 */
IntervalSeries measureIntervals(BranchPredictor &predictor,
                                TraceReader &trace,
                                std::uint64_t intervalLength);

} // namespace bpsim

#endif // BPSIM_SIM_INTERVAL_STATS_HH
