#include "sim/simulator.hh"

#include <algorithm>
#include <ostream>

#include "util/json.hh"

namespace bpsim
{

double
SimResult::mispredictionRate() const
{
    if (branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(mispredictions) /
           static_cast<double>(branches);
}

double
SimResult::counterKBytes() const
{
    return static_cast<double>(counterBits) / 8.0 / 1024.0;
}

void
SimResult::toJson(std::ostream &os) const
{
    os << "{\"benchmark\":" << jsonString(benchmark)
       << ",\"config\":" << jsonString(configText)
       << ",\"predictor\":" << jsonString(predictorName)
       << ",\"counterBits\":" << counterBits
       << ",\"storageBits\":" << storageBits
       << ",\"branches\":" << branches
       << ",\"mispredictions\":" << mispredictions
       << ",\"takenBranches\":" << takenBranches
       << ",\"mispredictionRate\":" << jsonNumber(mispredictionRate())
       << ",\"counterKBytes\":" << jsonNumber(counterKBytes()) << "}";
}

SimResult
simulate(BranchPredictor &predictor, TraceReader &trace,
         const SimConfig &config)
{
    SimResult result;
    result.predictorName = predictor.name();
    result.counterBits = predictor.counterBits();
    result.storageBits = predictor.storageBits();

    std::unordered_map<std::uint64_t, PerBranchResult> per_branch;

    trace.rewind();
    BranchRecord record;
    std::uint64_t seen = 0;
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const bool prediction = predictor.predict(record.pc);
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
        ++seen;
        if (seen <= config.warmupBranches)
            continue;

        ++result.branches;
        if (record.taken)
            ++result.takenBranches;
        const bool mispredicted = prediction != record.taken;
        if (mispredicted)
            ++result.mispredictions;
        if (config.trackPerBranch) {
            PerBranchResult &entry = per_branch[record.pc];
            entry.pc = record.pc;
            ++entry.executions;
            if (record.taken)
                ++entry.takenCount;
            if (mispredicted)
                ++entry.mispredictions;
        }
    }

    if (config.trackPerBranch) {
        result.perBranch.reserve(per_branch.size());
        for (const auto &[pc, entry] : per_branch)
            result.perBranch.push_back(entry);
        std::sort(result.perBranch.begin(), result.perBranch.end(),
                  [](const PerBranchResult &a, const PerBranchResult &b) {
                      if (a.executions != b.executions)
                          return a.executions > b.executions;
                      return a.pc < b.pc;
                  });
    }
    return result;
}

} // namespace bpsim
