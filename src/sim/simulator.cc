#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "util/json.hh"

namespace bpsim
{

double
SimResult::mispredictionRate() const
{
    if (branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(mispredictions) /
           static_cast<double>(branches);
}

double
SimResult::counterKBytes() const
{
    return static_cast<double>(counterBits) / 8.0 / 1024.0;
}

double
SimResult::branchesPerSec() const
{
    if (wallNanos == 0)
        return 0.0;
    return static_cast<double>(branches) * 1e9 /
           static_cast<double>(wallNanos);
}

void
SimResult::toJson(std::ostream &os, bool withTiming) const
{
    os << "{\"benchmark\":" << jsonString(benchmark)
       << ",\"config\":" << jsonString(configText)
       << ",\"predictor\":" << jsonString(predictorName)
       << ",\"counterBits\":" << counterBits
       << ",\"storageBits\":" << storageBits
       << ",\"branches\":" << branches
       << ",\"mispredictions\":" << mispredictions
       << ",\"takenBranches\":" << takenBranches
       << ",\"mispredictionRate\":" << jsonNumber(mispredictionRate())
       << ",\"counterKBytes\":" << jsonNumber(counterKBytes());
    if (!perBranch.empty()) {
        os << ",\"perBranch\":[";
        for (std::size_t i = 0; i < perBranch.size(); ++i) {
            const PerBranchResult &b = perBranch[i];
            if (i != 0)
                os << ",";
            os << "{\"pc\":" << b.pc << ",\"executions\":" << b.executions
               << ",\"mispredictions\":" << b.mispredictions
               << ",\"takenCount\":" << b.takenCount << "}";
        }
        os << "]";
    }
    if (withTiming) {
        os << ",\"wallNanos\":" << wallNanos
           << ",\"branchesPerSec\":" << jsonNumber(branchesPerSec())
           << ",\"fusedLanes\":" << fusedLanes
           << ",\"kernelTier\":" << jsonString(kernelTierName(kernelTier));
    }
    os << "}";
}

SimResult
simulate(BranchPredictor &predictor, TraceReader &trace,
         const SimConfig &config)
{
    SimResult result;
    result.predictorName = predictor.name();
    result.counterBits = predictor.counterBits();
    result.storageBits = predictor.storageBits();

    std::unordered_map<std::uint64_t, PerBranchResult> per_branch;
    if (config.trackPerBranch) {
        // Static branch counts are unknown up front (TraceReader::size()
        // is the dynamic record count, when known at all); reserve a
        // capped estimate to avoid the worst of the rehashing.
        per_branch.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
            trace.size().value_or(0), std::uint64_t{1} << 16)));
    }

    trace.rewind();
    BranchRecord record;
    std::uint64_t seen = 0;
    const auto start = std::chrono::steady_clock::now();
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const bool prediction = predictor.predict(record.pc);
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
        ++seen;
        if (seen <= config.warmupBranches)
            continue;

        ++result.branches;
        if (record.taken)
            ++result.takenBranches;
        const bool mispredicted = prediction != record.taken;
        if (mispredicted)
            ++result.mispredictions;
        if (config.trackPerBranch) {
            PerBranchResult &entry = per_branch[record.pc];
            if (entry.executions == 0)
                entry.pc = record.pc;
            ++entry.executions;
            if (record.taken)
                ++entry.takenCount;
            if (mispredicted)
                ++entry.mispredictions;
        }
    }
    result.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    if (config.trackPerBranch) {
        result.perBranch.reserve(per_branch.size());
        for (const auto &[pc, entry] : per_branch)
            result.perBranch.push_back(entry);
        std::sort(result.perBranch.begin(), result.perBranch.end(),
                  [](const PerBranchResult &a, const PerBranchResult &b) {
                      if (a.executions != b.executions)
                          return a.executions > b.executions;
                      return a.pc < b.pc;
                  });
    }
    return result;
}

} // namespace bpsim
