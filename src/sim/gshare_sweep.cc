#include "sim/gshare_sweep.hh"

#include <algorithm>

#include "predictors/gshare.hh"
#include "util/logging.hh"

namespace bpsim
{

const GshareSweepPoint &
GshareSweepResult::best() const
{
    if (points.empty())
        BPSIM_PANIC("empty gshare sweep");
    const auto it = std::min_element(
        points.begin(), points.end(),
        [](const GshareSweepPoint &a, const GshareSweepPoint &b) {
            return a.average < b.average;
        });
    return *it;
}

GshareSweepResult
sweepGshare(unsigned indexBits,
            const std::vector<const MemoryTrace *> &traces,
            unsigned minHistory)
{
    if (traces.empty())
        BPSIM_PANIC("gshare sweep needs at least one trace");
    GshareSweepResult result;
    result.indexBits = indexBits;
    for (unsigned m = minHistory; m <= indexBits; ++m) {
        GshareSweepPoint point;
        point.historyBits = m;
        double total = 0.0;
        for (const MemoryTrace *trace : traces) {
            GsharePredictor predictor(indexBits, m);
            auto reader = trace->reader();
            const SimResult sim = simulate(predictor, reader);
            point.perBenchmark.push_back(sim.mispredictionRate());
            total += sim.mispredictionRate();
        }
        point.average = total / static_cast<double>(traces.size());
        result.points.push_back(std::move(point));
    }
    return result;
}

} // namespace bpsim
