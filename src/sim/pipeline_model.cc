#include "sim/pipeline_model.hh"

#include "util/logging.hh"

namespace bpsim
{

double
PipelineModel::cpiAt(double mispredictRatePercent) const
{
    if (mispredictRatePercent < 0.0 || mispredictRatePercent > 100.0)
        BPSIM_FATAL("misprediction rate " << mispredictRatePercent
                    << "% out of range");
    return baseCpi + branchFraction * (mispredictRatePercent / 100.0) *
                         mispredictPenaltyCycles;
}

double
PipelineModel::ipcAt(double mispredictRatePercent) const
{
    return 1.0 / cpiAt(mispredictRatePercent);
}

double
PipelineModel::speedupPercent(double baseRatePercent,
                              double improvedRatePercent) const
{
    const double base_cpi = cpiAt(baseRatePercent);
    const double improved_cpi = cpiAt(improvedRatePercent);
    return (base_cpi / improved_cpi - 1.0) * 100.0;
}

} // namespace bpsim
