#include "sim/interval_stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace bpsim
{

double
IntervalSeries::steadyStatePercent(std::size_t n) const
{
    if (mispredictPercent.empty())
        return 0.0;
    n = std::min(n, mispredictPercent.size());
    double total = 0.0;
    for (std::size_t i = mispredictPercent.size() - n;
         i < mispredictPercent.size(); ++i)
        total += mispredictPercent[i];
    return total / static_cast<double>(n);
}

std::size_t
IntervalSeries::warmupIntervals(double slackPercent) const
{
    const double steady = steadyStatePercent();
    for (std::size_t i = 0; i < mispredictPercent.size(); ++i) {
        if (mispredictPercent[i] <= steady + slackPercent)
            return i;
    }
    return mispredictPercent.size();
}

IntervalSeries
measureIntervals(BranchPredictor &predictor, TraceReader &trace,
                 std::uint64_t intervalLength)
{
    if (intervalLength == 0)
        BPSIM_FATAL("interval length must be at least 1");

    predictor.reset();
    trace.rewind();

    IntervalSeries series;
    series.intervalLength = intervalLength;

    std::uint64_t in_interval = 0, wrong_in_interval = 0;
    std::uint64_t total = 0, wrong_total = 0;

    BranchRecord record;
    while (trace.next(record)) {
        if (!record.isConditional())
            continue;
        const bool prediction = predictor.predict(record.pc);
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
        const bool mispredicted = prediction != record.taken;
        ++total;
        ++in_interval;
        if (mispredicted) {
            ++wrong_total;
            ++wrong_in_interval;
        }
        if (in_interval == intervalLength) {
            series.mispredictPercent.push_back(
                100.0 * static_cast<double>(wrong_in_interval) /
                static_cast<double>(intervalLength));
            in_interval = 0;
            wrong_in_interval = 0;
        }
    }
    if (total > 0) {
        series.overallPercent = 100.0 *
                                static_cast<double>(wrong_total) /
                                static_cast<double>(total);
    }
    return series;
}

} // namespace bpsim
