#include "sim/replay.hh"

#include <algorithm>
#include <cstdint>

#include "core/registry.hh"
#include "sim/probe.hh"
#include "sim/replay_kernel.hh"
#include "trace/pc_index.hh"

namespace bpsim
{

namespace
{

/**
 * Typed leg of replayKernelBankAny(): casts the group, moves the
 * instances into a contiguous std::vector<Pred> bank, runs the
 * banked kernel, and moves the replayed state back into the callers'
 * objects. The cast pass completes before any move, so a mixed group
 * is rejected without disturbing anyone's state.
 *
 * When the run asks for per-branch detail the bank runs with a
 * PerBranchBankProbe: one PcIndex over the trace serves every lane,
 * each lane accumulates its own misprediction row, and the shared
 * executed/taken counts are joined in per lane afterwards.
 */
template <typename Pred>
bool
runBank(const std::vector<BranchPredictor *> &predictors,
        const PackedTrace &packed, const SimConfig &config,
        std::vector<SimResult> &results)
{
    std::vector<Pred *> typed;
    typed.reserve(predictors.size());
    for (BranchPredictor *predictor : predictors) {
        auto *p = dynamic_cast<Pred *>(predictor);
        if (p == nullptr)
            return false;
        typed.push_back(p);
    }

    std::vector<Pred> bank;
    bank.reserve(typed.size());
    for (Pred *p : typed)
        bank.push_back(std::move(*p));
    if (config.trackPerBranch) {
        const PcIndex index(packed);
        const std::size_t total = packed.size();
        const std::size_t warmup =
            std::min<std::size_t>(config.warmupBranches, total);
        const PcIndex::RangeCounts counts =
            index.countRange(packed, warmup, total);
        std::vector<std::uint64_t> misses(
            index.staticCount() * bank.size(), 0);
        const PerBranchBankProbe probe{index.idData(), misses.data(),
                                       index.staticCount()};
        results = replayKernelBank(bank, packed, config, probe);
        for (std::size_t l = 0; l < results.size(); ++l) {
            results[l].perBranch = assemblePerBranch(
                index, counts, misses.data() + l * index.staticCount());
        }
    } else {
        results = replayKernelBank(bank, packed, config);
    }
    for (std::size_t l = 0; l < typed.size(); ++l)
        *typed[l] = std::move(bank[l]);
    return true;
}

} // namespace

bool
replayKernelBankAny(const std::string &kind,
                    const std::vector<BranchPredictor *> &predictors,
                    const PackedTrace &packed, const SimConfig &config,
                    std::vector<SimResult> &results)
{
    // Registry fold: the banked kernel is instantiated once per
    // fast-replay entry, selected by the group's kind string. A new
    // registry entry with fastReplay set is picked up here (and in
    // simulateAny() below) with no further wiring.
    bool handled = false;
    forEachPredictorEntry([&]<typename Entry>() {
        if constexpr (Entry::fastReplay) {
            if (!handled && kind == Entry::kind) {
                handled = runBank<typename Entry::Predictor>(
                    predictors, packed, config, results);
            }
        }
    });
    return handled;
}

SimResult
simulateAny(BranchPredictor &predictor, TraceReader &trace,
            const PackedTrace *packed, const SimConfig &config)
{
    // One dynamic_cast per *run* (not per branch) selects the
    // concrete kernel instantiation via a registry fold. Entries
    // sharing a C++ type (the two-level taxonomy kinds) resolve to
    // the same instantiation; the first match wins. Per-branch runs
    // take the same kernel with a PerBranchProbe instantiation.
    if (packed) {
        SimResult result;
        bool ran = false;
        forEachPredictorEntry([&]<typename Entry>() {
            if constexpr (Entry::fastReplay) {
                if (ran)
                    return;
                if (auto *p = dynamic_cast<typename Entry::Predictor *>(
                        &predictor)) {
                    if (config.trackPerBranch) {
                        const PcIndex index(*packed);
                        const std::size_t total = packed->size();
                        const std::size_t warmup = std::min<std::size_t>(
                            config.warmupBranches, total);
                        const PcIndex::RangeCounts counts =
                            index.countRange(*packed, warmup, total);
                        std::vector<std::uint64_t> misses(
                            index.staticCount(), 0);
                        const PerBranchProbe probe{index.idData(),
                                                   misses.data()};
                        result = replayKernel(*p, *packed, config, probe);
                        result.perBranch = assemblePerBranch(
                            index, counts, misses.data());
                    } else {
                        result = replayKernel(*p, *packed, config);
                    }
                    ran = true;
                }
            }
        });
        if (ran)
            return result;
    }
    return simulate(predictor, trace, config);
}

} // namespace bpsim
