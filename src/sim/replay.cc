#include "sim/replay.hh"

#include "core/bimode.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/tournament.hh"
#include "predictors/yags.hh"
#include "sim/replay_kernel.hh"

namespace bpsim
{

namespace
{

/**
 * Typed leg of replayKernelBankAny(): casts the group, moves the
 * instances into a contiguous std::vector<Pred> bank, runs the
 * banked kernel, and moves the replayed state back into the callers'
 * objects. The cast pass completes before any move, so a mixed group
 * is rejected without disturbing anyone's state.
 */
template <typename Pred>
bool
runBank(const std::vector<BranchPredictor *> &predictors,
        const PackedTrace &packed, const SimConfig &config,
        std::vector<SimResult> &results)
{
    std::vector<Pred *> typed;
    typed.reserve(predictors.size());
    for (BranchPredictor *predictor : predictors) {
        auto *p = dynamic_cast<Pred *>(predictor);
        if (p == nullptr)
            return false;
        typed.push_back(p);
    }

    std::vector<Pred> bank;
    bank.reserve(typed.size());
    for (Pred *p : typed)
        bank.push_back(std::move(*p));
    results = replayKernelBank(bank, packed, config);
    for (std::size_t l = 0; l < typed.size(); ++l)
        *typed[l] = std::move(bank[l]);
    return true;
}

} // namespace

bool
replayKernelBankAny(const std::string &kind,
                    const std::vector<BranchPredictor *> &predictors,
                    const PackedTrace &packed, const SimConfig &config,
                    std::vector<SimResult> &results)
{
    // Keep this list in sync with simulateAny() below and
    // hasFastReplay() in core/factory.cc.
    if (kind == "bimodal")
        return runBank<BimodalPredictor>(predictors, packed, config,
                                         results);
    if (kind == "gshare")
        return runBank<GsharePredictor>(predictors, packed, config,
                                        results);
    if (kind == "bimode")
        return runBank<BiModePredictor>(predictors, packed, config,
                                        results);
    if (kind == "agree")
        return runBank<AgreePredictor>(predictors, packed, config,
                                       results);
    if (kind == "gskew")
        return runBank<GskewPredictor>(predictors, packed, config,
                                       results);
    if (kind == "yags")
        return runBank<YagsPredictor>(predictors, packed, config,
                                      results);
    if (kind == "tournament")
        return runBank<TournamentPredictor>(predictors, packed, config,
                                            results);
    return false;
}

SimResult
simulateAny(BranchPredictor &predictor, TraceReader &trace,
            const PackedTrace *packed, const SimConfig &config)
{
    // One dynamic_cast per *run* (not per branch) selects the
    // concrete kernel instantiation. Keep this list in sync with
    // hasFastReplay() in core/factory.cc.
    if (packed && !config.trackPerBranch) {
        if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<GsharePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<BiModePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<AgreePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<GskewPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<YagsPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<TournamentPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
    }
    return simulate(predictor, trace, config);
}

} // namespace bpsim
