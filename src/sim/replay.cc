#include "sim/replay.hh"

#include "core/bimode.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/tournament.hh"
#include "predictors/yags.hh"
#include "sim/replay_kernel.hh"

namespace bpsim
{

SimResult
simulateAny(BranchPredictor &predictor, TraceReader &trace,
            const PackedTrace *packed, const SimConfig &config)
{
    // One dynamic_cast per *run* (not per branch) selects the
    // concrete kernel instantiation. Keep this list in sync with
    // hasFastReplay() in core/factory.cc.
    if (packed && !config.trackPerBranch) {
        if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<GsharePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<BiModePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<AgreePredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<GskewPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<YagsPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
        if (auto *p = dynamic_cast<TournamentPredictor *>(&predictor))
            return replayKernel(*p, *packed, config);
    }
    return simulate(predictor, trace, config);
}

} // namespace bpsim
