#include "sim/trace_cache.hh"

#include "util/logging.hh"
#include "workload/generator.hh"

namespace bpsim
{

const MemoryTrace &
TraceCache::traceFor(const WorkloadSpec &spec)
{
    auto it = traces.find(spec.name);
    if (it == traces.end()) {
        BPSIM_INFORM("generating trace for " << spec.name << " ("
                     << spec.dynamicBranches << " branches)");
        it = traces.emplace(spec.name,
                            generateWorkloadTrace(spec)).first;
        dynamicCounts[spec.name] = spec.dynamicBranches;
    } else if (dynamicCounts[spec.name] != spec.dynamicBranches) {
        BPSIM_PANIC("TraceCache: benchmark '" << spec.name
                    << "' requested with two different dynamic counts");
    }
    return it->second;
}

const PackedTrace &
TraceCache::packedFor(const WorkloadSpec &spec)
{
    auto it = packed.find(spec.name);
    if (it == packed.end())
        it = packed.emplace(spec.name, PackedTrace(traceFor(spec))).first;
    return it->second;
}

} // namespace bpsim
