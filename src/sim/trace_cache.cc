#include "sim/trace_cache.hh"

#include <fstream>
#include <sstream>
#include <utility>

#include "trace/codec.hh"
#include "util/logging.hh"
#include "workload/generator.hh"
#include "workload/spec_io.hh"

namespace bpsim
{

namespace
{

/**
 * Salt mixed into every trace fingerprint. Bump when the generator's
 * output changes for an unchanged spec (new behaviour families,
 * different dispatch arithmetic, ...) so stale caches invalidate
 * themselves instead of silently serving old traces.
 */
constexpr unsigned kGeneratorVersion = 1;

} // namespace

std::uint64_t
workloadTraceFingerprint(const WorkloadSpec &spec)
{
    std::ostringstream os;
    writeWorkloadSpec(os, spec);
    os << "generator_version = " << kGeneratorVersion << "\n";
    const std::string text = os.str();
    Fnv1a hash;
    hash.update(reinterpret_cast<const std::uint8_t *>(text.data()),
                text.size());
    return hash.digest();
}

TraceCache::TraceCache(const std::string &storeDirectory)
{
    if (!storeDirectory.empty())
        store = std::make_unique<TraceStore>(storeDirectory);
}

std::uint64_t
TraceCache::fingerprintFor(const WorkloadSpec &spec)
{
    const auto it = fingerprints.find(spec.name);
    if (it != fingerprints.end())
        return it->second;
    const std::uint64_t fingerprint = workloadTraceFingerprint(spec);
    fingerprints.emplace(spec.name, fingerprint);
    return fingerprint;
}

void
TraceCache::rememberSpec(const WorkloadSpec &spec)
{
    // Human-readable provenance sidecar: exactly the text the
    // fingerprint hashed, so a stale cache can be diagnosed by eye.
    // Failures are harmless (the sidecar is never read back).
    const std::string path =
        store->pathFor(spec.name, fingerprintFor(spec), ".spec");
    std::ofstream out(path, std::ios::trunc);
    if (out)
        writeWorkloadSpec(out, spec);
}

const MemoryTrace &
TraceCache::traceFor(const WorkloadSpec &spec)
{
    auto it = traces.find(spec.name);
    if (it != traces.end()) {
        const auto count = dynamicCounts.find(spec.name);
        if (count == dynamicCounts.end() ||
            count->second != spec.dynamicBranches) {
            BPSIM_PANIC("TraceCache: benchmark '" << spec.name
                        << "' requested with two different dynamic "
                        << "counts");
        }
        return *it->second;
    }

    if (store != nullptr) {
        MemoryTrace loaded;
        std::string why;
        const StoreStatus status =
            store->loadTrace(spec.name, fingerprintFor(spec),
                             spec.dynamicBranches, loaded, why);
        if (status == StoreStatus::Loaded) {
            BPSIM_INFORM("loaded cached trace for " << spec.name << " ("
                         << loaded.size() << " branches)");
            ++counters.traceLoads;
            it = traces
                     .emplace(spec.name,
                              std::make_shared<const MemoryTrace>(
                                  std::move(loaded)))
                     .first;
            dynamicCounts[spec.name] = spec.dynamicBranches;
            return *it->second;
        }
        if (status == StoreStatus::Invalid) {
            ++counters.invalidFiles;
            BPSIM_WARN("cached trace for " << spec.name
                       << " rejected (" << why << "); regenerating");
        }
    }

    BPSIM_INFORM("generating trace for " << spec.name << " ("
                 << spec.dynamicBranches << " branches)");
    ++counters.generated;
    it = traces
             .emplace(spec.name, std::make_shared<const MemoryTrace>(
                                     generateWorkloadTrace(spec)))
             .first;
    dynamicCounts[spec.name] = spec.dynamicBranches;

    if (store != nullptr) {
        std::string why;
        if (!store->storeTrace(spec.name, fingerprintFor(spec),
                               *it->second, why))
            BPSIM_WARN("cannot persist trace for " << spec.name << ": "
                       << why);
        rememberSpec(spec);
    }
    return *it->second;
}

const PackedTrace &
TraceCache::packedFor(const WorkloadSpec &spec)
{
    auto it = packed.find(spec.name);
    if (it != packed.end())
        return *it->second;

    if (store != nullptr) {
        PackedTrace loaded;
        std::string why;
        const StoreStatus status = store->loadPacked(
            spec.name, fingerprintFor(spec), loaded, why);
        if (status == StoreStatus::Loaded) {
            // Without call/return records every generated record is
            // conditional, so the packed count is pinned by the spec;
            // a disagreeing file is stale even if self-consistent.
            const bool count_ok =
                spec.emitCallsAndReturns ||
                loaded.size() == spec.dynamicBranches;
            if (count_ok) {
                BPSIM_INFORM("loaded cached packed trace for "
                             << spec.name << " (" << loaded.size()
                             << " conditionals, "
                             << (loaded.isView() ? "zero-copy" : "owned")
                             << ")");
                ++counters.packedLoads;
                it = packed
                         .emplace(spec.name,
                                  std::make_shared<const PackedTrace>(
                                      std::move(loaded)))
                         .first;
                return *it->second;
            }
            ++counters.invalidFiles;
            BPSIM_WARN("cached packed trace for " << spec.name
                       << " holds " << loaded.size()
                       << " records, expected " << spec.dynamicBranches
                       << "; rebuilding");
        } else if (status == StoreStatus::Invalid) {
            ++counters.invalidFiles;
            BPSIM_WARN("cached packed trace for " << spec.name
                       << " rejected (" << why << "); rebuilding");
        }
    }

    ++counters.packedBuilt;
    it = packed
             .emplace(spec.name, std::make_shared<const PackedTrace>(
                                     traceFor(spec)))
             .first;

    if (store != nullptr) {
        std::string why;
        if (!store->storePacked(spec.name, fingerprintFor(spec),
                                *it->second, why))
            BPSIM_WARN("cannot persist packed trace for " << spec.name
                       << ": " << why);
    }
    return *it->second;
}

TraceHandle
TraceCache::handleFor(const WorkloadSpec &spec)
{
    traceFor(spec);
    return TraceHandle(traces.at(spec.name));
}

PackedTraceHandle
TraceCache::packedHandleFor(const WorkloadSpec &spec)
{
    packedFor(spec);
    return PackedTraceHandle(packed.at(spec.name));
}

} // namespace bpsim
