/**
 * @file
 * The paper's gshare.best search (Section 3.1).
 *
 * "To find the best configuration, we exhaustively simulated all
 * pair-wise combinations of history length and address length. ...
 * we present results using the configuration that yields the best
 * accuracy for the average of all the benchmarks studied."
 *
 * At a fixed counter budget 2^n, the pair-wise combinations reduce
 * to the history length m in [0, n] (the remaining n-m index bits
 * are address bits, i.e. 2^(n-m) PHTs). The sweep simulates every m
 * over every benchmark and reports per-m suite averages.
 *
 * Internally the sweep is a campaign grid (campaign/campaign.hh)
 * executed on defaultWorkerCount() worker threads — every m × trace
 * pair is an independent job. All points share one kind ("gshare")
 * and one trace per benchmark, so when the benchmarks carry packed
 * traces the campaign fuses the whole sweep into one banked kernel
 * pass per benchmark (the dominant cost of the fig2/3/4 drivers
 * before fusion was re-streaming each trace once per history
 * length). Results are deterministic at any worker count and
 * identical with or without packed traces. Linking note: the
 * implementation lives in bpsim_campaign, not bpsim_sim.
 */

#ifndef BPSIM_SIM_GSHARE_SWEEP_HH
#define BPSIM_SIM_GSHARE_SWEEP_HH

#include <vector>

#include "campaign/campaign.hh"
#include "sim/simulator.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{

/** One history-length candidate of a sweep. */
struct GshareSweepPoint
{
    unsigned historyBits = 0;
    /** Misprediction rate per benchmark, in the order given. */
    std::vector<double> perBenchmark;
    /** Arithmetic mean across benchmarks (the paper's criterion). */
    double average = 0.0;
};

/** Full result of a sweep at one table size. */
struct GshareSweepResult
{
    unsigned indexBits = 0;
    std::vector<GshareSweepPoint> points;

    /** The point with the lowest average misprediction rate. */
    const GshareSweepPoint &best() const;
};

/**
 * Sweeps gshare history lengths m in [minHistory, indexBits] at a
 * 2^indexBits-counter budget over @p benchmarks, in parallel on the
 * campaign engine's shared worker pool. Benchmarks that carry a
 * packed trace run the whole sweep as one banked replay pass per
 * benchmark (campaign fusion); the others fall back to one virtual
 * replay per point.
 */
GshareSweepResult sweepGshare(unsigned indexBits,
                              const std::vector<BenchmarkTrace> &benchmarks,
                              unsigned minHistory = 0);

/**
 * Convenience overload over bare traces (no packed form, so no
 * fusion — each point replays its trace on the virtual loop).
 * Results are bit-identical to the BenchmarkTrace overload.
 */
GshareSweepResult sweepGshare(unsigned indexBits,
                              const std::vector<const MemoryTrace *> &traces,
                              unsigned minHistory = 0);

} // namespace bpsim

#endif // BPSIM_SIM_GSHARE_SWEEP_HH
