/**
 * @file
 * Benchmark trace cache.
 *
 * The figure sweeps replay each benchmark's trace across dozens of
 * predictor configurations; the cache generates every workload once
 * and hands out readers over the shared in-memory traces.
 *
 * Optionally the cache is backed by a persistent on-disk store
 * (trace/trace_store.hh): generated traces are written out as
 * BBT1 + PBT1 files keyed by benchmark name and generator-spec
 * fingerprint, and later runs load them back — the packed form as a
 * zero-copy mmap view — instead of regenerating. Any validation
 * failure (stale fingerprint, wrong version or size, corrupt
 * payload) silently degrades to regenerate-and-rewrite.
 */

#ifndef BPSIM_SIM_TRACE_CACHE_HH
#define BPSIM_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/packed_trace.hh"
#include "trace/trace_handle.hh"
#include "trace/trace_store.hh"
#include "workload/workload_spec.hh"

namespace bpsim
{

/**
 * Fingerprint of everything that determines a spec's generated
 * trace: the full serialized WorkloadSpec plus a generator version
 * salt (bumped whenever the generator's output changes). Cached
 * files carry this fingerprint; a mismatch means the file was built
 * from a different workload and must be regenerated.
 */
std::uint64_t workloadTraceFingerprint(const WorkloadSpec &spec);

/** Generates benchmark traces on demand and keeps them in memory. */
class TraceCache
{
  public:
    /** Memory-only cache (no persistence). */
    TraceCache() = default;

    /**
     * Cache backed by a persistent store at @p storeDirectory; an
     * empty directory means memory-only. Store failures are never
     * fatal — the cache falls back to generating.
     */
    explicit TraceCache(const std::string &storeDirectory);

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for @p spec, generating it on first use. Keyed by
     * benchmark name; passing two different specs with the same name
     * is a caller error (checked by dynamic count).
     */
    const MemoryTrace &traceFor(const WorkloadSpec &spec);

    /**
     * The SoA compaction of the trace for @p spec, packing it on
     * first use (generating the trace too, if needed). The packed
     * form is what the devirtualized replay kernel streams; campaigns
     * share one per benchmark across all jobs. With a warm store this
     * is served straight from the mmap'd PBT1 file without touching
     * the full trace.
     */
    const PackedTrace &packedFor(const WorkloadSpec &spec);

    /**
     * Shared-ownership handle to the trace of @p spec (generating it
     * like traceFor()). Jobs built on handles stay valid even if
     * they outlive the cache — the service daemon's submission path.
     */
    TraceHandle handleFor(const WorkloadSpec &spec);

    /** Shared-ownership handle to the packed trace of @p spec. */
    PackedTraceHandle packedHandleFor(const WorkloadSpec &spec);

    /** Number of traces resident in memory. */
    std::size_t generatedCount() const { return traces.size(); }

    /** True when backed by a persistent store. */
    bool persistent() const { return store != nullptr; }

    /** Cache-flow counters, mostly for tests and --verbose logs. */
    struct Stats
    {
        /** Traces generated from scratch. */
        std::size_t generated = 0;
        /** Full traces loaded from BBT1 files. */
        std::size_t traceLoads = 0;
        /** Packed traces loaded from PBT1 files. */
        std::size_t packedLoads = 0;
        /** Packed traces built from an in-memory trace. */
        std::size_t packedBuilt = 0;
        /** Cached files rejected by validation (then rewritten). */
        std::size_t invalidFiles = 0;
    };
    const Stats &stats() const { return counters; }

  private:
    std::uint64_t fingerprintFor(const WorkloadSpec &spec);
    void rememberSpec(const WorkloadSpec &spec);

    /** shared_ptr-valued so handleFor()/packedHandleFor() can share
     *  ownership with callers; references handed out by
     *  traceFor()/packedFor() stay stable either way. */
    std::map<std::string, std::shared_ptr<const MemoryTrace>> traces;
    std::map<std::string, std::shared_ptr<const PackedTrace>> packed;
    std::map<std::string, std::uint64_t> dynamicCounts;
    std::map<std::string, std::uint64_t> fingerprints;
    std::unique_ptr<TraceStore> store;
    Stats counters;
};

} // namespace bpsim

#endif // BPSIM_SIM_TRACE_CACHE_HH
