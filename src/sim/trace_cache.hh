/**
 * @file
 * Benchmark trace cache.
 *
 * The figure sweeps replay each benchmark's trace across dozens of
 * predictor configurations; the cache generates every workload once
 * and hands out readers over the shared in-memory traces.
 */

#ifndef BPSIM_SIM_TRACE_CACHE_HH
#define BPSIM_SIM_TRACE_CACHE_HH

#include <map>
#include <string>

#include "trace/memory_trace.hh"
#include "trace/packed_trace.hh"
#include "workload/workload_spec.hh"

namespace bpsim
{

/** Generates benchmark traces on demand and keeps them in memory. */
class TraceCache
{
  public:
    TraceCache() = default;

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for @p spec, generating it on first use. Keyed by
     * benchmark name; passing two different specs with the same name
     * is a caller error (checked by dynamic count).
     */
    const MemoryTrace &traceFor(const WorkloadSpec &spec);

    /**
     * The SoA compaction of the trace for @p spec, packing it on
     * first use (generating the trace too, if needed). The packed
     * form is what the devirtualized replay kernel streams; campaigns
     * share one per benchmark across all jobs.
     */
    const PackedTrace &packedFor(const WorkloadSpec &spec);

    /** Number of traces generated so far. */
    std::size_t generatedCount() const { return traces.size(); }

  private:
    std::map<std::string, MemoryTrace> traces;
    std::map<std::string, PackedTrace> packed;
    std::map<std::string, std::uint64_t> dynamicCounts;
};

} // namespace bpsim

#endif // BPSIM_SIM_TRACE_CACHE_HH
