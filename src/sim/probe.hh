/**
 * @file
 * Compile-time accounting probes for the replay kernels.
 *
 * The replay stack's speed rests on hot loops that touch nothing but
 * predictor state and the trace; any per-branch instrumentation
 * added unconditionally would tax every campaign that never asked
 * for it. Probes resolve that tension at compile time: the kernels
 * (sim/replay_kernel.hh, sim/simd/simd_kernel.hh) take a Probe
 * template parameter whose record() call sits in the measured loop.
 * The default NullProbe's record() is an empty inline function — the
 * instantiation is the exact pre-probe loop, so the unprobed kernels
 * keep their codegen and throughput (bench/perf_replay.cc guards
 * this against BENCH_replay.json). PerBranchProbe is the one real
 * sink: a dense uint64 misprediction counter per static branch,
 * indexed by PcIndex's compact per-record ids — one load and one add
 * per measured branch, no hashing.
 *
 * Probes accumulate only mispredictions. Executions and taken counts
 * per static branch are facts of the trace (lane- and
 * predictor-independent), recovered separately by
 * PcIndex::countRange() over the measured region;
 * assemblePerBranch() joins the two into the SimResult::perBranch
 * rows the virtual loop produces, bit-identically (enforced by
 * tests/sim/test_probe.cc).
 *
 * Bank forms: replayKernelBank() takes a BankProbe whose lane(l)
 * yields the per-lane solo probe, so the scalar bank's lane-major
 * loop records into disjoint per-lane counter blocks. The SIMD tiers
 * use their own runtime sink (SimdBankProbe, sim/simd/simd_bank.hh)
 * merged into the same blocks post-pass.
 */

#ifndef BPSIM_SIM_PROBE_HH
#define BPSIM_SIM_PROBE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "trace/pc_index.hh"

namespace bpsim
{

/** The default probe: records nothing, compiles to nothing. */
struct NullProbe
{
    /** False keeps the kernels' structural probe work (SIMD probe
     *  arenas, fallback logging) out of the instantiation entirely. */
    static constexpr bool kEnabled = false;

    void record(std::size_t /* i */, bool /* mispredicted */) const {}
};

/** Dense per-static-branch misprediction sink for one replay lane. */
struct PerBranchProbe
{
    static constexpr bool kEnabled = true;

    /** Per-record ids, PcIndex::idData() of the replayed trace. */
    const std::uint32_t *ids = nullptr;
    /** One counter per static branch (PcIndex::staticCount()),
     *  zero-initialized by the caller. */
    std::uint64_t *misses = nullptr;

    void
    record(std::size_t i, bool mispredicted) const
    {
        misses[ids[i]] += static_cast<std::uint64_t>(mispredicted);
    }
};

/** Bank form of NullProbe: every lane records nothing. */
struct NullBankProbe
{
    static constexpr bool kEnabled = false;

    NullProbe lane(std::size_t /* l */) const { return {}; }
};

/**
 * Bank form of PerBranchProbe: lane-major misprediction counters,
 * lane l owning misses[l * staticCount .. (l + 1) * staticCount).
 */
struct PerBranchBankProbe
{
    static constexpr bool kEnabled = true;

    /** Per-record ids shared by every lane. */
    const std::uint32_t *ids = nullptr;
    /** lanes * staticCount counters, zero-initialized. */
    std::uint64_t *misses = nullptr;
    std::size_t staticCount = 0;

    PerBranchProbe
    lane(std::size_t l) const
    {
        return {ids, misses + l * staticCount};
    }
};

/**
 * Joins a probe's misprediction counters with the trace-side
 * execution/taken counts into SimResult::perBranch rows: branches
 * that never execute in the measured region are dropped (the virtual
 * loop never sees them) and rows sort by descending executions, then
 * ascending pc — exactly simulate()'s order, so probed and virtual
 * results compare byte-for-byte.
 */
inline std::vector<PerBranchResult>
assemblePerBranch(const PcIndex &index,
                  const PcIndex::RangeCounts &counts,
                  const std::uint64_t *misses)
{
    std::vector<PerBranchResult> rows;
    rows.reserve(index.staticCount());
    for (std::size_t id = 0; id < index.staticCount(); ++id) {
        if (counts.executions[id] == 0)
            continue;
        PerBranchResult row;
        row.pc = index.pcOf(static_cast<std::uint32_t>(id));
        row.executions = counts.executions[id];
        row.takenCount = counts.taken[id];
        row.mispredictions = misses[id];
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const PerBranchResult &a, const PerBranchResult &b) {
                  if (a.executions != b.executions)
                      return a.executions > b.executions;
                  return a.pc < b.pc;
              });
    return rows;
}

} // namespace bpsim

#endif // BPSIM_SIM_PROBE_HH
