#include "sim/simd/simd_bank.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>

#include "core/bimode.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/twolevel.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Gather/scatter element offsets are consumed as *signed* 32-bit
 *  lane values by vpgatherdd and friends, so the whole arena
 *  (including the per-lane stagger gaps) must index below 2^31. */
constexpr std::uint64_t kMaxArenaElements =
    static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max());

/** Arena elements the stagger gaps add for a bank of @p lanes. */
std::uint64_t
staggerElements(std::size_t lanes)
{
    return static_cast<std::uint64_t>(lanes) * kSimdLaneStagger;
}

std::uint32_t
mask32(unsigned bits)
{
    return static_cast<std::uint32_t>(maskBits(bits));
}

/**
 * Sizes the shared per-lane arrays of @p state for @p lanes lanes
 * (padded to the widest group, see SimdBankState) and zero-fills
 * them. Lane constants are filled by the per-kind builders; the
 * padding replication happens afterwards in padLanes().
 */
void
initLaneArrays(SimdBankState &state, std::size_t lanes)
{
    state.lanes = lanes;
    const std::size_t padded =
        (lanes + kMaxSimdGroupLanes - 1) / kMaxSimdGroupLanes *
        kMaxSimdGroupLanes;
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.choiceBase, &state.choiceAddrMask,
          &state.choiceMaxValue, &state.choiceThreshold,
          &state.bankStride, &state.alwaysChoiceMask,
          &state.bothBanksMask, &state.hist}) {
        array->assign(padded, 0);
    }
    state.mispredictions.assign(lanes, 0);
}

/** Replicates lane 0's constants into the padding lanes so padded
 *  vector slots execute a valid (discarded) lane. */
void
padLanes(SimdBankState &state)
{
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.choiceBase, &state.choiceAddrMask,
          &state.choiceMaxValue, &state.choiceThreshold,
          &state.bankStride, &state.alwaysChoiceMask,
          &state.bothBanksMask, &state.hist}) {
        std::fill(array->begin() + state.lanes, array->end(),
                  array->front());
    }
}

/** Appends @p table's counters to the shared arena after a
 *  kSimdLaneStagger gap, recording the lane's base offset and
 *  counter constants. Packs into bit slots or widens one counter
 *  per word according to state.packed. */
void
appendCounters(SimdBankState &state, std::size_t lane,
               const CounterTable &table)
{
    state.maxValue[lane] = table.max();
    state.threshold[lane] = table.max() / 2;
    state.counters.resize(state.counters.size() + kSimdLaneStagger, 0);
    state.laneBase[lane] =
        static_cast<std::uint32_t>(state.counters.size());
    if (!state.packed) {
        state.counters.insert(state.counters.end(), table.data(),
                              table.data() + table.size());
        return;
    }
    // Slot width is the power of two >= the counter width (1..8
    // bits), so slot boundaries follow from plain shift/mask math and
    // a word always holds 4, 8, 16 or 32 whole counters.
    const unsigned slotLog2 = log2Ceil(table.bits());
    const unsigned perWordLog2 = 5 - slotLog2;
    state.wordShift[lane] = perWordLog2;
    state.slotIdxMask[lane] = mask32(perWordLog2);
    state.slotShift[lane] = slotLog2;
    state.fieldMask[lane] = mask32(1u << slotLog2);
    const std::size_t words =
        (table.size() + (std::size_t{1} << perWordLog2) - 1) >>
        perWordLog2;
    state.counters.resize(state.counters.size() + words, 0);
    std::uint32_t *dst = state.counters.data() + state.laneBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        dst[e >> perWordLog2] |=
            static_cast<std::uint32_t>(table.data()[e])
            << ((e & state.slotIdxMask[lane]) << slotLog2);
    }
}

/**
 * Appends a second direction bank directly after @p lane's first
 * (appendCounters() must have run for the lane), recording the word
 * stride between the two banks. Requires state.packed and a table of
 * the same geometry as the first bank, so the lane's slot constants
 * cover both.
 */
void
appendSecondBank(SimdBankState &state, std::size_t lane,
                 const CounterTable &table)
{
    const unsigned perWordLog2 = state.wordShift[lane];
    const unsigned slotLog2 = state.slotShift[lane];
    const std::size_t words =
        (table.size() + (std::size_t{1} << perWordLog2) - 1) >>
        perWordLog2;
    const std::size_t base = state.counters.size();
    state.bankStride[lane] =
        static_cast<std::uint32_t>(base - state.laneBase[lane]);
    state.counters.resize(base + words, 0);
    std::uint32_t *dst = state.counters.data() + base;
    for (std::size_t e = 0; e < table.size(); ++e) {
        dst[e >> perWordLog2] |=
            static_cast<std::uint32_t>(table.data()[e])
            << ((e & state.slotIdxMask[lane]) << slotLog2);
    }
}

/** Appends @p table to the choice arena (one counter per word, see
 *  SimdBankState::choiceArena) after a stagger gap, recording the
 *  lane's choice base and counter constants. */
void
appendChoiceCounters(SimdBankState &state, std::size_t lane,
                     const CounterTable &table)
{
    state.choiceMaxValue[lane] = table.max();
    state.choiceThreshold[lane] = table.max() / 2;
    state.choiceArena.resize(
        state.choiceArena.size() + kSimdLaneStagger, 0);
    state.choiceBase[lane] =
        static_cast<std::uint32_t>(state.choiceArena.size());
    state.choiceArena.insert(state.choiceArena.end(), table.data(),
                             table.data() + table.size());
}

void
restoreChoiceCounters(const SimdBankState &state, std::size_t lane,
                      CounterTable &table)
{
    const std::uint32_t *src =
        state.choiceArena.data() + state.choiceBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e)
        table.data()[e] = static_cast<std::uint16_t>(src[e]);
}

/** Restores a packed table whose lane region starts @p wordOffset
 *  words past laneBase (the bi-mode taken bank at bankStride). */
void
restoreCounters(const SimdBankState &state, std::size_t lane,
                CounterTable &table, std::size_t wordOffset = 0)
{
    const std::uint32_t *src = state.counters.data() +
                               state.laneBase[lane] + wordOffset;
    if (!state.packed) {
        // Counter values fit their (<= 8-bit) saturation value, so
        // the narrowing is lossless.
        for (std::size_t e = 0; e < table.size(); ++e)
            table.data()[e] = static_cast<std::uint16_t>(src[e]);
        return;
    }
    const unsigned perWordLog2 = state.wordShift[lane];
    const unsigned slotLog2 = state.slotShift[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        table.data()[e] = static_cast<std::uint16_t>(
            (src[e >> perWordLog2] >>
             ((e & state.slotIdxMask[lane]) << slotLog2)) &
            state.fieldMask[lane]);
    }
}

} // namespace

namespace detail
{

void
logSimdBankFallback(const std::string &what, const char *reason)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    if (!seen.insert(what + '|' + reason).second)
        return;
    BPSIM_INFORM("SIMD bank fallback: " << what
                 << " runs the scalar bank (" << reason << ")");
}

} // namespace detail

std::optional<SimdBankState>
buildSimdBank(std::vector<BimodalPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (BimodalPredictor &p : bank)
        totalCounters += p.table().size();
    if (totalCounters > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    initLaneArrays(state, bank.size());
    state.counters.reserve(totalCounters);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].table());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        // histShift/histMask/hist stay 0: the history term of the
        // unified index formula degenerates away and the per-branch
        // shift keeps hist at 0.
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<GsharePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (GsharePredictor &p : bank) {
        totalCounters += p.tableRef().size();
        // The constructor caps history at the (<= 28 bit) index
        // width, but the 32-bit lane math is a hard requirement:
        // refuse rather than truncate if that ever loosens.
        if (p.historyBitCount() > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
    }
    if (totalCounters > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        state.histMask[l] = mask32(bank[l].historyBitCount());
        state.hist[l] = static_cast<std::uint32_t>(
            bank[l].historyRef().value());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<TwoLevelPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    const HistoryScope scope = bank.front().config().scope;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalLocal = staggerElements(bank.size());
    for (TwoLevelPredictor &p : bank) {
        const TwoLevelConfig &cfg = p.config();
        // The kernel instantiates one history flavor per bank; a
        // mixed-scope bank (which fusion keys never produce) runs
        // scalar.
        if (cfg.scope != scope) {
            detail::logSimdBankFallback(p.name(),
                                        "mixed history scopes");
            return std::nullopt;
        }
        // Constructors cap historyBits + pcBits at 28 via the table
        // size; enforce the lane-math limits independently.
        if (cfg.historyBits + cfg.pcBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "index wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += p.tableRef().size();
        if (scope == HistoryScope::PerAddress) {
            if (cfg.localEntriesLog2 > 28) {
                detail::logSimdBankFallback(
                    p.name(),
                    "local-history table wider than the lane math");
                return std::nullopt;
            }
            totalLocal += p.localHistoryRef()->entries();
        }
    }
    if (totalCounters > kMaxArenaElements ||
        totalLocal > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.localHistory = scope == HistoryScope::PerAddress;
    state.packed = true;
    initLaneArrays(state, bank.size());
    state.localHist.reserve(totalLocal);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        const TwoLevelConfig &cfg = bank[l].config();
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(cfg.pcBits);
        state.histShift[l] = cfg.historyBits;
        state.histMask[l] = mask32(cfg.historyBits);
        if (scope == HistoryScope::Global) {
            state.hist[l] = static_cast<std::uint32_t>(
                bank[l].globalHistoryRef().value());
        } else {
            const LocalHistoryTable &local =
                *bank[l].localHistoryRef();
            state.localHist.resize(
                state.localHist.size() + kSimdLaneStagger, 0);
            state.localBase[l] =
                static_cast<std::uint32_t>(state.localHist.size());
            state.localMask[l] = mask32(local.entriesLog2());
            for (std::size_t e = 0; e < local.entries(); ++e) {
                // historyBits <= 28, so the uint64 registers narrow
                // to uint32 losslessly.
                state.localHist.push_back(
                    static_cast<std::uint32_t>(local.data()[e]));
            }
        }
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<BiModePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (BiModePredictor &p : bank) {
        const BiModeConfig &cfg = p.config();
        // The constructor caps history at the (<= 28 bit) direction
        // index width; enforce the 32-bit lane math independently.
        if (cfg.historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        // Unpacked upper bound on the packed direction words, like
        // the other packed builders.
        totalCounters += p.takenBank().size() + p.notTakenBank().size();
        totalChoice += p.choiceTable().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::BiMode;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        BiModePredictor &p = bank[l];
        const BiModeConfig &cfg = p.config();
        // Not-taken bank at laneBase, taken bank bankStride words
        // after it, matching the kernel's choice-sign blend.
        appendCounters(state, l,
                       p.bankRef(BiModePredictor::kNotTakenBank));
        appendSecondBank(state, l,
                         p.bankRef(BiModePredictor::kTakenBank));
        appendChoiceCounters(state, l, p.choiceTableRef());
        state.addrMask[l] = mask32(cfg.directionIndexBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.choiceAddrMask[l] = mask32(cfg.choiceIndexBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
        if (cfg.alwaysUpdateChoice)
            state.alwaysChoiceMask[l] = ~std::uint32_t{0};
        if (!cfg.partialUpdate) {
            state.bothBanksMask[l] = ~std::uint32_t{0};
            state.updateBothBanks = true;
        }
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<AgreePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (AgreePredictor &p : bank) {
        // Constructor-capped at the (<= 28 bit) index width; enforce
        // the lane math independently.
        if (p.config().historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += p.tableRef().size();
        totalChoice += p.biasBitRef().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::Agree;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        AgreePredictor &p = bank[l];
        const AgreeConfig &cfg = p.config();
        appendCounters(state, l, p.tableRef());
        // The biasing state packs into one choice word per entry:
        // bit 0 = valid, bit 1 = the biasing bit (simd_bank.hh).
        state.choiceArena.resize(
            state.choiceArena.size() + kSimdLaneStagger, 0);
        state.choiceBase[l] =
            static_cast<std::uint32_t>(state.choiceArena.size());
        const std::vector<std::uint16_t> &bias = p.biasBitRef();
        const std::vector<std::uint16_t> &valid = p.biasValidRef();
        for (std::size_t e = 0; e < bias.size(); ++e) {
            state.choiceArena.push_back(
                valid[e] ? (1u | (bias[e] ? 2u : 0u)) : 0u);
        }
        state.addrMask[l] = mask32(cfg.indexBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.choiceAddrMask[l] = mask32(cfg.biasIndexBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
    }
    padLanes(state);
    return state;
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<BimodalPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l)
        restoreCounters(state, l, bank[l].tableRef());
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<GsharePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        bank[l].historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<TwoLevelPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        if (!state.localHistory) {
            bank[l].globalHistoryRef().setValue(state.hist[l]);
            continue;
        }
        LocalHistoryTable &local = *bank[l].localHistoryRef();
        const std::uint32_t *src =
            state.localHist.data() + state.localBase[l];
        for (std::size_t e = 0; e < local.entries(); ++e)
            local.data()[e] = src[e];
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<BiModePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        BiModePredictor &p = bank[l];
        restoreCounters(state, l,
                        p.bankRef(BiModePredictor::kNotTakenBank));
        restoreCounters(state, l,
                        p.bankRef(BiModePredictor::kTakenBank),
                        state.bankStride[l]);
        restoreChoiceCounters(state, l, p.choiceTableRef());
        p.historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<AgreePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        AgreePredictor &p = bank[l];
        restoreCounters(state, l, p.tableRef());
        const std::uint32_t *src =
            state.choiceArena.data() + state.choiceBase[l];
        std::vector<std::uint16_t> &bias = p.biasBitRef();
        std::vector<std::uint16_t> &valid = p.biasValidRef();
        for (std::size_t e = 0; e < bias.size(); ++e) {
            valid[e] = static_cast<std::uint16_t>(src[e] & 1u);
            bias[e] = static_cast<std::uint16_t>((src[e] >> 1) & 1u);
        }
        p.historyRef().setValue(state.hist[l]);
    }
}

} // namespace bpsim
