#include "sim/simd/simd_bank.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>

#include "core/bimode.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/filter.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/tournament.hh"
#include "predictors/twolevel.hh"
#include "predictors/yags.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Gather/scatter element offsets are consumed as *signed* 32-bit
 *  lane values by vpgatherdd and friends, so the whole arena
 *  (including the per-lane stagger gaps) must index below 2^31. */
constexpr std::uint64_t kMaxArenaElements =
    static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max());

/** Arena elements the stagger gaps add for a bank of @p lanes. */
std::uint64_t
staggerElements(std::size_t lanes)
{
    return static_cast<std::uint64_t>(lanes) * kSimdLaneStagger;
}

std::uint32_t
mask32(unsigned bits)
{
    return static_cast<std::uint32_t>(maskBits(bits));
}

/**
 * Sizes the shared per-lane arrays of @p state for @p lanes lanes
 * (padded to the widest group, see SimdBankState) and zero-fills
 * them. Lane constants are filled by the per-kind builders; the
 * padding replication happens afterwards in padLanes().
 */
void
initLaneArrays(SimdBankState &state, std::size_t lanes)
{
    state.lanes = lanes;
    const std::size_t padded =
        (lanes + kMaxSimdGroupLanes - 1) / kMaxSimdGroupLanes *
        kMaxSimdGroupLanes;
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.choiceBase, &state.choiceAddrMask,
          &state.choiceMaxValue, &state.choiceThreshold,
          &state.bankStride, &state.alwaysChoiceMask,
          &state.bothBanksMask, &state.auxBase, &state.auxAddrMask,
          &state.auxMaxValue, &state.auxThreshold, &state.tagShift,
          &state.tagMask, &state.hashFieldMask, &state.foldShift,
          &state.hist}) {
        array->assign(padded, 0);
    }
    state.mispredictions.assign(lanes, 0);
}

/** Replicates lane 0's constants into the padding lanes so padded
 *  vector slots execute a valid (discarded) lane. */
void
padLanes(SimdBankState &state)
{
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.choiceBase, &state.choiceAddrMask,
          &state.choiceMaxValue, &state.choiceThreshold,
          &state.bankStride, &state.alwaysChoiceMask,
          &state.bothBanksMask, &state.auxBase, &state.auxAddrMask,
          &state.auxMaxValue, &state.auxThreshold, &state.tagShift,
          &state.tagMask, &state.hashFieldMask, &state.foldShift,
          &state.hist}) {
        std::fill(array->begin() + state.lanes, array->end(),
                  array->front());
    }
}

/** Appends @p table's counters to the shared arena after a
 *  kSimdLaneStagger gap, recording the lane's base offset and
 *  counter constants. Packs into bit slots or widens one counter
 *  per word according to state.packed. */
void
appendCounters(SimdBankState &state, std::size_t lane,
               const CounterTable &table)
{
    state.maxValue[lane] = table.max();
    state.threshold[lane] = table.max() / 2;
    state.counters.resize(state.counters.size() + kSimdLaneStagger, 0);
    state.laneBase[lane] =
        static_cast<std::uint32_t>(state.counters.size());
    if (!state.packed) {
        state.counters.insert(state.counters.end(), table.data(),
                              table.data() + table.size());
        return;
    }
    // Slot width is the power of two >= the counter width (1..8
    // bits), so slot boundaries follow from plain shift/mask math and
    // a word always holds 4, 8, 16 or 32 whole counters.
    const unsigned slotLog2 = log2Ceil(table.bits());
    const unsigned perWordLog2 = 5 - slotLog2;
    state.wordShift[lane] = perWordLog2;
    state.slotIdxMask[lane] = mask32(perWordLog2);
    state.slotShift[lane] = slotLog2;
    state.fieldMask[lane] = mask32(1u << slotLog2);
    const std::size_t words =
        (table.size() + (std::size_t{1} << perWordLog2) - 1) >>
        perWordLog2;
    state.counters.resize(state.counters.size() + words, 0);
    std::uint32_t *dst = state.counters.data() + state.laneBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        dst[e >> perWordLog2] |=
            static_cast<std::uint32_t>(table.data()[e])
            << ((e & state.slotIdxMask[lane]) << slotLog2);
    }
}

/**
 * Appends a further direction bank directly after @p lane's previous
 * one (appendCounters() must have run for the lane), returning the
 * appended bank's word distance from laneBase. Requires state.packed
 * and a table of the same geometry as the first bank, so the lane's
 * slot constants cover all banks — which also makes bank k land at
 * exactly k times the first returned stride.
 */
std::uint32_t
appendNextBank(SimdBankState &state, std::size_t lane,
               const CounterTable &table)
{
    const unsigned perWordLog2 = state.wordShift[lane];
    const unsigned slotLog2 = state.slotShift[lane];
    const std::size_t words =
        (table.size() + (std::size_t{1} << perWordLog2) - 1) >>
        perWordLog2;
    const std::size_t base = state.counters.size();
    const std::uint32_t stride =
        static_cast<std::uint32_t>(base - state.laneBase[lane]);
    state.counters.resize(base + words, 0);
    std::uint32_t *dst = state.counters.data() + base;
    for (std::size_t e = 0; e < table.size(); ++e) {
        dst[e >> perWordLog2] |=
            static_cast<std::uint32_t>(table.data()[e])
            << ((e & state.slotIdxMask[lane]) << slotLog2);
    }
    return stride;
}

/** Appends @p table to the choice arena (one counter per word, see
 *  SimdBankState::choiceArena) after a stagger gap, recording the
 *  lane's choice base and counter constants. */
void
appendChoiceCounters(SimdBankState &state, std::size_t lane,
                     const CounterTable &table)
{
    state.choiceMaxValue[lane] = table.max();
    state.choiceThreshold[lane] = table.max() / 2;
    state.choiceArena.resize(
        state.choiceArena.size() + kSimdLaneStagger, 0);
    state.choiceBase[lane] =
        static_cast<std::uint32_t>(state.choiceArena.size());
    state.choiceArena.insert(state.choiceArena.end(), table.data(),
                             table.data() + table.size());
}

void
restoreChoiceCounters(const SimdBankState &state, std::size_t lane,
                      CounterTable &table)
{
    const std::uint32_t *src =
        state.choiceArena.data() + state.choiceBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e)
        table.data()[e] = static_cast<std::uint16_t>(src[e]);
}

/** Appends @p table as the lane's *second* pc-indexed stream in the
 *  choice arena (tournament's bimodal component), recording the aux
 *  base and counter constants. */
void
appendAuxCounters(SimdBankState &state, std::size_t lane,
                  const CounterTable &table)
{
    state.auxMaxValue[lane] = table.max();
    state.auxThreshold[lane] = table.max() / 2;
    state.choiceArena.resize(
        state.choiceArena.size() + kSimdLaneStagger, 0);
    state.auxBase[lane] =
        static_cast<std::uint32_t>(state.choiceArena.size());
    state.choiceArena.insert(state.choiceArena.end(), table.data(),
                             table.data() + table.size());
}

void
restoreAuxCounters(const SimdBankState &state, std::size_t lane,
                   CounterTable &table)
{
    const std::uint32_t *src =
        state.choiceArena.data() + state.auxBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e)
        table.data()[e] = static_cast<std::uint16_t>(src[e]);
}

std::uint32_t
packYagsEntry(const YagsPredictor::CacheEntry &entry)
{
    return (entry.valid ? kYagsValidBit : 0u) |
           (static_cast<std::uint32_t>(entry.tag) << kYagsTagShift) |
           entry.counter;
}

/** Restores a packed table whose lane region starts @p wordOffset
 *  words past laneBase (the bi-mode taken bank at bankStride). */
void
restoreCounters(const SimdBankState &state, std::size_t lane,
                CounterTable &table, std::size_t wordOffset = 0)
{
    const std::uint32_t *src = state.counters.data() +
                               state.laneBase[lane] + wordOffset;
    if (!state.packed) {
        // Counter values fit their (<= 8-bit) saturation value, so
        // the narrowing is lossless.
        for (std::size_t e = 0; e < table.size(); ++e)
            table.data()[e] = static_cast<std::uint16_t>(src[e]);
        return;
    }
    const unsigned perWordLog2 = state.wordShift[lane];
    const unsigned slotLog2 = state.slotShift[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        table.data()[e] = static_cast<std::uint16_t>(
            (src[e >> perWordLog2] >>
             ((e & state.slotIdxMask[lane]) << slotLog2)) &
            state.fieldMask[lane]);
    }
}

} // namespace

namespace detail
{

void
logSimdBankFallback(const std::string &what, const char *reason)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    if (!seen.insert(what + '|' + reason).second)
        return;
    BPSIM_INFORM("SIMD bank fallback: " << what
                 << " runs the scalar bank (" << reason << ")");
}

void
logProbedBankFallback(const std::string &what, const char *reason)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    if (!seen.insert(what + '|' + reason).second)
        return;
    BPSIM_INFORM("probed bank fallback: per-branch replay of " << what
                 << " runs the scalar bank (" << reason << ")");
}

} // namespace detail

bool
buildSimdBankProbe(SimdBankProbe &probe, const std::uint32_t *ids,
                   std::size_t staticCount, const SimdBankState &state,
                   std::size_t total)
{
    // A lane's counter for one branch accumulates at most the
    // measured branch count; it must fit the 32-bit arena element.
    if (static_cast<std::uint64_t>(total) >=
        std::numeric_limits<std::uint32_t>::max()) {
        return false;
    }
    const std::uint64_t block =
        static_cast<std::uint64_t>(staticCount) + kSimdLaneStagger;
    const std::uint64_t elements =
        block * static_cast<std::uint64_t>(state.lanes);
    if (elements > kMaxArenaElements)
        return false;

    probe.ids = ids;
    probe.staticCount = staticCount;
    probe.arena.assign(static_cast<std::size_t>(elements), 0);
    probe.laneBase.assign(state.paddedLanes(), 0);
    for (std::size_t l = 0; l < state.lanes; ++l) {
        // The stagger gap precedes each block, mirroring
        // appendCounters(): pc-indexed scatter-adds would otherwise
        // collide at power-of-two page offsets across lanes.
        probe.laneBase[l] = static_cast<std::uint32_t>(
            block * l + kSimdLaneStagger);
    }
    // Padding lanes replicate lane 0 (gathers stay in valid memory,
    // stores are masked off by the active count).
    std::fill(probe.laneBase.begin() + state.lanes,
              probe.laneBase.end(), probe.laneBase.front());
    return true;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<BimodalPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (BimodalPredictor &p : bank)
        totalCounters += p.table().size();
    if (totalCounters > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    initLaneArrays(state, bank.size());
    state.counters.reserve(totalCounters);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].table());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        // histShift/histMask/hist stay 0: the history term of the
        // unified index formula degenerates away and the per-branch
        // shift keeps hist at 0.
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<GsharePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (GsharePredictor &p : bank) {
        totalCounters += p.tableRef().size();
        // The constructor caps history at the (<= 28 bit) index
        // width, but the 32-bit lane math is a hard requirement:
        // refuse rather than truncate if that ever loosens.
        if (p.historyBitCount() > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
    }
    if (totalCounters > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        state.histMask[l] = mask32(bank[l].historyBitCount());
        state.hist[l] = static_cast<std::uint32_t>(
            bank[l].historyRef().value());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<TwoLevelPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    const HistoryScope scope = bank.front().config().scope;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalLocal = staggerElements(bank.size());
    for (TwoLevelPredictor &p : bank) {
        const TwoLevelConfig &cfg = p.config();
        // The kernel instantiates one history flavor per bank; a
        // mixed-scope bank (which fusion keys never produce) runs
        // scalar.
        if (cfg.scope != scope) {
            detail::logSimdBankFallback(p.name(),
                                        "mixed history scopes");
            return std::nullopt;
        }
        // Constructors cap historyBits + pcBits at 28 via the table
        // size; enforce the lane-math limits independently.
        if (cfg.historyBits + cfg.pcBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "index wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += p.tableRef().size();
        if (scope == HistoryScope::PerAddress) {
            if (cfg.localEntriesLog2 > 28) {
                detail::logSimdBankFallback(
                    p.name(),
                    "local-history table wider than the lane math");
                return std::nullopt;
            }
            totalLocal += p.localHistoryRef()->entries();
        }
    }
    if (totalCounters > kMaxArenaElements ||
        totalLocal > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.localHistory = scope == HistoryScope::PerAddress;
    state.packed = true;
    initLaneArrays(state, bank.size());
    state.localHist.reserve(totalLocal);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        const TwoLevelConfig &cfg = bank[l].config();
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(cfg.pcBits);
        state.histShift[l] = cfg.historyBits;
        state.histMask[l] = mask32(cfg.historyBits);
        if (scope == HistoryScope::Global) {
            state.hist[l] = static_cast<std::uint32_t>(
                bank[l].globalHistoryRef().value());
        } else {
            const LocalHistoryTable &local =
                *bank[l].localHistoryRef();
            state.localHist.resize(
                state.localHist.size() + kSimdLaneStagger, 0);
            state.localBase[l] =
                static_cast<std::uint32_t>(state.localHist.size());
            state.localMask[l] = mask32(local.entriesLog2());
            for (std::size_t e = 0; e < local.entries(); ++e) {
                // historyBits <= 28, so the uint64 registers narrow
                // to uint32 losslessly.
                state.localHist.push_back(
                    static_cast<std::uint32_t>(local.data()[e]));
            }
        }
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<BiModePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (BiModePredictor &p : bank) {
        const BiModeConfig &cfg = p.config();
        // The constructor caps history at the (<= 28 bit) direction
        // index width; enforce the 32-bit lane math independently.
        if (cfg.historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        // Unpacked upper bound on the packed direction words, like
        // the other packed builders.
        totalCounters += p.takenBank().size() + p.notTakenBank().size();
        totalChoice += p.choiceTable().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::BiMode;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        BiModePredictor &p = bank[l];
        const BiModeConfig &cfg = p.config();
        // Not-taken bank at laneBase, taken bank bankStride words
        // after it, matching the kernel's choice-sign blend.
        appendCounters(state, l,
                       p.bankRef(BiModePredictor::kNotTakenBank));
        state.bankStride[l] = appendNextBank(
            state, l, p.bankRef(BiModePredictor::kTakenBank));
        appendChoiceCounters(state, l, p.choiceTableRef());
        state.addrMask[l] = mask32(cfg.directionIndexBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.choiceAddrMask[l] = mask32(cfg.choiceIndexBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
        if (cfg.alwaysUpdateChoice)
            state.alwaysChoiceMask[l] = ~std::uint32_t{0};
        if (!cfg.partialUpdate) {
            state.bothBanksMask[l] = ~std::uint32_t{0};
            state.updateBothBanks = true;
        }
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<AgreePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (AgreePredictor &p : bank) {
        // Constructor-capped at the (<= 28 bit) index width; enforce
        // the lane math independently.
        if (p.config().historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += p.tableRef().size();
        totalChoice += p.biasBitRef().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::Agree;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        AgreePredictor &p = bank[l];
        const AgreeConfig &cfg = p.config();
        appendCounters(state, l, p.tableRef());
        // The biasing state packs into one choice word per entry:
        // bit 0 = valid, bit 1 = the biasing bit (simd_bank.hh).
        state.choiceArena.resize(
            state.choiceArena.size() + kSimdLaneStagger, 0);
        state.choiceBase[l] =
            static_cast<std::uint32_t>(state.choiceArena.size());
        const std::vector<std::uint16_t> &bias = p.biasBitRef();
        const std::vector<std::uint16_t> &valid = p.biasValidRef();
        for (std::size_t e = 0; e < bias.size(); ++e) {
            state.choiceArena.push_back(
                valid[e] ? (1u | (bias[e] ? 2u : 0u)) : 0u);
        }
        state.addrMask[l] = mask32(cfg.indexBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.choiceAddrMask[l] = mask32(cfg.biasIndexBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<TournamentPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    // Two pc-indexed streams (meta + bimodal) share the choice
    // arena, each behind its own stagger gap.
    std::uint64_t totalChoice = 2 * staggerElements(bank.size());
    for (TournamentPredictor &p : bank) {
        BimodalPredictor *bimodal = p.bimodalComponentPtr();
        GsharePredictor *gshare = p.gshareComponentPtr();
        // Only the standard bimodal+gshare pairing has a flattening;
        // custom component pairs step through virtual dispatch and
        // stay on the scalar bank.
        if (!bimodal || !gshare) {
            detail::logSimdBankFallback(
                p.name(), "non-standard component pairing");
            return std::nullopt;
        }
        // Constructor-capped at the (<= 28 bit) index width; enforce
        // the lane math independently.
        if (gshare->historyBitCount() > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += gshare->tableRef().size();
        totalChoice += p.metaTableRef().size() +
                       bimodal->tableRef().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::Tournament;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        TournamentPredictor &p = bank[l];
        GsharePredictor &gshare = *p.gshareComponentPtr();
        BimodalPredictor &bimodal = *p.bimodalComponentPtr();
        // gshare is the packed direction arena; the meta table rides
        // the choice constants and the bimodal table the aux
        // constants, both unpacked in the choice arena (pc-indexed
        // streams re-touch words; packing would stall
        // scatter-to-gather forwarding).
        appendCounters(state, l, gshare.tableRef());
        state.addrMask[l] = mask32(gshare.indexBitCount());
        state.histMask[l] = mask32(gshare.historyBitCount());
        state.hist[l] = static_cast<std::uint32_t>(
            gshare.historyRef().value());
        appendChoiceCounters(state, l, p.metaTableRef());
        state.choiceAddrMask[l] = mask32(p.metaIndexBitCount());
        appendAuxCounters(state, l, bimodal.tableRef());
        state.auxAddrMask[l] = mask32(bimodal.indexBitCount());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<GskewPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (GskewPredictor &p : bank) {
        const GskewConfig &cfg = p.config();
        // The skew hashes mix a (bankIndexBits + 8)-bit address field
        // with up to (historyBits + 1) bits of shifted history in
        // 32-bit lanes. Capping the field at 31 bits and the history
        // at 29 keeps the bank-2 add (address + (history << 1))
        // below 2^32, so the lane add matches the scalar 64-bit sum
        // exactly; the fold shift also needs 0 < n < 32.
        if (cfg.bankIndexBits == 0 || cfg.bankIndexBits > 23) {
            detail::logSimdBankFallback(
                p.name(),
                "hash address field outside the 32-bit lane math");
            return std::nullopt;
        }
        if (cfg.historyBits > 29) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        // Unpacked upper bound on the packed bank words, like the
        // other packed builders.
        totalCounters += 3 * p.bankRef(0).size();
    }
    if (totalCounters > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::Gskew;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        GskewPredictor &p = bank[l];
        const GskewConfig &cfg = p.config();
        // The three equal-geometry banks sit back to back: bank 1 at
        // bankStride words past bank 0, bank 2 at twice that.
        appendCounters(state, l, p.bankRef(0));
        state.bankStride[l] = appendNextBank(state, l, p.bankRef(1));
        appendNextBank(state, l, p.bankRef(2));
        state.addrMask[l] = mask32(cfg.bankIndexBits);
        state.hashFieldMask[l] = mask32(cfg.bankIndexBits + 8);
        state.foldShift[l] = cfg.bankIndexBits;
        state.histMask[l] = mask32(cfg.historyBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
        if (!cfg.partialUpdate)
            state.bothBanksMask[l] = ~std::uint32_t{0};
        state.foldRounds = std::max<std::uint32_t>(
            state.foldRounds,
            (64 + cfg.bankIndexBits - 1) / cfg.bankIndexBits);
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<YagsPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (YagsPredictor &p : bank) {
        const YagsConfig &cfg = p.config();
        // Constructor-capped at the (<= 28 bit) cache index width;
        // enforce the lane math independently.
        if (cfg.historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        // The scalar tag comes from 64-bit word-address bits
        // [cacheIndexBits, cacheIndexBits + tagBits); the kernel only
        // carries the low 32 address bits per lane.
        if (cfg.cacheIndexBits + cfg.tagBits > 32) {
            detail::logSimdBankFallback(
                p.name(), "tag field above the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += 2 * p.cacheRef(0).size();
        totalChoice += p.choiceTableRef().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    // One whole cache entry per arena word (kYagsCounterMask layout):
    // the probe gathers valid+tag+counter in one load and allocation
    // rewrites the word wholesale, so the packed slot math never
    // applies.
    state.choiceKind = SimdChoiceKind::Yags;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        YagsPredictor &p = bank[l];
        const YagsConfig &cfg = p.config();
        state.maxValue[l] = mask32(cfg.counterWidth);
        state.threshold[l] = state.maxValue[l] / 2;
        state.counters.resize(
            state.counters.size() + kSimdLaneStagger, 0);
        state.laneBase[l] =
            static_cast<std::uint32_t>(state.counters.size());
        // Not-taken cache at laneBase, taken cache bankStride words
        // after it; the kernel consults the cache *opposite* the
        // choice direction (yags.hh), so the stride add is masked by
        // ~choice.
        for (std::uint32_t cache = 0; cache < 2; ++cache) {
            if (cache == YagsPredictor::kTakenCache) {
                state.bankStride[l] = static_cast<std::uint32_t>(
                    state.counters.size() - state.laneBase[l]);
            }
            for (const YagsPredictor::CacheEntry &entry :
                 p.cacheRef(cache))
                state.counters.push_back(packYagsEntry(entry));
        }
        appendChoiceCounters(state, l, p.choiceTableRef());
        state.choiceAddrMask[l] = mask32(cfg.choiceIndexBits);
        state.addrMask[l] = mask32(cfg.cacheIndexBits);
        state.tagShift[l] = cfg.cacheIndexBits;
        state.tagMask[l] = mask32(cfg.tagBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<FilterPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalChoice = staggerElements(bank.size());
    for (FilterPredictor &p : bank) {
        // Constructor-capped at the (<= 28 bit) PHT index width;
        // enforce the lane math independently.
        if (p.config().historyBits > 31) {
            detail::logSimdBankFallback(
                p.name(), "history wider than the 32-bit lane math");
            return std::nullopt;
        }
        totalCounters += p.phtRef().size();
        totalChoice += p.filterRef().size();
    }
    if (totalCounters > kMaxArenaElements ||
        totalChoice > kMaxArenaElements) {
        detail::logSimdBankFallback(bank.front().name(),
                                    "arena over 2^31 elements");
        return std::nullopt;
    }

    SimdBankState state;
    state.packed = true;
    state.choiceKind = SimdChoiceKind::Filter;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        FilterPredictor &p = bank[l];
        const FilterConfig &cfg = p.config();
        appendCounters(state, l, p.phtRef());
        state.addrMask[l] = mask32(cfg.indexBits);
        state.histMask[l] = mask32(cfg.historyBits);
        state.hist[l] =
            static_cast<std::uint32_t>(p.historyRef().value());
        // Filter entries pack into one choice word each: direction
        // in bit 0, run length from bit 1 (runs are <= 8 bits). The
        // saturation value rides choiceMaxValue.
        state.choiceArena.resize(
            state.choiceArena.size() + kSimdLaneStagger, 0);
        state.choiceBase[l] =
            static_cast<std::uint32_t>(state.choiceArena.size());
        for (const FilterPredictor::FilterEntry &entry : p.filterRef()) {
            state.choiceArena.push_back(
                (entry.direction ? 1u : 0u) |
                (static_cast<std::uint32_t>(entry.runLength) << 1));
        }
        state.choiceAddrMask[l] = mask32(cfg.filterIndexBits);
        state.choiceMaxValue[l] = p.runSaturationValue();
    }
    padLanes(state);
    return state;
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<BimodalPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l)
        restoreCounters(state, l, bank[l].tableRef());
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<GsharePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        bank[l].historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<TwoLevelPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        if (!state.localHistory) {
            bank[l].globalHistoryRef().setValue(state.hist[l]);
            continue;
        }
        LocalHistoryTable &local = *bank[l].localHistoryRef();
        const std::uint32_t *src =
            state.localHist.data() + state.localBase[l];
        for (std::size_t e = 0; e < local.entries(); ++e)
            local.data()[e] = src[e];
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<BiModePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        BiModePredictor &p = bank[l];
        restoreCounters(state, l,
                        p.bankRef(BiModePredictor::kNotTakenBank));
        restoreCounters(state, l,
                        p.bankRef(BiModePredictor::kTakenBank),
                        state.bankStride[l]);
        restoreChoiceCounters(state, l, p.choiceTableRef());
        p.historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<AgreePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        AgreePredictor &p = bank[l];
        restoreCounters(state, l, p.tableRef());
        const std::uint32_t *src =
            state.choiceArena.data() + state.choiceBase[l];
        std::vector<std::uint16_t> &bias = p.biasBitRef();
        std::vector<std::uint16_t> &valid = p.biasValidRef();
        for (std::size_t e = 0; e < bias.size(); ++e) {
            valid[e] = static_cast<std::uint16_t>(src[e] & 1u);
            bias[e] = static_cast<std::uint16_t>((src[e] >> 1) & 1u);
        }
        p.historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<TournamentPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        TournamentPredictor &p = bank[l];
        GsharePredictor &gshare = *p.gshareComponentPtr();
        restoreCounters(state, l, gshare.tableRef());
        gshare.historyRef().setValue(state.hist[l]);
        restoreChoiceCounters(state, l, p.metaTableRef());
        restoreAuxCounters(state, l,
                           p.bimodalComponentPtr()->tableRef());
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<GskewPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        GskewPredictor &p = bank[l];
        restoreCounters(state, l, p.bankRef(0));
        restoreCounters(state, l, p.bankRef(1), state.bankStride[l]);
        restoreCounters(state, l, p.bankRef(2),
                        2 * static_cast<std::size_t>(
                                state.bankStride[l]));
        p.historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<YagsPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        YagsPredictor &p = bank[l];
        const std::uint32_t *src =
            state.counters.data() + state.laneBase[l];
        for (std::uint32_t cache = 0; cache < 2; ++cache) {
            for (YagsPredictor::CacheEntry &entry : p.cacheRef(cache)) {
                const std::uint32_t word = *src++;
                entry.valid = (word & kYagsValidBit) != 0;
                entry.tag = static_cast<std::uint16_t>(
                    (word >> kYagsTagShift) & 0xFFFFu);
                entry.counter = static_cast<std::uint16_t>(
                    word & kYagsCounterMask);
            }
        }
        restoreChoiceCounters(state, l, p.choiceTableRef());
        p.historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<FilterPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        FilterPredictor &p = bank[l];
        restoreCounters(state, l, p.phtRef());
        const std::uint32_t *src =
            state.choiceArena.data() + state.choiceBase[l];
        for (FilterPredictor::FilterEntry &entry : p.filterRef()) {
            const std::uint32_t word = *src++;
            entry.direction = static_cast<std::uint16_t>(word & 1u);
            entry.runLength = static_cast<std::uint16_t>(word >> 1);
        }
        p.historyRef().setValue(state.hist[l]);
    }
}

} // namespace bpsim
