#include "sim/simd/simd_bank.hh"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/twolevel.hh"
#include "util/bits.hh"

namespace bpsim
{

namespace
{

/** Gather/scatter element offsets are consumed as *signed* 32-bit
 *  lane values by vpgatherdd and friends, so the whole arena
 *  (including the per-lane stagger gaps) must index below 2^31. */
constexpr std::uint64_t kMaxArenaElements =
    static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max());

/** Arena elements the stagger gaps add for a bank of @p lanes. */
std::uint64_t
staggerElements(std::size_t lanes)
{
    return static_cast<std::uint64_t>(lanes) * kSimdLaneStagger;
}

std::uint32_t
mask32(unsigned bits)
{
    return static_cast<std::uint32_t>(maskBits(bits));
}

/**
 * Sizes the shared per-lane arrays of @p state for @p lanes lanes
 * (padded to the widest group, see SimdBankState) and zero-fills
 * them. Lane constants are filled by the per-kind builders; the
 * padding replication happens afterwards in padLanes().
 */
void
initLaneArrays(SimdBankState &state, std::size_t lanes)
{
    state.lanes = lanes;
    const std::size_t padded =
        (lanes + kMaxSimdGroupLanes - 1) / kMaxSimdGroupLanes *
        kMaxSimdGroupLanes;
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.hist}) {
        array->assign(padded, 0);
    }
    state.mispredictions.assign(lanes, 0);
}

/** Replicates lane 0's constants into the padding lanes so padded
 *  vector slots execute a valid (discarded) lane. */
void
padLanes(SimdBankState &state)
{
    for (auto *array :
         {&state.laneBase, &state.addrMask, &state.histShift,
          &state.histMask, &state.localBase, &state.localMask,
          &state.maxValue, &state.threshold, &state.wordShift,
          &state.slotIdxMask, &state.slotShift, &state.fieldMask,
          &state.hist}) {
        std::fill(array->begin() + state.lanes, array->end(),
                  array->front());
    }
}

/** Appends @p table's counters to the shared arena after a
 *  kSimdLaneStagger gap, recording the lane's base offset and
 *  counter constants. Packs into bit slots or widens one counter
 *  per word according to state.packed. */
void
appendCounters(SimdBankState &state, std::size_t lane,
               const CounterTable &table)
{
    state.maxValue[lane] = table.max();
    state.threshold[lane] = table.max() / 2;
    state.counters.resize(state.counters.size() + kSimdLaneStagger, 0);
    state.laneBase[lane] =
        static_cast<std::uint32_t>(state.counters.size());
    if (!state.packed) {
        state.counters.insert(state.counters.end(), table.data(),
                              table.data() + table.size());
        return;
    }
    // Slot width is the power of two >= the counter width (1..8
    // bits), so slot boundaries follow from plain shift/mask math and
    // a word always holds 4, 8, 16 or 32 whole counters.
    const unsigned slotLog2 = log2Ceil(table.bits());
    const unsigned perWordLog2 = 5 - slotLog2;
    state.wordShift[lane] = perWordLog2;
    state.slotIdxMask[lane] = mask32(perWordLog2);
    state.slotShift[lane] = slotLog2;
    state.fieldMask[lane] = mask32(1u << slotLog2);
    const std::size_t words =
        (table.size() + (std::size_t{1} << perWordLog2) - 1) >>
        perWordLog2;
    state.counters.resize(state.counters.size() + words, 0);
    std::uint32_t *dst = state.counters.data() + state.laneBase[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        dst[e >> perWordLog2] |=
            static_cast<std::uint32_t>(table.data()[e])
            << ((e & state.slotIdxMask[lane]) << slotLog2);
    }
}

void
restoreCounters(const SimdBankState &state, std::size_t lane,
                CounterTable &table)
{
    const std::uint32_t *src = state.counters.data() +
                               state.laneBase[lane];
    if (!state.packed) {
        // Counter values fit their (<= 8-bit) saturation value, so
        // the narrowing is lossless.
        for (std::size_t e = 0; e < table.size(); ++e)
            table.data()[e] = static_cast<std::uint16_t>(src[e]);
        return;
    }
    const unsigned perWordLog2 = state.wordShift[lane];
    const unsigned slotLog2 = state.slotShift[lane];
    for (std::size_t e = 0; e < table.size(); ++e) {
        table.data()[e] = static_cast<std::uint16_t>(
            (src[e >> perWordLog2] >>
             ((e & state.slotIdxMask[lane]) << slotLog2)) &
            state.fieldMask[lane]);
    }
}

} // namespace

std::optional<SimdBankState>
buildSimdBank(std::vector<BimodalPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (BimodalPredictor &p : bank)
        totalCounters += p.table().size();
    if (totalCounters > kMaxArenaElements)
        return std::nullopt;

    SimdBankState state;
    initLaneArrays(state, bank.size());
    state.counters.reserve(totalCounters);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].table());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        // histShift/histMask/hist stay 0: the history term of the
        // unified index formula degenerates away and the per-branch
        // shift keeps hist at 0.
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<GsharePredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    std::uint64_t totalCounters = staggerElements(bank.size());
    for (GsharePredictor &p : bank) {
        totalCounters += p.tableRef().size();
        // The constructor caps history at the (<= 28 bit) index
        // width, but the 32-bit lane math is a hard requirement:
        // refuse rather than truncate if that ever loosens.
        if (p.historyBitCount() > 31)
            return std::nullopt;
    }
    if (totalCounters > kMaxArenaElements)
        return std::nullopt;

    SimdBankState state;
    state.packed = true;
    initLaneArrays(state, bank.size());
    for (std::size_t l = 0; l < bank.size(); ++l) {
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(bank[l].indexBitCount());
        state.histMask[l] = mask32(bank[l].historyBitCount());
        state.hist[l] = static_cast<std::uint32_t>(
            bank[l].historyRef().value());
    }
    padLanes(state);
    return state;
}

std::optional<SimdBankState>
buildSimdBank(std::vector<TwoLevelPredictor> &bank)
{
    if (bank.empty())
        return std::nullopt;
    const HistoryScope scope = bank.front().config().scope;
    std::uint64_t totalCounters = staggerElements(bank.size());
    std::uint64_t totalLocal = staggerElements(bank.size());
    for (TwoLevelPredictor &p : bank) {
        const TwoLevelConfig &cfg = p.config();
        // The kernel instantiates one history flavor per bank; a
        // mixed-scope bank (which fusion keys never produce) runs
        // scalar.
        if (cfg.scope != scope)
            return std::nullopt;
        // Constructors cap historyBits + pcBits at 28 via the table
        // size; enforce the lane-math limits independently.
        if (cfg.historyBits + cfg.pcBits > 31)
            return std::nullopt;
        totalCounters += p.tableRef().size();
        if (scope == HistoryScope::PerAddress) {
            if (cfg.localEntriesLog2 > 28)
                return std::nullopt;
            totalLocal += p.localHistoryRef()->entries();
        }
    }
    if (totalCounters > kMaxArenaElements ||
        totalLocal > kMaxArenaElements) {
        return std::nullopt;
    }

    SimdBankState state;
    state.localHistory = scope == HistoryScope::PerAddress;
    state.packed = true;
    initLaneArrays(state, bank.size());
    state.localHist.reserve(totalLocal);
    for (std::size_t l = 0; l < bank.size(); ++l) {
        const TwoLevelConfig &cfg = bank[l].config();
        appendCounters(state, l, bank[l].tableRef());
        state.addrMask[l] = mask32(cfg.pcBits);
        state.histShift[l] = cfg.historyBits;
        state.histMask[l] = mask32(cfg.historyBits);
        if (scope == HistoryScope::Global) {
            state.hist[l] = static_cast<std::uint32_t>(
                bank[l].globalHistoryRef().value());
        } else {
            const LocalHistoryTable &local =
                *bank[l].localHistoryRef();
            state.localHist.resize(
                state.localHist.size() + kSimdLaneStagger, 0);
            state.localBase[l] =
                static_cast<std::uint32_t>(state.localHist.size());
            state.localMask[l] = mask32(local.entriesLog2());
            for (std::size_t e = 0; e < local.entries(); ++e) {
                // historyBits <= 28, so the uint64 registers narrow
                // to uint32 losslessly.
                state.localHist.push_back(
                    static_cast<std::uint32_t>(local.data()[e]));
            }
        }
    }
    padLanes(state);
    return state;
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<BimodalPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l)
        restoreCounters(state, l, bank[l].tableRef());
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<GsharePredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        bank[l].historyRef().setValue(state.hist[l]);
    }
}

void
storeSimdBank(const SimdBankState &state,
              std::vector<TwoLevelPredictor> &bank)
{
    for (std::size_t l = 0; l < bank.size(); ++l) {
        restoreCounters(state, l, bank[l].tableRef());
        if (!state.localHistory) {
            bank[l].globalHistoryRef().setValue(state.hist[l]);
            continue;
        }
        LocalHistoryTable &local = *bank[l].localHistoryRef();
        const std::uint32_t *src =
            state.localHist.data() + state.localBase[l];
        for (std::size_t e = 0; e < local.entries(); ++e)
            local.data()[e] = src[e];
    }
}

} // namespace bpsim
