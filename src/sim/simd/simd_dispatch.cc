/**
 * @file
 * Tier dispatch for the vectorized bank kernel.
 *
 * This TU is compiled with the generic flags; the per-ISA entry
 * points it forwards to live in their own TUs behind BPSIM_HAVE_*
 * (src/sim/CMakeLists.txt), so no target-specific instruction can
 * leak into a binary that merely links the dispatcher.
 */

#include "sim/simd/simd_bank.hh"

namespace bpsim
{

bool
runSimdBank(SimdBankState &state, KernelTier tier,
            const std::uint64_t *pcs, const std::uint64_t *words,
            std::size_t total, std::size_t warmup,
            SimdBankProbe *probe)
{
    switch (tier) {
#if defined(BPSIM_HAVE_AVX512)
      case KernelTier::AVX512:
        detail::simdBankReplayAvx512(state, pcs, words, total, warmup,
                                     probe);
        return true;
#endif
#if defined(BPSIM_HAVE_AVX2)
      case KernelTier::AVX2:
        detail::simdBankReplayAvx2(state, pcs, words, total, warmup,
                                   probe);
        return true;
#endif
#if defined(BPSIM_HAVE_NEON)
      case KernelTier::NEON:
        detail::simdBankReplayNeon(state, pcs, words, total, warmup,
                                   probe);
        return true;
#endif
      default:
        return false;
    }
}

} // namespace bpsim
