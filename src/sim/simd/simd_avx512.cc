/**
 * @file
 * AVX-512F backend: 16 lanes per step.
 *
 * Compiled with -mavx512f in this TU only (src/sim/CMakeLists.txt);
 * nothing here may be called without a runtime CPU check
 * (kernel_tier.cc does it). Only the F subset is used — compares
 * materialize their k-masks back into vectors so the kernel body
 * stays the shared mask-vector formulation.
 */

#include "sim/simd/simd_bank.hh"

#if defined(BPSIM_HAVE_AVX512)

#include <immintrin.h>

#include "sim/simd/simd_kernel.hh"

namespace bpsim
{

namespace detail
{

namespace
{

struct Avx512Backend
{
    using V = __m512i;
    static constexpr std::size_t kLanes = 16;

    static V
    load(const std::uint32_t *p)
    {
        return _mm512_loadu_si512(p);
    }
    static void
    store(std::uint32_t *p, V v)
    {
        _mm512_storeu_si512(p, v);
    }
    static V
    bcast(std::uint32_t x)
    {
        return _mm512_set1_epi32(static_cast<int>(x));
    }
    static V zero() { return _mm512_setzero_si512(); }
    static V and_(V a, V b) { return _mm512_and_si512(a, b); }
    static V or_(V a, V b) { return _mm512_or_si512(a, b); }
    static V xor_(V a, V b) { return _mm512_xor_si512(a, b); }
    static V add(V a, V b) { return _mm512_add_epi32(a, b); }
    static V sub(V a, V b) { return _mm512_sub_epi32(a, b); }
    static V sll1(V a) { return _mm512_slli_epi32(a, 1); }
    static V sllv(V a, V n) { return _mm512_sllv_epi32(a, n); }
    static V srlv(V a, V n) { return _mm512_srlv_epi32(a, n); }
    /** ~a & b. */
    static V andnot(V a, V b) { return _mm512_andnot_si512(a, b); }
    /** Materialize the k-mask as an all-ones vector mask to match
     *  the other backends' compare semantics. */
    static V
    cmpgt(V a, V b)
    {
        return _mm512_maskz_set1_epi32(_mm512_cmpgt_epi32_mask(a, b),
                                       -1);
    }
    static V
    cmpeq(V a, V b)
    {
        return _mm512_maskz_set1_epi32(_mm512_cmpeq_epi32_mask(a, b),
                                       -1);
    }
    static V mullo(V a, V b) { return _mm512_mullo_epi32(a, b); }
    /** High 32 bits of the unsigned 32x32 product, via the even/odd
     *  vpmuludq split (see the AVX2 backend). */
    static V
    mulhi(V a, V b)
    {
        const V even = _mm512_mul_epu32(a, b);
        const V odd = _mm512_mul_epu32(_mm512_srli_epi64(a, 32),
                                       _mm512_srli_epi64(b, 32));
        return _mm512_or_si512(
            _mm512_srli_epi64(even, 32),
            _mm512_and_si512(
                odd, _mm512_set1_epi64(
                         static_cast<long long>(0xFFFFFFFF00000000ULL))));
    }
    /** m ? b : a with a vector mask (m is all-ones per lane). */
    static V
    blend(V a, V b, V m)
    {
        return _mm512_or_si512(_mm512_and_si512(m, b),
                               _mm512_andnot_si512(m, a));
    }
    static V
    gather32(const std::uint32_t *base, V off)
    {
        return _mm512_i32gather_epi32(off, base, 4);
    }
    /** Native scatter, masked to the active lanes so padding lanes
     *  (replicas of lane 0) never write. Active lanes always carry
     *  disjoint offsets, but vpscatterdd would be safe regardless
     *  (overlapping stores land in lane order). */
    static void
    scatter32(std::uint32_t *base, V off, V val, std::size_t active)
    {
        const __mmask16 live = static_cast<__mmask16>(
            active >= kLanes ? 0xFFFFu : (1u << active) - 1);
        _mm512_mask_i32scatter_epi32(base, live, off, val, 4);
    }
};

} // namespace

void
simdBankReplayAvx512(SimdBankState &state, const std::uint64_t *pcs,
                     const std::uint64_t *words, std::size_t total,
                     std::size_t warmup, SimdBankProbe *probe)
{
    dispatchSimdBankKernel<Avx512Backend>(state, pcs, words, total,
                                          warmup, probe);
}

} // namespace detail

} // namespace bpsim

#endif // BPSIM_HAVE_AVX512
