/**
 * @file
 * SoA lane state for the vectorized banked replay kernel.
 *
 * The scalar bank (sim/replay_kernel.hh) steps each lane's predictor
 * object in place. The SIMD tiers instead flatten a bank of
 * structurally uniform predictors into one gather-friendly arena —
 * every lane's counter table bit-packed back to back into a shared
 * uint32 word array — plus per-lane constant vectors describing each
 * lane's index function. One unified index formula covers the whole
 * eligible family:
 *
 *     idx = ((addr & addrMask) << histShift) ^ (hist & histMask)
 *
 *   bimodal          addrMask = 2^n-1, histShift = 0, histMask = 0
 *   gshare           addrMask = 2^n-1, histShift = 0, histMask = 2^m-1
 *   GAg/GAs          addrMask = 2^a-1, histShift = h, histMask = 2^h-1
 *   PAg/PAs          as GAs, with hist gathered from a per-address
 *                    uint32 history arena (localHistory = true)
 *
 * (For the two-level family the scalar code computes (pht << h) |
 * hist; the history occupies exactly the low h bits, so or and xor
 * agree bit for bit.)
 *
 * The choice-based (multi-read) kinds add one or two pc-indexed
 * arena reads in front of the direction read (choiceKind selects the
 * flavor, see SimdChoiceKind):
 *
 *   bimode           a choice-counter read at addr & choiceAddrMask
 *                    whose sign blends bankStride into the direction
 *                    base — the taken/not-taken banks sit back to
 *                    back in the lane's counter region — with the
 *                    paper's partial-update and choice-exception
 *                    policies expressed as branchless write-back
 *                    masks (bothBanksMask, alwaysChoiceMask)
 *   agree            a biasing-bit read (valid + bias packed into
 *                    one choice word) that xnor-flips the direction
 *                    counter's agree prediction, with the first-use
 *                    bias capture as a masked choice write-back
 *   tournament       three gathers: a meta counter (choice arena)
 *                    selects per lane between a bimodal counter (a
 *                    second pc-indexed read, aux* constants) and a
 *                    gshare counter from the packed direction arena
 *   gskew            three skew-hashed direction-bank gathers (the
 *                    banks sit back to back at bankStride spacing)
 *                    plus a vectorized 2-of-3 majority vote; the
 *                    e-gskew partial-update policy and its ablation
 *                    are write-back masks (bothBanksMask)
 *   yags             a choice gather steering a tagged
 *                    exception-cache probe: each cache entry packs
 *                    valid/tag/counter into one arena word, the hit
 *                    test is a gathered tag compare, and allocation
 *                    is a masked whole-word write-back
 *   filter           a run-length filter word (direction + counter,
 *                    choice arena) gates a gshare-indexed PHT read;
 *                    saturation/reset of the run is branchless masks
 *
 * Lanes are vectorized, branches stay serial: for each trace branch
 * the kernel gathers every lane's counter, predicts, saturates and
 * writes back before consuming the next branch. That preserves the
 * exact serial state dependency of the scalar oracle, which is what
 * makes bit-identity hold by construction rather than by accident.
 *
 * buildSimdBank() returns std::nullopt whenever the bank shape is
 * outside what 32-bit gather indices (or the formula above) can
 * express; the caller then falls back to the scalar bank. The
 * catch-all template makes ineligible predictor kinds compile to
 * that same fallback.
 */

#ifndef BPSIM_SIM_SIMD_SIMD_BANK_HH
#define BPSIM_SIM_SIMD_SIMD_BANK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simd/kernel_tier.hh"

namespace bpsim
{

class AgreePredictor;
class BiModePredictor;
class BimodalPredictor;
class FilterPredictor;
class GsharePredictor;
class GskewPredictor;
class TournamentPredictor;
class TwoLevelPredictor;
class YagsPredictor;

/**
 * Multi-read kernel flavor of a flattened bank: which choice-arena
 * semantics the kernel applies around the direction-bank read.
 */
enum class SimdChoiceKind : std::uint8_t
{
    /** No choice stage — the single-gather family. */
    None,
    /** Bi-mode: a pc-indexed choice counter selects between two
     *  direction banks sharing one gshare index. */
    BiMode,
    /** Agree: a pc-indexed biasing bit (with first-use capture)
     *  flips the direction counter's agree prediction. */
    Agree,
    /** Tournament: a pc-indexed meta counter selects between a
     *  pc-indexed bimodal counter (aux* constants) and a packed
     *  gshare counter — three gathers, one blend. */
    Tournament,
    /** gskew: three skew-hashed gathers from back-to-back direction
     *  banks, majority vote, partial-update write-back masks. */
    Gskew,
    /** YAGS: a choice gather steering a tagged exception-cache probe
     *  (valid/tag/counter packed per arena word) with a compare-mask
     *  hit test and masked allocation write-backs. */
    Yags,
    /** Filter: a pc-indexed run-length word gates a gshare-indexed
     *  PHT read; saturate/reset are branchless masks. */
    Filter,
};

/** Widest group any backend steps at once (AVX-512, 16 lanes).
 *  Per-lane arrays are padded to a multiple of this so every backend
 *  can issue full-width loads of lane constants. */
constexpr std::size_t kMaxSimdGroupLanes = 16;

/** @name YAGS arena-word layout
 *  One exception-cache entry packs into one (unpacked) arena word:
 *  the counter in bits 0..7, the partial tag in bits 8..23, the
 *  valid flag in bit 24. Counters are <= 8 bits and tags <= 16 bits
 *  by construction (yags.hh), so the fields never overlap. Shared
 *  between the builder (simd_bank.cc) and the kernel
 *  (simd_kernel.hh). */
/**@{*/
constexpr std::uint32_t kYagsCounterMask = 0xFFu;
constexpr std::uint32_t kYagsTagShift = 8;
constexpr std::uint32_t kYagsValidBit = std::uint32_t{1} << 24;
/**@}*/

/**
 * Zero elements inserted before every lane's region in the shared
 * arenas.
 *
 * Predictor tables are power-of-two sized, so back-to-back lane
 * regions put every lane's copy of one index at power-of-two byte
 * strides — all sixteen stores and the next branch's gather then
 * collide in the low 12 address bits and the store-to-load
 * disambiguation stalls serialize the kernel (4K aliasing). A
 * 64-byte gap per lane skews the strides off the page-offset
 * pattern; on AVX-512 hardware this alone roughly doubles bank
 * throughput.
 */
constexpr std::size_t kSimdLaneStagger = 16;

/**
 * Flattened bank state for one SIMD replay.
 *
 * Per-lane arrays have paddedLanes() elements; entries past lanes
 * replicate lane 0, so padded vector lanes execute lane 0's index
 * function against lane 0's tables (all loads stay in valid memory)
 * while their results are simply never written back.
 */
struct SimdBankState
{
    /** Active lanes (the bank size); padding lanes beyond this are
     *  never stored back. */
    std::size_t lanes = 0;
    /** True for the per-address-history family (PAg/PAs): hist is
     *  gathered from localHist instead of carried in a register. */
    bool localHistory = false;
    /** Which choice-arena stage the kernel runs before the direction
     *  read (None for the single-gather family). */
    SimdChoiceKind choiceKind = SimdChoiceKind::None;
    /** Bi-mode only: true when any lane runs the partialUpdate=false
     *  ablation, selecting the kernel variant that also steps the
     *  unselected bank (gated per lane by bothBanksMask). */
    bool updateBothBanks = false;
    /**
     * True when counters is bit-packed (see below). History-indexed
     * banks pack: their index streams are spread by the history
     * bits, so the footprint cut dominates. Bimodal banks do not:
     * the pc-only index stream re-touches the same packed word on
     * nearby branches, and the resulting scatter-to-gather
     * forwarding stalls cost more than the smaller arena saves.
     */
    bool packed = false;

    /**
     * All lanes' counter tables as uint32 words, each lane's run
     * preceded by a kSimdLaneStagger gap (see above).
     *
     * Unpacked (packed == false): one counter per word at
     * laneBase[l] + idx.
     *
     * Packed: counter idx of lane l lives in word
     * laneBase[l] + (idx >> wordShift[l]), in the field of
     * fieldMask[l] starting at bit
     * (idx & slotIdxMask[l]) << slotShift[l]. Slots are the power of
     * two >= the counter width, so 2-bit counters pack 16 per word —
     * a 16-fold footprint cut that keeps realistic history-indexed
     * banks L1-resident (gathers were the dominant cost on
     * out-of-L1 banks).
     */
    std::vector<std::uint32_t> counters;
    /** All lanes' per-address history registers (localHistory only),
     *  lane l at [localBase[l], localBase[l] + localMask[l] + 1),
     *  staggered like the counter arena. */
    std::vector<std::uint32_t> localHist;
    /**
     * Choice-stage arena (choiceKind != None), staggered like the
     * counter arena but always one entry per word: the choice/bias
     * tables are pc-indexed, so nearby branches re-touch the same
     * entry and a packed layout would trade its footprint cut for
     * scatter-to-gather forwarding stalls (the same trade that keeps
     * bimodal unpacked).
     *
     * BiMode/Yags: the lane's choice counters at choiceBase[l] + idx.
     * Agree: bit 0 = bias valid, bit 1 = biasing bit (0 = branch not
     * yet seen).
     * Tournament: the meta counters at choiceBase[l] + idx AND the
     * bimodal component's counters at auxBase[l] + idx — two
     * pc-indexed streams sharing the arena.
     * Filter: bit 0 = run direction, bits 1.. = the saturating run
     * length (saturation value in choiceMaxValue).
     */
    std::vector<std::uint32_t> choiceArena;

    /** @name Per-lane constants (paddedLanes() elements) */
    /**@{*/
    std::vector<std::uint32_t> laneBase;   ///< lane's word offset in counters
    std::vector<std::uint32_t> addrMask;   ///< address bits kept
    std::vector<std::uint32_t> histShift;  ///< address shift (two-level)
    std::vector<std::uint32_t> histMask;   ///< history register mask
    std::vector<std::uint32_t> localBase;  ///< lane's offset in localHist
    std::vector<std::uint32_t> localMask;  ///< per-address index mask
    std::vector<std::uint32_t> maxValue;   ///< counter saturation value
    std::vector<std::uint32_t> threshold;  ///< predict taken when >
    std::vector<std::uint32_t> wordShift;  ///< log2 counters per word (packed)
    std::vector<std::uint32_t> slotIdxMask; ///< counters per word - 1 (packed)
    std::vector<std::uint32_t> slotShift;  ///< log2 slot width in bits (packed)
    std::vector<std::uint32_t> fieldMask;  ///< slot-wide value mask (packed)
    /** @name Choice-stage constants (choiceKind != None) */
    std::vector<std::uint32_t> choiceBase; ///< lane's offset in choiceArena
    std::vector<std::uint32_t> choiceAddrMask; ///< choice-index pc mask
    std::vector<std::uint32_t> choiceMaxValue; ///< choice saturation (bimode)
    std::vector<std::uint32_t> choiceThreshold; ///< bank select when > (bimode)
    /** Direction-arena words between the lane's adjacent banks
     *  (bimode: not-taken → taken; gskew: bank i → bank i+1; yags:
     *  not-taken cache → taken cache): a selected bank's base is
     *  laneBase plus a multiple of bankStride. */
    std::vector<std::uint32_t> bankStride;
    /** All-ones on lanes running the alwaysUpdateChoice ablation
     *  (bimode): disables the choice-exception write-back mask. */
    std::vector<std::uint32_t> alwaysChoiceMask;
    /** All-ones on lanes running the partialUpdate=false ablation
     *  (bimode, gskew): enables the unselected/dissenting-bank
     *  write-back. */
    std::vector<std::uint32_t> bothBanksMask;
    /** @name Second pc-indexed read (tournament's bimodal component) */
    std::vector<std::uint32_t> auxBase;      ///< offset in choiceArena
    std::vector<std::uint32_t> auxAddrMask;  ///< pc index mask
    std::vector<std::uint32_t> auxMaxValue;  ///< counter saturation
    std::vector<std::uint32_t> auxThreshold; ///< predict taken when >
    /** @name Tagged-probe constants (yags) */
    std::vector<std::uint32_t> tagShift; ///< addr right-shift for the tag
    std::vector<std::uint32_t> tagMask;  ///< tag-field mask
    /** @name Skew-hash constants (gskew) */
    /** Mask of the wide (bankIndexBits + 8) address field the skew
     *  hashes mix; builders guarantee it fits 31 bits so the bank-2
     *  add cannot carry past the 32-bit lane. */
    std::vector<std::uint32_t> hashFieldMask;
    /** Per-lane fold width (= bankIndexBits): the 64-bit product is
     *  xor-folded in foldShift-bit chunks into addrMask. */
    std::vector<std::uint32_t> foldShift;
    /**@}*/

    /** gskew only: fold iterations covering the widest lane's 64-bit
     *  product, max over lanes of ceil(64 / foldShift[l]); uniform
     *  across the vector (narrow lanes fold zeros after their own
     *  chunks run out). */
    std::uint32_t foldRounds = 0;

    /** Global-history registers, live kernel state (updated per
     *  branch, stored back to the predictors afterwards). Unused
     *  when localHistory. */
    std::vector<std::uint32_t> hist;

    /** Per-lane misprediction counts over the measured region
     *  (lanes elements, not padded). */
    std::vector<std::uint64_t> mispredictions;

    std::size_t
    paddedLanes() const
    {
        return laneBase.size();
    }
};

/**
 * Flattens @p bank into SIMD lane state, copying counters/history
 * out of the predictors. The predictors themselves are not modified
 * until storeSimdBank(). Returns std::nullopt when the bank cannot
 * be expressed (arena over 2^31 elements, history wider than the
 * 32-bit lane math, mixed history scopes).
 */
std::optional<SimdBankState> buildSimdBank(
    std::vector<BimodalPredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<GsharePredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<TwoLevelPredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<BiModePredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<AgreePredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<TournamentPredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<GskewPredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<YagsPredictor> &bank);
std::optional<SimdBankState> buildSimdBank(
    std::vector<FilterPredictor> &bank);

namespace detail
{

/**
 * Records (once per process per distinct what/reason pair, at
 * verbose/debug level) that a bank fell back to the scalar loop, so
 * perf regressions from ineligible shapes are diagnosable instead of
 * invisible.
 *
 * @param what the bank's kind/shape, e.g. a predictor name()
 * @param reason why the SIMD flattening refused it
 */
void logSimdBankFallback(const std::string &what, const char *reason);

} // namespace detail

/** Catch-all: predictor kinds without a SIMD flattening run the
 *  scalar bank. */
template <typename Pred>
std::optional<SimdBankState>
buildSimdBank(std::vector<Pred> &bank)
{
    detail::logSimdBankFallback(
        bank.empty() ? "<empty bank>" : bank.front().name(),
        "kind has no SIMD flattening");
    return std::nullopt;
}

/** Stores arena state back into the predictors a buildSimdBank()
 *  overload flattened; @p bank must be the same bank. */
void storeSimdBank(const SimdBankState &state,
                   std::vector<BimodalPredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<GsharePredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<TwoLevelPredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<BiModePredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<AgreePredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<TournamentPredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<GskewPredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<YagsPredictor> &bank);
void storeSimdBank(const SimdBankState &state,
                   std::vector<FilterPredictor> &bank);

template <typename Pred>
void
storeSimdBank(const SimdBankState &, std::vector<Pred> &)
{
}

/**
 * Per-branch accounting sink of a probed SIMD replay (sim/probe.hh):
 * a per-lane uint32 misprediction counter block the kernels
 * scatter-add into with the same gather/scatter machinery as the
 * counter arenas.
 *
 * Layout mirrors SimdBankState::counters: lane l's staticCount
 * counters start at laneBase[l], each lane's block preceded by a
 * kSimdLaneStagger gap (the probe writes are pc-indexed like the
 * choice arenas, so the same 4K-aliasing hazard applies). laneBase
 * is padded to the widest backend group, with padding lanes
 * replicating lane 0 — their gathers stay in valid memory and their
 * results are masked off by scatter32's active count, exactly the
 * counter-arena convention.
 *
 * Counters are 32-bit (the gather/scatter element width);
 * buildSimdBankProbe() refuses traces long enough to overflow one,
 * and the caller merges the block into its per-lane uint64 totals
 * after the pass.
 */
struct SimdBankProbe
{
    /** Per-record static-branch ids (PcIndex::idData()). */
    const std::uint32_t *ids = nullptr;
    /** Counters per lane block. */
    std::size_t staticCount = 0;
    /** Staggered lane-major counter blocks, zeroed at build. */
    std::vector<std::uint32_t> arena;
    /** Per-lane block offsets, padded like SimdBankState::laneBase. */
    std::vector<std::uint32_t> laneBase;
};

/**
 * Sizes @p probe's arena for @p state's lane geometry. Returns false
 * — the caller then runs the probed scalar bank — when the arena
 * would exceed the 32-bit gather index space or @p total branches
 * could overflow a lane's uint32 counter.
 *
 * @param ids per-record ids for the replayed trace
 * @param staticCount distinct static branches (ids are < this)
 */
bool buildSimdBankProbe(SimdBankProbe &probe, const std::uint32_t *ids,
                        std::size_t staticCount,
                        const SimdBankState &state, std::size_t total);

/**
 * Replays @p total branches (of which the first @p warmup train
 * without being scored) through @p state on the backend for
 * @p tier.
 *
 * @param pcs the packed branch addresses
 * @param words the packed taken bitmap
 * @param probe per-branch accounting sink, or nullptr for the
 *        unprobed kernels (the probed instantiations are separate,
 *        so unprobed replays pay nothing for the hook)
 * @return false when @p tier has no backend in this binary (the
 *         caller falls back to the scalar bank); Scalar and Auto
 *         always return false — resolve the tier first.
 */
bool runSimdBank(SimdBankState &state, KernelTier tier,
                 const std::uint64_t *pcs, const std::uint64_t *words,
                 std::size_t total, std::size_t warmup,
                 SimdBankProbe *probe = nullptr);

namespace detail
{

/** Per-ISA kernel entry points; each is defined in its own TU
 *  compiled with that ISA's flags (see src/sim/CMakeLists.txt). */
void simdBankReplayAvx2(SimdBankState &state, const std::uint64_t *pcs,
                        const std::uint64_t *words, std::size_t total,
                        std::size_t warmup, SimdBankProbe *probe);
void simdBankReplayAvx512(SimdBankState &state, const std::uint64_t *pcs,
                          const std::uint64_t *words, std::size_t total,
                          std::size_t warmup, SimdBankProbe *probe);
void simdBankReplayNeon(SimdBankState &state, const std::uint64_t *pcs,
                        const std::uint64_t *words, std::size_t total,
                        std::size_t warmup, SimdBankProbe *probe);

/**
 * Records (once per process per distinct what/reason pair, at
 * verbose/debug level) that a *probed* replay ran the scalar bank
 * although a SIMD tier was resolved — the probed mirror of
 * logSimdBankFallback(), so per-branch analysis users know which
 * path produced their counts (the counts are bit-identical either
 * way; only throughput differs).
 */
void logProbedBankFallback(const std::string &what, const char *reason);

} // namespace detail

} // namespace bpsim

#endif // BPSIM_SIM_SIMD_SIMD_BANK_HH
