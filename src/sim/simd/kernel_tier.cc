#include "sim/simd/kernel_tier.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** True when the backend for @p tier was compiled into this binary
 *  (per-TU ISA flags, src/sim/CMakeLists.txt) and the host CPU can
 *  execute it. */
bool
tierRunnable(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Scalar:
        return true;
#if defined(BPSIM_HAVE_AVX2)
      case KernelTier::AVX2:
        return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(BPSIM_HAVE_AVX512)
      case KernelTier::AVX512:
        return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(BPSIM_HAVE_NEON)
      case KernelTier::NEON:
        // NEON is architecturally guaranteed on AArch64, which is the
        // only target the backend is compiled for.
        return true;
#endif
      default:
        return false;
    }
}

/** The process-wide --kernel-tier override; Auto = none. */
KernelTier overrideTier = KernelTier::Auto;

/** $BPSIM_KERNEL_TIER + detection, resolved once. */
KernelTier
detectDefaultTier()
{
    if (const char *env = std::getenv("BPSIM_KERNEL_TIER")) {
        KernelTier fromEnv;
        if (parseKernelTier(env, fromEnv)) {
            if (fromEnv != KernelTier::Auto)
                return fromEnv;
        } else {
            BPSIM_WARN("BPSIM_KERNEL_TIER='"
                       << env << "' is not a tier name "
                       << "(auto, scalar, neon, avx2, avx512); "
                       << "using auto-detection");
        }
    }
    return availableKernelTiers().front();
}

} // namespace

const char *
kernelTierName(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Auto:
        return "auto";
      case KernelTier::Scalar:
        return "scalar";
      case KernelTier::NEON:
        return "neon";
      case KernelTier::AVX2:
        return "avx2";
      case KernelTier::AVX512:
        return "avx512";
    }
    return "scalar";
}

bool
parseKernelTier(const std::string &name, KernelTier &out)
{
    for (const KernelTier tier :
         {KernelTier::Auto, KernelTier::Scalar, KernelTier::NEON,
          KernelTier::AVX2, KernelTier::AVX512}) {
        if (name == kernelTierName(tier)) {
            out = tier;
            return true;
        }
    }
    return false;
}

bool
kernelTierAvailable(KernelTier tier)
{
    return tier != KernelTier::Auto && tierRunnable(tier);
}

std::vector<KernelTier>
availableKernelTiers()
{
    std::vector<KernelTier> tiers;
    for (const KernelTier tier : {KernelTier::AVX512, KernelTier::AVX2,
                                  KernelTier::NEON}) {
        if (tierRunnable(tier))
            tiers.push_back(tier);
    }
    tiers.push_back(KernelTier::Scalar);
    return tiers;
}

void
setKernelTierOverride(KernelTier tier)
{
    overrideTier = tier;
}

KernelTier
resolveKernelTier(KernelTier requested)
{
    if (requested == KernelTier::Auto)
        requested = overrideTier;
    if (requested == KernelTier::Auto) {
        static const KernelTier defaulted = detectDefaultTier();
        requested = defaulted;
    }
    if (!tierRunnable(requested)) {
        // Warn once per distinct degradation, not once per bank: a
        // sweep of ten thousand fused banks should not emit ten
        // thousand lines.
        static KernelTier warned = KernelTier::Auto;
        const KernelTier best = availableKernelTiers().front();
        if (warned != requested) {
            warned = requested;
            BPSIM_WARN("kernel tier '" << kernelTierName(requested)
                       << "' is not available in this binary on this "
                       << "CPU; using '" << kernelTierName(best) << "'");
        }
        return best;
    }
    return requested;
}

} // namespace bpsim
