/**
 * @file
 * NEON backend: 4 lanes per step.
 *
 * AArch64 only (src/sim/CMakeLists.txt), where NEON is architectural
 * — no runtime check needed beyond the tier machinery. NEON has no
 * gather instruction, so gathers are emulated with per-lane scalar
 * loads; the lane axis still pays for itself through the branchless
 * vector counter/history math.
 */

#include "sim/simd/simd_bank.hh"

#if defined(BPSIM_HAVE_NEON)

#include <arm_neon.h>

#include "sim/simd/simd_kernel.hh"

namespace bpsim
{

namespace detail
{

namespace
{

struct NeonBackend
{
    using V = uint32x4_t;
    static constexpr std::size_t kLanes = 4;

    static V load(const std::uint32_t *p) { return vld1q_u32(p); }
    static void store(std::uint32_t *p, V v) { vst1q_u32(p, v); }
    static V bcast(std::uint32_t x) { return vdupq_n_u32(x); }
    static V zero() { return vdupq_n_u32(0); }
    static V and_(V a, V b) { return vandq_u32(a, b); }
    static V or_(V a, V b) { return vorrq_u32(a, b); }
    static V xor_(V a, V b) { return veorq_u32(a, b); }
    static V add(V a, V b) { return vaddq_u32(a, b); }
    static V sub(V a, V b) { return vsubq_u32(a, b); }
    static V sll1(V a) { return vshlq_n_u32(a, 1); }
    static V
    sllv(V a, V n)
    {
        return vshlq_u32(a, vreinterpretq_s32_u32(n));
    }
    /** vshl with a negated count is NEON's right shift. */
    static V
    srlv(V a, V n)
    {
        return vshlq_u32(a, vnegq_s32(vreinterpretq_s32_u32(n)));
    }
    /** ~a & b (vbic computes b & ~a). */
    static V andnot(V a, V b) { return vbicq_u32(b, a); }
    /** Signed compare like the x86 backends; counter values are
     *  small positives, so the signedness never matters. */
    static V
    cmpgt(V a, V b)
    {
        return vcgtq_s32(vreinterpretq_s32_u32(a),
                         vreinterpretq_s32_u32(b));
    }
    static V cmpeq(V a, V b) { return vceqq_u32(a, b); }
    static V mullo(V a, V b) { return vmulq_u32(a, b); }
    /** High 32 bits of the unsigned 32x32 product: widening multiply
     *  per half, then narrow each 64-bit product by 32. */
    static V
    mulhi(V a, V b)
    {
        const uint64x2_t lo =
            vmull_u32(vget_low_u32(a), vget_low_u32(b));
        const uint64x2_t hi =
            vmull_u32(vget_high_u32(a), vget_high_u32(b));
        return vcombine_u32(vshrn_n_u64(lo, 32), vshrn_n_u64(hi, 32));
    }
    /** m ? b : a (bitwise select; m is all-ones per lane). */
    static V blend(V a, V b, V m) { return vbslq_u32(m, b, a); }
    static V
    gather32(const std::uint32_t *base, V off)
    {
        alignas(16) std::uint32_t o[4];
        vst1q_u32(o, off);
        const std::uint32_t r[4] = {base[o[0]], base[o[1]], base[o[2]],
                                    base[o[3]]};
        return vld1q_u32(r);
    }
    /** Scalar-emulated scatter over the active lanes. */
    static void
    scatter32(std::uint32_t *base, V off, V val, std::size_t active)
    {
        alignas(16) std::uint32_t o[4];
        alignas(16) std::uint32_t v[4];
        vst1q_u32(o, off);
        vst1q_u32(v, val);
        for (std::size_t k = 0; k < active; ++k)
            base[o[k]] = v[k];
    }
};

} // namespace

void
simdBankReplayNeon(SimdBankState &state, const std::uint64_t *pcs,
                   const std::uint64_t *words, std::size_t total,
                   std::size_t warmup, SimdBankProbe *probe)
{
    dispatchSimdBankKernel<NeonBackend>(state, pcs, words, total,
                                        warmup, probe);
}

} // namespace detail

} // namespace bpsim

#endif // BPSIM_HAVE_NEON
