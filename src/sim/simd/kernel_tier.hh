/**
 * @file
 * Kernel-tier selection for the vectorized banked replay path.
 *
 * The banked replay kernel (sim/replay_kernel.hh) has one scalar
 * implementation — the bit-identity oracle — and a set of
 * SIMD-vectorized backends (sim/simd/) that step 4/8/16 bank lanes
 * per instruction. A KernelTier names one of those backends; which
 * tiers exist in a given binary depends on how it was compiled
 * (per-TU ISA flags, see src/sim/CMakeLists.txt), and which of the
 * compiled tiers may actually run depends on the host CPU.
 *
 * Selection is resolved once per process (campaigns inherit it for
 * every fused bank):
 *
 *   1. an explicit SimConfig::kernelTier other than Auto wins
 *      (tests use this to force each tier in turn);
 *   2. else a process-wide override set from --kernel-tier
 *      (setKernelTierOverride());
 *   3. else the BPSIM_KERNEL_TIER environment variable;
 *   4. else the highest tier both compiled in and supported by the
 *      host CPU.
 *
 * A forced tier that is not available degrades to the best available
 * one with a warning rather than failing: a campaign asked to run
 * must run, and every tier is bit-identical by contract anyway.
 */

#ifndef BPSIM_SIM_SIMD_KERNEL_TIER_HH
#define BPSIM_SIM_SIMD_KERNEL_TIER_HH

#include <string>
#include <vector>

namespace bpsim
{

/** One replay-kernel backend. Order is preference order: higher
 *  enumerators are preferred by auto-detection. */
enum class KernelTier
{
    /** Defer to the process-wide selection (override, environment,
     *  CPU detection). Never reported in results. */
    Auto,
    /** The lane-major scalar bank loop — the oracle every vector
     *  tier must match bit-for-bit. Always available. */
    Scalar,
    /** 4 lanes per step via ARM NEON. */
    NEON,
    /** 8 lanes per step via AVX2 gathers. */
    AVX2,
    /** 16 lanes per step via AVX-512F. */
    AVX512,
};

/** Lower-case tier name as used by --kernel-tier, BPSIM_KERNEL_TIER
 *  and the JSON timing output ("auto", "scalar", "neon", "avx2",
 *  "avx512"). */
const char *kernelTierName(KernelTier tier);

/**
 * Parses a tier name (case-sensitive, the kernelTierName() forms).
 * @return true and sets @p out on success; false on an unknown name.
 */
bool parseKernelTier(const std::string &name, KernelTier &out);

/** Tiers this binary can actually run on this host, best first;
 *  always ends with Scalar. */
std::vector<KernelTier> availableKernelTiers();

/** True when @p tier is compiled in and supported by the host CPU
 *  (Scalar always is; Auto never is). */
bool kernelTierAvailable(KernelTier tier);

/**
 * Sets the process-wide tier override (--kernel-tier). Auto clears
 * the override back to environment/detection. Not thread-safe
 * against concurrent resolveKernelTier() calls — drivers set it
 * during argument parsing, before any campaign runs.
 */
void setKernelTierOverride(KernelTier tier);

/**
 * Resolves @p requested to the tier a bank replay should run:
 * a non-Auto request, the override, $BPSIM_KERNEL_TIER and CPU
 * detection, in that order (see the file comment), degraded to the
 * best available tier when the chosen one cannot run here.
 * Never returns Auto.
 */
KernelTier resolveKernelTier(KernelTier requested = KernelTier::Auto);

} // namespace bpsim

#endif // BPSIM_SIM_SIMD_KERNEL_TIER_HH
