/**
 * @file
 * AVX2 backend: 8 lanes per step, counters gathered with vpgatherdd.
 *
 * Compiled with -mavx2 in this TU only (src/sim/CMakeLists.txt);
 * nothing here may be called without a runtime CPU check
 * (kernel_tier.cc does it).
 */

#include "sim/simd/simd_bank.hh"

#if defined(BPSIM_HAVE_AVX2)

#include <immintrin.h>

#include "sim/simd/simd_kernel.hh"

namespace bpsim
{

namespace detail
{

namespace
{

struct Avx2Backend
{
    using V = __m256i;
    static constexpr std::size_t kLanes = 8;

    static V
    load(const std::uint32_t *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void
    store(std::uint32_t *p, V v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static V
    bcast(std::uint32_t x)
    {
        return _mm256_set1_epi32(static_cast<int>(x));
    }
    static V zero() { return _mm256_setzero_si256(); }
    static V and_(V a, V b) { return _mm256_and_si256(a, b); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }
    static V xor_(V a, V b) { return _mm256_xor_si256(a, b); }
    static V add(V a, V b) { return _mm256_add_epi32(a, b); }
    static V sub(V a, V b) { return _mm256_sub_epi32(a, b); }
    static V sll1(V a) { return _mm256_slli_epi32(a, 1); }
    static V sllv(V a, V n) { return _mm256_sllv_epi32(a, n); }
    static V srlv(V a, V n) { return _mm256_srlv_epi32(a, n); }
    /** ~a & b. */
    static V andnot(V a, V b) { return _mm256_andnot_si256(a, b); }
    static V cmpgt(V a, V b) { return _mm256_cmpgt_epi32(a, b); }
    static V cmpeq(V a, V b) { return _mm256_cmpeq_epi32(a, b); }
    static V mullo(V a, V b) { return _mm256_mullo_epi32(a, b); }
    /** High 32 bits of the unsigned 32x32 product. vpmuludq covers
     *  the even lanes; the odd lanes are shifted down and multiplied
     *  the same way, then the two 64-bit halves recombine. */
    static V
    mulhi(V a, V b)
    {
        const V even = _mm256_mul_epu32(a, b);
        const V odd = _mm256_mul_epu32(_mm256_srli_epi64(a, 32),
                                       _mm256_srli_epi64(b, 32));
        return _mm256_or_si256(
            _mm256_srli_epi64(even, 32),
            _mm256_and_si256(
                odd, _mm256_set1_epi64x(
                         static_cast<long long>(0xFFFFFFFF00000000ULL))));
    }
    /** m ? b : a; cmpgt masks are all-ones per 32-bit lane, so the
     *  byte-granular blend is exact. */
    static V blend(V a, V b, V m) { return _mm256_blendv_epi8(a, b, m); }
    static V
    gather32(const std::uint32_t *base, V off)
    {
        return _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(base), off, 4);
    }
    /** AVX2 has no scatter; extract and store the active lanes
     *  scalar-wise. */
    static void
    scatter32(std::uint32_t *base, V off, V val, std::size_t active)
    {
        alignas(32) std::uint32_t o[kLanes];
        alignas(32) std::uint32_t v[kLanes];
        store(o, off);
        store(v, val);
        for (std::size_t k = 0; k < active; ++k)
            base[o[k]] = v[k];
    }
};

} // namespace

void
simdBankReplayAvx2(SimdBankState &state, const std::uint64_t *pcs,
                   const std::uint64_t *words, std::size_t total,
                   std::size_t warmup, SimdBankProbe *probe)
{
    dispatchSimdBankKernel<Avx2Backend>(state, pcs, words, total,
                                        warmup, probe);
}

} // namespace detail

} // namespace bpsim

#endif // BPSIM_HAVE_AVX2
