/**
 * @file
 * The ISA-generic vectorized bank kernel.
 *
 * This header is included ONLY by the per-ISA backend TUs
 * (simd_avx2.cc, simd_avx512.cc, simd_neon.cc), each compiled with
 * its own target flags (src/sim/CMakeLists.txt); including it from
 * generically-compiled code would let target-specific instructions
 * leak into the generic binary.
 *
 * Vectorization axis: lanes, not branches. Each trace branch is
 * consumed serially — gather every lane's counter, predict, saturate,
 * write back, shift every lane's history — before the next branch is
 * touched. A lane therefore performs the exact scalar sequence of
 * loads and stores it would perform alone, in the same order, which
 * is what makes every tier bit-identical to the scalar oracle *by
 * construction*: there is no reconvergence step to get wrong. The
 * speedup comes from the lane axis alone (one gather serves 4/8/16
 * configurations) — the serial chain through each lane's history
 * register and tables is preserved untouched.
 *
 * Two-gather kinds (bi-mode, agree) prepend a per-branch choice
 * gather from a second, unpacked arena; its value steers the
 * direction gather (bank-select blend) or flips the prediction
 * (agreement XNOR), and the update policies become branchless
 * write-back masks. See SimdChoiceKind in simd_bank.hh.
 *
 * A Backend provides a 32-bit-lane vector type plus the dozen ops
 * the kernel body needs:
 *
 *   using V; kLanes;
 *   load/store (uint32 array <-> V), bcast, zero
 *   and_/or_/xor_/andnot (~a & b), add/sub
 *   sll1 (<<1), sllv/srlv (per-lane shifts)
 *   cmpgt (signed, all-ones mask result), blend(a, b, m) = m ? b : a
 *   gather32 (uint32 base, element offsets)
 *   scatter32 (uint32 base, offsets, values, active lane count —
 *              lanes >= active must not be written: they are padding
 *              replicas of lane 0 and would corrupt its region)
 *
 * All index math is unsigned 32-bit: tables are capped at 2^28
 * entries (checkedTableEntries) and buildSimdBank() rejects arenas
 * of 2^31+ elements, so offsets stay positive in the signed-index
 * gathers/scatters and lane-local shifts cannot overflow.
 */

#ifndef BPSIM_SIM_SIMD_SIMD_KERNEL_HH
#define BPSIM_SIM_SIMD_SIMD_KERNEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/simd/simd_bank.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{

namespace detail
{

/**
 * Steps every lane of @p state through branches [0, total), scoring
 * mispredictions from @p warmup on.
 *
 * @tparam B           the ISA backend
 * @tparam Choice      two-gather kinds (simd_bank.hh): BiMode reads a
 *                     choice counter whose sign blend-selects between
 *                     two direction banks; Agree reads a biasing word
 *                     that flips the counter's meaning to agreement
 * @tparam BothBanks   bi-mode ablation: some lane disables partial
 *                     update, so the unselected bank is also stepped
 *                     (per-lane bothBanksMask keeps canonical lanes
 *                     partial). Off, the second bank is never touched.
 * @tparam LocalHistory per-address first level (PAg/PAs): history is
 *                     gathered/scattered per branch instead of
 *                     carried in a register
 * @tparam Packed      counters are bit-packed into arena words (see
 *                     SimdBankState::packed); false runs the
 *                     one-counter-per-word layout without the slot
 *                     math
 */
template <typename B, SimdChoiceKind Choice, bool BothBanks,
          bool LocalHistory, bool Packed>
void
runSimdBankKernel(SimdBankState &state, const std::uint64_t *pcs,
                  const std::uint64_t *words, std::size_t total,
                  std::size_t warmup)
{
    using V = typename B::V;

    const std::size_t lanes = state.lanes;
    std::uint32_t *arena = state.counters.data();
    std::uint32_t *localHist =
        state.localHist.empty() ? nullptr : state.localHist.data();
    std::uint32_t *choiceArena =
        state.choiceArena.empty() ? nullptr : state.choiceArena.data();

    // Same block geometry as the scalar bank: lane groups run
    // lane-major within 8-word blocks, so each block's pcs and
    // bitmap words stay L1-hot while every group consumes them.
    constexpr std::size_t kBlockBranches =
        8 * PackedTrace::kWordBits;

    alignas(64) std::uint32_t valBuf[B::kLanes];

    for (std::size_t blockFrom = 0; blockFrom < total;
         blockFrom += kBlockBranches) {
        const std::size_t blockTo =
            std::min(total, blockFrom + kBlockBranches);
        const std::size_t scoreFrom =
            std::clamp(warmup, blockFrom, blockTo);

        for (std::size_t g0 = 0; g0 < lanes; g0 += B::kLanes) {
            const std::size_t active =
                std::min<std::size_t>(B::kLanes, lanes - g0);

            const V laneBase = B::load(&state.laneBase[g0]);
            const V addrMask = B::load(&state.addrMask[g0]);
            const V histShift = B::load(&state.histShift[g0]);
            const V histMask = B::load(&state.histMask[g0]);
            [[maybe_unused]] const V localBase =
                B::load(&state.localBase[g0]);
            [[maybe_unused]] const V localMask =
                B::load(&state.localMask[g0]);
            const V maxValue = B::load(&state.maxValue[g0]);
            const V threshold = B::load(&state.threshold[g0]);
            [[maybe_unused]] const V wordShift =
                B::load(&state.wordShift[g0]);
            [[maybe_unused]] const V slotIdxMask =
                B::load(&state.slotIdxMask[g0]);
            [[maybe_unused]] const V slotShift =
                B::load(&state.slotShift[g0]);
            [[maybe_unused]] const V fieldMask =
                B::load(&state.fieldMask[g0]);
            [[maybe_unused]] const V choiceBase =
                B::load(&state.choiceBase[g0]);
            [[maybe_unused]] const V choiceAddrMask =
                B::load(&state.choiceAddrMask[g0]);
            [[maybe_unused]] const V choiceMaxValue =
                B::load(&state.choiceMaxValue[g0]);
            [[maybe_unused]] const V choiceThreshold =
                B::load(&state.choiceThreshold[g0]);
            [[maybe_unused]] const V bankStride =
                B::load(&state.bankStride[g0]);
            [[maybe_unused]] const V alwaysChoiceMask =
                B::load(&state.alwaysChoiceMask[g0]);
            [[maybe_unused]] const V bothBanksMask =
                B::load(&state.bothBanksMask[g0]);
            const V one = B::bcast(1);
            const V zero = B::zero();
            [[maybe_unused]] const V two = B::bcast(2);
            [[maybe_unused]] const V ones = B::bcast(0xFFFFFFFFu);

            V hist = B::load(&state.hist[g0]);
            // Block-local 32-bit misprediction accumulator: a block
            // holds at most 512 branches, far below overflow; it is
            // widened into the per-lane uint64 totals below.
            V misses = zero;

            // The warmup/measured split is at most one boundary per
            // block; the score test is a perfectly-predicted branch.
            for (std::size_t j = blockFrom; j < blockTo; ++j) {
                const auto addr =
                    static_cast<std::uint32_t>(pcs[j] >> 2);
                const bool taken =
                    (words[j / PackedTrace::kWordBits] >>
                     (j % PackedTrace::kWordBits)) & 1;
                const V addrV = B::bcast(addr);
                const V takenM =
                    B::bcast(taken ? 0xFFFFFFFFu : 0u);

                // Stage one of the two-gather kinds: the pc-indexed
                // choice word (bi-mode choice counter / agree biasing
                // bits), read before the direction bank so its value
                // can steer the second gather.
                [[maybe_unused]] V choiceOff{}, choiceVal{};
                if constexpr (Choice != SimdChoiceKind::None) {
                    choiceOff = B::add(
                        choiceBase, B::and_(addrV, choiceAddrMask));
                    choiceVal = B::gather32(choiceArena, choiceOff);
                }

                V h;
                if constexpr (LocalHistory) {
                    h = B::gather32(
                        localHist,
                        B::add(localBase, B::and_(addrV, localMask)));
                } else {
                    h = hist;
                }

                // idx = ((addr & addrMask) << histShift) ^ hist —
                // the unified formula of simd_bank.hh. hist is kept
                // masked at every update, so no mask is needed here.
                const V index = B::xor_(
                    B::sllv(B::and_(addrV, addrMask), histShift), h);
                V offset, counter;
                [[maybe_unused]] V slot{}, word{}, wordIdx{},
                    choiceM{};
                if constexpr (Choice == SimdChoiceKind::BiMode) {
                    // The choice sign picks the direction bank: the
                    // taken bank sits bankStride words past the
                    // not-taken bank, so the select is a masked add.
                    choiceM = B::cmpgt(choiceVal, choiceThreshold);
                    wordIdx = B::srlv(index, wordShift);
                    offset = B::add(
                        B::add(laneBase,
                               B::and_(choiceM, bankStride)),
                        wordIdx);
                    slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    word = B::gather32(arena, offset);
                    counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                } else if constexpr (Packed) {
                    // The counter lives in a bit slot of a packed
                    // word (simd_bank.hh): locate word and slot,
                    // then extract.
                    offset = B::add(
                        laneBase, B::srlv(index, wordShift));
                    slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    word = B::gather32(arena, offset);
                    counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                } else {
                    offset = B::add(laneBase, index);
                    counter = B::gather32(arena, offset);
                }

                V predicted;
                [[maybe_unused]] V validM{}, biasM{};
                if constexpr (Choice == SimdChoiceKind::Agree) {
                    // Choice word: bit 0 = valid, bit 1 = biasing
                    // bit; an unseen branch defaults to a taken bias
                    // (agree.hh). The counter predicts agreement, so
                    // the direction is counter-sign XNOR bias.
                    validM = B::cmpgt(B::and_(choiceVal, one), zero);
                    biasM = B::cmpgt(B::and_(choiceVal, two), zero);
                    const V oldBiasM = B::blend(ones, biasM, validM);
                    predicted = B::andnot(
                        B::xor_(B::cmpgt(counter, threshold),
                                oldBiasM),
                        ones);
                } else {
                    predicted = B::cmpgt(counter, threshold);
                }
                if (j >= scoreFrom) {
                    // predicted ^ takenM is all-ones (-1) exactly on
                    // a mispredicting lane; subtracting adds 1.
                    misses = B::sub(
                        misses, B::xor_(predicted, takenM));
                }

                // The counter trains toward the outcome — except for
                // agree, where it trains toward agreement with the
                // post-capture bias (taken XNOR newBias).
                [[maybe_unused]] V newBiasM{};
                V trainM;
                if constexpr (Choice == SimdChoiceKind::Agree) {
                    // First encounter captures the outcome as bias.
                    newBiasM = B::blend(takenM, biasM, validM);
                    trainM = B::andnot(
                        B::xor_(takenM, newBiasM), ones);
                } else {
                    trainM = takenM;
                }

                // Branchless saturate toward the training direction:
                // both candidates, then select by the mask (cmpgt
                // masks are -1, so subtracting/adding them steps by
                // one).
                const V up = B::sub(counter, B::cmpgt(maxValue, counter));
                const V down = B::add(counter, B::cmpgt(counter, zero));
                const V updated = B::blend(down, up, trainM);

                // Store back (packed: re-insert the stepped counter
                // into its slot first). Active lanes hit disjoint
                // regions of the arena, so order within a branch is
                // immaterial; padding lanes (>= active) are never
                // written.
                V rewritten;
                if constexpr (Packed) {
                    rewritten = B::or_(
                        B::andnot(B::sllv(fieldMask, slot), word),
                        B::sllv(updated, slot));
                } else {
                    rewritten = updated;
                }
                B::scatter32(arena, offset, rewritten, active);

                if constexpr (Choice == SimdChoiceKind::BiMode &&
                              BothBanks) {
                    // Partial-update ablation: step the UNselected
                    // bank's counter too. The two banks are disjoint
                    // word ranges, so this RMW cannot collide with
                    // the selected-bank scatter above. Lanes still on
                    // the paper policy blend back the old value
                    // (bothBanksMask is per-lane: fused banks may mix
                    // policies).
                    const V otherOff = B::add(
                        B::add(laneBase,
                               B::andnot(choiceM, bankStride)),
                        wordIdx);
                    const V otherWord = B::gather32(arena, otherOff);
                    const V otherCnt = B::and_(
                        B::srlv(otherWord, slot), fieldMask);
                    const V oUp = B::sub(
                        otherCnt, B::cmpgt(maxValue, otherCnt));
                    const V oDown = B::add(
                        otherCnt, B::cmpgt(otherCnt, zero));
                    const V oNew = B::blend(
                        otherCnt, B::blend(oDown, oUp, takenM),
                        bothBanksMask);
                    B::scatter32(
                        arena, otherOff,
                        B::or_(B::andnot(B::sllv(fieldMask, slot),
                                         otherWord),
                               B::sllv(oNew, slot)),
                        active);
                }

                if constexpr (Choice == SimdChoiceKind::BiMode) {
                    // Choice table trains toward the outcome, EXCEPT
                    // when it picked the "wrong" bank but that bank
                    // still predicted correctly (the paper's choice
                    // exception; alwaysChoiceMask lanes run the
                    // always-update ablation instead).
                    const V cUp = B::sub(
                        choiceVal,
                        B::cmpgt(choiceMaxValue, choiceVal));
                    const V cDown = B::add(
                        choiceVal, B::cmpgt(choiceVal, zero));
                    const V cStepped = B::blend(cDown, cUp, takenM);
                    // keep = ~always & (choice != taken) &
                    //        ~(predicted != taken)
                    const V keepM = B::andnot(
                        alwaysChoiceMask,
                        B::andnot(B::xor_(predicted, takenM),
                                  B::xor_(choiceM, takenM)));
                    B::scatter32(choiceArena, choiceOff,
                                 B::blend(cStepped, choiceVal, keepM),
                                 active);
                } else if constexpr (Choice == SimdChoiceKind::Agree) {
                    // Re-pack valid=1 plus the (possibly captured)
                    // biasing bit.
                    B::scatter32(choiceArena, choiceOff,
                                 B::or_(one, B::and_(newBiasM, two)),
                                 active);
                }

                const V takenBit = B::and_(takenM, one);
                if constexpr (LocalHistory) {
                    // The index recomputation is CSE'd against the
                    // gather above.
                    const V localIdx = B::add(
                        localBase, B::and_(addrV, localMask));
                    const V shifted = B::and_(
                        B::or_(B::sll1(h), takenBit), histMask);
                    B::scatter32(localHist, localIdx, shifted, active);
                } else {
                    hist = B::and_(
                        B::or_(B::sll1(hist), takenBit), histMask);
                }
            }

            B::store(&state.hist[g0], hist);
            B::store(valBuf, misses);
            for (std::size_t k = 0; k < active; ++k)
                state.mispredictions[g0 + k] += valBuf[k];
        }
    }
}

/** Instantiates the kernel matching @p state's choice, history and
 *  packing flavors for backend @p B — the shared dispatch of every
 *  per-ISA entry point. Only the combinations a builder can produce
 *  are instantiated: two-gather kinds are always packed with a global
 *  (or no) history register, and only bi-mode has a second bank. */
template <typename B>
void
dispatchSimdBankKernel(SimdBankState &state, const std::uint64_t *pcs,
                       const std::uint64_t *words, std::size_t total,
                       std::size_t warmup)
{
    constexpr auto kNone = SimdChoiceKind::None;
    switch (state.choiceKind) {
      case SimdChoiceKind::BiMode:
        if (state.updateBothBanks) {
            runSimdBankKernel<B, SimdChoiceKind::BiMode, true, false,
                              true>(state, pcs, words, total, warmup);
        } else {
            runSimdBankKernel<B, SimdChoiceKind::BiMode, false, false,
                              true>(state, pcs, words, total, warmup);
        }
        return;
      case SimdChoiceKind::Agree:
        runSimdBankKernel<B, SimdChoiceKind::Agree, false, false,
                          true>(state, pcs, words, total, warmup);
        return;
      case SimdChoiceKind::None:
        break;
    }
    if (state.localHistory) {
        if (state.packed) {
            runSimdBankKernel<B, kNone, false, true, true>(
                state, pcs, words, total, warmup);
        } else {
            runSimdBankKernel<B, kNone, false, true, false>(
                state, pcs, words, total, warmup);
        }
    } else if (state.packed) {
        runSimdBankKernel<B, kNone, false, false, true>(
            state, pcs, words, total, warmup);
    } else {
        runSimdBankKernel<B, kNone, false, false, false>(
            state, pcs, words, total, warmup);
    }
}

} // namespace detail

} // namespace bpsim

#endif // BPSIM_SIM_SIMD_SIMD_KERNEL_HH
