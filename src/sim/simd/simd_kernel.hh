/**
 * @file
 * The ISA-generic vectorized bank kernel.
 *
 * This header is included ONLY by the per-ISA backend TUs
 * (simd_avx2.cc, simd_avx512.cc, simd_neon.cc), each compiled with
 * its own target flags (src/sim/CMakeLists.txt); including it from
 * generically-compiled code would let target-specific instructions
 * leak into the generic binary.
 *
 * Vectorization axis: lanes, not branches. Each trace branch is
 * consumed serially — gather every lane's counter, predict, saturate,
 * write back, shift every lane's history — before the next branch is
 * touched. A lane therefore performs the exact scalar sequence of
 * loads and stores it would perform alone, in the same order, which
 * is what makes every tier bit-identical to the scalar oracle *by
 * construction*: there is no reconvergence step to get wrong. The
 * speedup comes from the lane axis alone (one gather serves 4/8/16
 * configurations) — the serial chain through each lane's history
 * register and tables is preserved untouched.
 *
 * Multi-read kinds (bi-mode, agree, tournament, gskew, yags, filter)
 * surround the direction read with one or two further per-branch
 * reads; a choice/meta/filter word steers the direction gather
 * (bank-select blend, tournament component select, PHT bypass),
 * flips the prediction (agreement XNOR), or arbitrates a tagged
 * probe (yags hit mask), and every update policy becomes a
 * branchless write-back mask. gskew instead issues three skew-hashed
 * direction gathers and takes a 2-of-3 majority vote. See
 * SimdChoiceKind in simd_bank.hh.
 *
 * A Backend provides a 32-bit-lane vector type plus the ops the
 * kernel body needs:
 *
 *   using V; kLanes;
 *   load/store (uint32 array <-> V), bcast, zero
 *   and_/or_/xor_/andnot (~a & b), add/sub
 *   sll1 (<<1), sllv/srlv (per-lane shifts)
 *   cmpgt (signed, all-ones mask result), cmpeq (all-ones mask),
 *   blend(a, b, m) = m ? b : a
 *   mullo/mulhi (low/high 32 bits of the unsigned 32x32 product,
 *                the gskew hash-multiply halves)
 *   gather32 (uint32 base, element offsets)
 *   scatter32 (uint32 base, offsets, values, active lane count —
 *              lanes >= active must not be written: they are padding
 *              replicas of lane 0 and would corrupt its region)
 *
 * All index math is unsigned 32-bit: tables are capped at 2^28
 * entries (checkedTableEntries) and buildSimdBank() rejects arenas
 * of 2^31+ elements, so offsets stay positive in the signed-index
 * gathers/scatters and lane-local shifts cannot overflow.
 */

#ifndef BPSIM_SIM_SIMD_SIMD_KERNEL_HH
#define BPSIM_SIM_SIMD_SIMD_KERNEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/simd/simd_bank.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{

namespace detail
{

/** Branchless saturate toward the training mask: both step
 *  candidates, then select (cmpgt masks are -1, so subtracting or
 *  adding them steps by one). */
template <typename B>
inline typename B::V
stepSaturating(typename B::V counter, typename B::V maxValue,
               typename B::V zero, typename B::V trainM)
{
    const auto up = B::sub(counter, B::cmpgt(maxValue, counter));
    const auto down = B::add(counter, B::cmpgt(counter, zero));
    return B::blend(down, up, trainM);
}

/**
 * Steps every lane of @p state through branches [0, total), scoring
 * mispredictions from @p warmup on.
 *
 * @tparam B           the ISA backend
 * @tparam Choice      multi-read kinds (simd_bank.hh): BiMode reads a
 *                     choice counter whose sign blend-selects between
 *                     two direction banks; Agree reads a biasing word
 *                     that flips the counter's meaning to agreement;
 *                     Tournament/Gskew/Yags/Filter run their own
 *                     three-read/majority/tagged-probe/run-filter
 *                     stages (see the per-kind blocks below)
 * @tparam BothBanks   bi-mode ablation: some lane disables partial
 *                     update, so the unselected bank is also stepped
 *                     (per-lane bothBanksMask keeps canonical lanes
 *                     partial). Off, the second bank is never touched.
 * @tparam LocalHistory per-address first level (PAg/PAs): history is
 *                     gathered/scattered per branch instead of
 *                     carried in a register
 * @tparam Packed      counters are bit-packed into arena words (see
 *                     SimdBankState::packed); false runs the
 *                     one-counter-per-word layout without the slot
 *                     math
 * @tparam Probed      per-branch accounting (sim/probe.hh): the
 *                     scored region gather/scatter-adds each lane's
 *                     misprediction into @p probe's uint32 block at
 *                     the branch's static id — a fourth (or fifth)
 *                     arena the existing machinery already handles.
 *                     Off, @p probe is ignored and the instantiation
 *                     is the exact unprobed kernel.
 */
template <typename B, SimdChoiceKind Choice, bool BothBanks,
          bool LocalHistory, bool Packed, bool Probed>
void
runSimdBankKernel(SimdBankState &state, const std::uint64_t *pcs,
                  const std::uint64_t *words, std::size_t total,
                  std::size_t warmup, SimdBankProbe *probe)
{
    using V = typename B::V;

    const std::size_t lanes = state.lanes;
    std::uint32_t *arena = state.counters.data();
    std::uint32_t *localHist =
        state.localHist.empty() ? nullptr : state.localHist.data();
    std::uint32_t *choiceArena =
        state.choiceArena.empty() ? nullptr : state.choiceArena.data();
    [[maybe_unused]] std::uint32_t *probeArena = nullptr;
    [[maybe_unused]] const std::uint32_t *probeIds = nullptr;
    if constexpr (Probed) {
        probeArena = probe->arena.data();
        probeIds = probe->ids;
    }
    // Uniform gskew fold trip count (max over lanes; narrow lanes
    // fold zero chunks on their extra rounds, a no-op).
    [[maybe_unused]] const std::uint32_t foldRounds = state.foldRounds;

    // Same block geometry as the scalar bank: lane groups run
    // lane-major within 8-word blocks, so each block's pcs and
    // bitmap words stay L1-hot while every group consumes them.
    constexpr std::size_t kBlockBranches =
        8 * PackedTrace::kWordBits;

    alignas(64) std::uint32_t valBuf[B::kLanes];

    for (std::size_t blockFrom = 0; blockFrom < total;
         blockFrom += kBlockBranches) {
        const std::size_t blockTo =
            std::min(total, blockFrom + kBlockBranches);
        const std::size_t scoreFrom =
            std::clamp(warmup, blockFrom, blockTo);

        for (std::size_t g0 = 0; g0 < lanes; g0 += B::kLanes) {
            const std::size_t active =
                std::min<std::size_t>(B::kLanes, lanes - g0);

            const V laneBase = B::load(&state.laneBase[g0]);
            const V addrMask = B::load(&state.addrMask[g0]);
            const V histShift = B::load(&state.histShift[g0]);
            const V histMask = B::load(&state.histMask[g0]);
            [[maybe_unused]] const V localBase =
                B::load(&state.localBase[g0]);
            [[maybe_unused]] const V localMask =
                B::load(&state.localMask[g0]);
            const V maxValue = B::load(&state.maxValue[g0]);
            const V threshold = B::load(&state.threshold[g0]);
            [[maybe_unused]] const V wordShift =
                B::load(&state.wordShift[g0]);
            [[maybe_unused]] const V slotIdxMask =
                B::load(&state.slotIdxMask[g0]);
            [[maybe_unused]] const V slotShift =
                B::load(&state.slotShift[g0]);
            [[maybe_unused]] const V fieldMask =
                B::load(&state.fieldMask[g0]);
            [[maybe_unused]] const V choiceBase =
                B::load(&state.choiceBase[g0]);
            [[maybe_unused]] const V choiceAddrMask =
                B::load(&state.choiceAddrMask[g0]);
            [[maybe_unused]] const V choiceMaxValue =
                B::load(&state.choiceMaxValue[g0]);
            [[maybe_unused]] const V choiceThreshold =
                B::load(&state.choiceThreshold[g0]);
            [[maybe_unused]] const V bankStride =
                B::load(&state.bankStride[g0]);
            [[maybe_unused]] const V alwaysChoiceMask =
                B::load(&state.alwaysChoiceMask[g0]);
            [[maybe_unused]] const V bothBanksMask =
                B::load(&state.bothBanksMask[g0]);
            [[maybe_unused]] const V auxBase =
                B::load(&state.auxBase[g0]);
            [[maybe_unused]] const V auxAddrMask =
                B::load(&state.auxAddrMask[g0]);
            [[maybe_unused]] const V auxMaxValue =
                B::load(&state.auxMaxValue[g0]);
            [[maybe_unused]] const V auxThreshold =
                B::load(&state.auxThreshold[g0]);
            [[maybe_unused]] const V tagShift =
                B::load(&state.tagShift[g0]);
            [[maybe_unused]] const V tagMask =
                B::load(&state.tagMask[g0]);
            [[maybe_unused]] const V hashFieldMask =
                B::load(&state.hashFieldMask[g0]);
            [[maybe_unused]] const V foldShift =
                B::load(&state.foldShift[g0]);
            [[maybe_unused]] V probeBase{};
            if constexpr (Probed)
                probeBase = B::load(&probe->laneBase[g0]);
            const V one = B::bcast(1);
            const V zero = B::zero();
            [[maybe_unused]] const V two = B::bcast(2);
            [[maybe_unused]] const V ones = B::bcast(0xFFFFFFFFu);

            V hist = B::load(&state.hist[g0]);
            // Block-local 32-bit misprediction accumulator: a block
            // holds at most 512 branches, far below overflow; it is
            // widened into the per-lane uint64 totals below.
            V misses = zero;

            // The warmup/measured split is at most one boundary per
            // block; the score test is a perfectly-predicted branch.
            for (std::size_t j = blockFrom; j < blockTo; ++j) {
                const auto addr =
                    static_cast<std::uint32_t>(pcs[j] >> 2);
                const bool taken =
                    (words[j / PackedTrace::kWordBits] >>
                     (j % PackedTrace::kWordBits)) & 1;
                const V addrV = B::bcast(addr);
                const V takenM =
                    B::bcast(taken ? 0xFFFFFFFFu : 0u);

                [[maybe_unused]] V h{};
                V predicted;
                if constexpr (Choice == SimdChoiceKind::Tournament) {
                    // Three gathers: the pc-indexed meta counter
                    // selects per lane between the pc-indexed bimodal
                    // counter (choice arena, aux constants) and the
                    // packed gshare counter. All three tables are
                    // disjoint, so reads-before-writes matches the
                    // scalar order exactly.
                    const V metaOff = B::add(
                        choiceBase, B::and_(addrV, choiceAddrMask));
                    const V metaVal = B::gather32(choiceArena, metaOff);
                    const V useSecondM =
                        B::cmpgt(metaVal, choiceThreshold);
                    const V bimOff = B::add(
                        auxBase, B::and_(addrV, auxAddrMask));
                    const V bimVal = B::gather32(choiceArena, bimOff);
                    const V p0M = B::cmpgt(bimVal, auxThreshold);
                    // gshare: idx = (addr & addrMask) ^ hist, packed.
                    const V index = B::xor_(
                        B::and_(addrV, addrMask), hist);
                    const V offset = B::add(
                        laneBase, B::srlv(index, wordShift));
                    const V slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    const V word = B::gather32(arena, offset);
                    const V counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                    const V p1M = B::cmpgt(counter, threshold);
                    predicted = B::blend(p0M, p1M, useSecondM);
                    // Both components train toward the outcome.
                    B::scatter32(choiceArena, bimOff,
                                 stepSaturating<B>(bimVal, auxMaxValue,
                                                   zero, takenM),
                                 active);
                    const V updated = stepSaturating<B>(
                        counter, maxValue, zero, takenM);
                    B::scatter32(
                        arena, offset,
                        B::or_(B::andnot(B::sllv(fieldMask, slot),
                                         word),
                               B::sllv(updated, slot)),
                        active);
                    // The meta counter trains toward "the gshare
                    // component was right", but only when the
                    // components disagree.
                    const V mStepped = stepSaturating<B>(
                        metaVal, choiceMaxValue, zero,
                        B::andnot(B::xor_(p1M, takenM), ones));
                    B::scatter32(choiceArena, metaOff,
                                 B::blend(metaVal, mStepped,
                                          B::xor_(p0M, p1M)),
                                 active);
                } else if constexpr (Choice == SimdChoiceKind::Gskew) {
                    // Three skew-hashed gathers from the lane's
                    // back-to-back banks, then a 2-of-3 majority
                    // vote. The hashes mirror gskew.hh bit for bit:
                    // bank 0 indexes by address alone; banks 1 and 2
                    // multiply a mixed address/history field by a
                    // 64-bit odd constant and xor-fold the 64-bit
                    // product into the index width. The product lives
                    // in two 32-bit halves: lo = x * K_lo (low), hi =
                    // mulhi(x, K_lo) + x * K_hi.
                    const V address = B::and_(addrV, hashFieldMask);
                    const V idx0 = B::and_(address, addrMask);
                    const V foldShiftComp =
                        B::sub(B::bcast(32), foldShift);
                    const auto fold64 = [&](V hi, V lo) {
                        // Scalar foldXor: xor the low foldShift bits,
                        // shift the 64-bit pair right by foldShift,
                        // repeat until the widest lane's product is
                        // consumed (narrow lanes fold zeros).
                        V folded = B::and_(lo, addrMask);
                        for (std::uint32_t r = 1; r < foldRounds;
                             ++r) {
                            lo = B::or_(B::srlv(lo, foldShift),
                                        B::sllv(hi, foldShiftComp));
                            hi = B::srlv(hi, foldShift);
                            folded = B::xor_(
                                folded, B::and_(lo, addrMask));
                        }
                        return folded;
                    };
                    const V k1lo = B::bcast(0x7f4a7c15u);
                    const V k1hi = B::bcast(0x9e3779b9u);
                    const V x1 = B::xor_(address, hist);
                    const V idx1 = fold64(
                        B::add(B::mulhi(x1, k1lo),
                               B::mullo(x1, k1hi)),
                        B::mullo(x1, k1lo));
                    const V k2lo = B::bcast(0x27d4eb4fu);
                    const V k2hi = B::bcast(0xc2b2ae3du);
                    // The builder caps the address field at 31 bits
                    // and the history at 29, so this add cannot carry
                    // past the 32-bit lane (it matches the scalar
                    // 64-bit sum exactly).
                    const V x2 = B::add(address, B::sll1(hist));
                    const V idx2 = fold64(
                        B::add(B::mulhi(x2, k2lo),
                               B::mullo(x2, k2hi)),
                        B::mullo(x2, k2lo));

                    const V off0 = B::add(
                        laneBase, B::srlv(idx0, wordShift));
                    const V slot0 = B::sllv(
                        B::and_(idx0, slotIdxMask), slotShift);
                    const V word0 = B::gather32(arena, off0);
                    const V cnt0 = B::and_(
                        B::srlv(word0, slot0), fieldMask);
                    const V base1 = B::add(laneBase, bankStride);
                    const V off1 = B::add(
                        base1, B::srlv(idx1, wordShift));
                    const V slot1 = B::sllv(
                        B::and_(idx1, slotIdxMask), slotShift);
                    const V word1 = B::gather32(arena, off1);
                    const V cnt1 = B::and_(
                        B::srlv(word1, slot1), fieldMask);
                    const V off2 = B::add(
                        B::add(base1, bankStride),
                        B::srlv(idx2, wordShift));
                    const V slot2 = B::sllv(
                        B::and_(idx2, slotIdxMask), slotShift);
                    const V word2 = B::gather32(arena, off2);
                    const V cnt2 = B::and_(
                        B::srlv(word2, slot2), fieldMask);

                    const V v0M = B::cmpgt(cnt0, threshold);
                    const V v1M = B::cmpgt(cnt1, threshold);
                    const V v2M = B::cmpgt(cnt2, threshold);
                    predicted = B::or_(
                        B::and_(v0M, v1M),
                        B::and_(v2M, B::or_(v0M, v1M)));

                    // e-gskew partial update: bank 0 always trains;
                    // banks 1/2 train when the vote mispredicted or
                    // they agreed with the outcome (bothBanksMask
                    // lanes run the full-update ablation). The banks
                    // are disjoint word ranges, so the three RMWs
                    // cannot collide.
                    const V mispM = B::xor_(predicted, takenM);
                    B::scatter32(
                        arena, off0,
                        B::or_(B::andnot(B::sllv(fieldMask, slot0),
                                         word0),
                               B::sllv(stepSaturating<B>(
                                           cnt0, maxValue, zero,
                                           takenM),
                                       slot0)),
                        active);
                    const V upd1M = B::or_(
                        bothBanksMask,
                        B::or_(mispM,
                               B::andnot(B::xor_(v1M, takenM),
                                         ones)));
                    const V new1 = B::blend(
                        cnt1,
                        stepSaturating<B>(cnt1, maxValue, zero,
                                          takenM),
                        upd1M);
                    B::scatter32(
                        arena, off1,
                        B::or_(B::andnot(B::sllv(fieldMask, slot1),
                                         word1),
                               B::sllv(new1, slot1)),
                        active);
                    const V upd2M = B::or_(
                        bothBanksMask,
                        B::or_(mispM,
                               B::andnot(B::xor_(v2M, takenM),
                                         ones)));
                    const V new2 = B::blend(
                        cnt2,
                        stepSaturating<B>(cnt2, maxValue, zero,
                                          takenM),
                        upd2M);
                    B::scatter32(
                        arena, off2,
                        B::or_(B::andnot(B::sllv(fieldMask, slot2),
                                         word2),
                               B::sllv(new2, slot2)),
                        active);
                } else if constexpr (Choice == SimdChoiceKind::Yags) {
                    // Choice gather, then a tagged probe of the cache
                    // opposite the choice direction: the entry word
                    // packs counter/tag/valid (kYagsCounterMask
                    // layout), the hit test is a gathered tag
                    // compare, and both the hit step and the
                    // allocation are masked whole-word write-backs.
                    const V choiceOff = B::add(
                        choiceBase, B::and_(addrV, choiceAddrMask));
                    const V choiceVal =
                        B::gather32(choiceArena, choiceOff);
                    const V choiceM =
                        B::cmpgt(choiceVal, choiceThreshold);
                    const V index = B::xor_(
                        B::and_(addrV, addrMask), hist);
                    // The taken cache sits bankStride words past the
                    // not-taken cache; consult the opposite of the
                    // choice, so the stride add is masked by ~choice.
                    const V offset = B::add(
                        B::add(laneBase,
                               B::andnot(choiceM, bankStride)),
                        index);
                    const V entry = B::gather32(arena, offset);
                    const V counterMask = B::bcast(kYagsCounterMask);
                    const V counter = B::and_(entry, counterMask);
                    const V entryTagShift = B::bcast(kYagsTagShift);
                    const V entryTag = B::and_(
                        B::srlv(entry, entryTagShift), tagMask);
                    const V tag = B::and_(
                        B::srlv(addrV, tagShift), tagMask);
                    const V validM = B::cmpgt(
                        B::and_(entry, B::bcast(kYagsValidBit)),
                        zero);
                    const V hitM = B::and_(
                        validM, B::cmpeq(entryTag, tag));
                    predicted = B::blend(
                        choiceM, B::cmpgt(counter, threshold), hitM);
                    // Hit: step the counter inside the word. Miss
                    // deviating from the choice: allocate
                    // valid/tag/weak-toward-outcome (weaklyTaken is
                    // threshold + 1, weaklyNotTaken is threshold).
                    const V wordHit = B::or_(
                        B::andnot(counterMask, entry),
                        stepSaturating<B>(counter, maxValue, zero,
                                          takenM));
                    const V wordAlloc = B::or_(
                        B::or_(B::bcast(kYagsValidBit),
                               B::sllv(tag, entryTagShift)),
                        B::sub(threshold, takenM));
                    const V allocM = B::andnot(
                        hitM, B::xor_(choiceM, takenM));
                    B::scatter32(
                        arena, offset,
                        B::blend(B::blend(entry, wordAlloc, allocM),
                                 wordHit, hitM),
                        active);
                    // The choice table follows the bi-mode exception
                    // policy: train toward the outcome unless the
                    // choice was wrong but the cache corrected it.
                    const V cStepped = stepSaturating<B>(
                        choiceVal, choiceMaxValue, zero, takenM);
                    const V keepM = B::andnot(
                        B::xor_(predicted, takenM),
                        B::xor_(choiceM, takenM));
                    B::scatter32(choiceArena, choiceOff,
                                 B::blend(cStepped, choiceVal, keepM),
                                 active);
                } else if constexpr (Choice == SimdChoiceKind::Filter) {
                    // The pc-indexed filter word (direction bit 0,
                    // run length above) gates the gshare-indexed PHT:
                    // a saturated run predicts by direction and masks
                    // the PHT update off; saturate/increment/reset of
                    // the run are branchless blends.
                    const V fOff = B::add(
                        choiceBase, B::and_(addrV, choiceAddrMask));
                    const V fVal = B::gather32(choiceArena, fOff);
                    const V dirM = B::cmpgt(B::and_(fVal, one), zero);
                    const V run = B::srlv(fVal, one);
                    const V filteredM =
                        B::cmpeq(run, choiceMaxValue);
                    const V index = B::xor_(
                        B::and_(addrV, addrMask), hist);
                    const V offset = B::add(
                        laneBase, B::srlv(index, wordShift));
                    const V slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    const V word = B::gather32(arena, offset);
                    const V counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                    predicted = B::blend(
                        B::cmpgt(counter, threshold), dirM,
                        filteredM);
                    // Filtered lanes keep the old counter value — a
                    // same-value store to the lane's private word, so
                    // the PHT bypass stays bit-exact.
                    const V stepped = stepSaturating<B>(
                        counter, maxValue, zero, takenM);
                    const V newCnt =
                        B::blend(stepped, counter, filteredM);
                    B::scatter32(
                        arena, offset,
                        B::or_(B::andnot(B::sllv(fieldMask, slot),
                                         word),
                               B::sllv(newCnt, slot)),
                        active);
                    // Same direction: increment the run, saturating.
                    // Direction change: restart at (outcome, 1).
                    const V sameM = B::andnot(
                        B::xor_(dirM, takenM), ones);
                    const V runInc = B::sub(
                        run, B::cmpgt(choiceMaxValue, run));
                    const V takenBit = B::and_(takenM, one);
                    const V sameWord = B::or_(
                        B::and_(fVal, one), B::sll1(runInc));
                    const V diffWord = B::or_(takenBit, two);
                    B::scatter32(choiceArena, fOff,
                                 B::blend(diffWord, sameWord, sameM),
                                 active);
                } else {

                // Stage one of the two-gather kinds: the pc-indexed
                // choice word (bi-mode choice counter / agree biasing
                // bits), read before the direction bank so its value
                // can steer the second gather.
                [[maybe_unused]] V choiceOff{}, choiceVal{};
                if constexpr (Choice != SimdChoiceKind::None) {
                    choiceOff = B::add(
                        choiceBase, B::and_(addrV, choiceAddrMask));
                    choiceVal = B::gather32(choiceArena, choiceOff);
                }

                if constexpr (LocalHistory) {
                    h = B::gather32(
                        localHist,
                        B::add(localBase, B::and_(addrV, localMask)));
                } else {
                    h = hist;
                }

                // idx = ((addr & addrMask) << histShift) ^ hist —
                // the unified formula of simd_bank.hh. hist is kept
                // masked at every update, so no mask is needed here.
                const V index = B::xor_(
                    B::sllv(B::and_(addrV, addrMask), histShift), h);
                V offset, counter;
                [[maybe_unused]] V slot{}, word{}, wordIdx{},
                    choiceM{};
                if constexpr (Choice == SimdChoiceKind::BiMode) {
                    // The choice sign picks the direction bank: the
                    // taken bank sits bankStride words past the
                    // not-taken bank, so the select is a masked add.
                    choiceM = B::cmpgt(choiceVal, choiceThreshold);
                    wordIdx = B::srlv(index, wordShift);
                    offset = B::add(
                        B::add(laneBase,
                               B::and_(choiceM, bankStride)),
                        wordIdx);
                    slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    word = B::gather32(arena, offset);
                    counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                } else if constexpr (Packed) {
                    // The counter lives in a bit slot of a packed
                    // word (simd_bank.hh): locate word and slot,
                    // then extract.
                    offset = B::add(
                        laneBase, B::srlv(index, wordShift));
                    slot = B::sllv(
                        B::and_(index, slotIdxMask), slotShift);
                    word = B::gather32(arena, offset);
                    counter = B::and_(
                        B::srlv(word, slot), fieldMask);
                } else {
                    offset = B::add(laneBase, index);
                    counter = B::gather32(arena, offset);
                }

                [[maybe_unused]] V validM{}, biasM{};
                if constexpr (Choice == SimdChoiceKind::Agree) {
                    // Choice word: bit 0 = valid, bit 1 = biasing
                    // bit; an unseen branch defaults to a taken bias
                    // (agree.hh). The counter predicts agreement, so
                    // the direction is counter-sign XNOR bias.
                    validM = B::cmpgt(B::and_(choiceVal, one), zero);
                    biasM = B::cmpgt(B::and_(choiceVal, two), zero);
                    const V oldBiasM = B::blend(ones, biasM, validM);
                    predicted = B::andnot(
                        B::xor_(B::cmpgt(counter, threshold),
                                oldBiasM),
                        ones);
                } else {
                    predicted = B::cmpgt(counter, threshold);
                }

                // The counter trains toward the outcome — except for
                // agree, where it trains toward agreement with the
                // post-capture bias (taken XNOR newBias).
                [[maybe_unused]] V newBiasM{};
                V trainM;
                if constexpr (Choice == SimdChoiceKind::Agree) {
                    // First encounter captures the outcome as bias.
                    newBiasM = B::blend(takenM, biasM, validM);
                    trainM = B::andnot(
                        B::xor_(takenM, newBiasM), ones);
                } else {
                    trainM = takenM;
                }

                // Branchless saturate toward the training direction.
                const V updated = stepSaturating<B>(
                    counter, maxValue, zero, trainM);

                // Store back (packed: re-insert the stepped counter
                // into its slot first). Active lanes hit disjoint
                // regions of the arena, so order within a branch is
                // immaterial; padding lanes (>= active) are never
                // written.
                V rewritten;
                if constexpr (Packed) {
                    rewritten = B::or_(
                        B::andnot(B::sllv(fieldMask, slot), word),
                        B::sllv(updated, slot));
                } else {
                    rewritten = updated;
                }
                B::scatter32(arena, offset, rewritten, active);

                if constexpr (Choice == SimdChoiceKind::BiMode &&
                              BothBanks) {
                    // Partial-update ablation: step the UNselected
                    // bank's counter too. The two banks are disjoint
                    // word ranges, so this RMW cannot collide with
                    // the selected-bank scatter above. Lanes still on
                    // the paper policy blend back the old value
                    // (bothBanksMask is per-lane: fused banks may mix
                    // policies).
                    const V otherOff = B::add(
                        B::add(laneBase,
                               B::andnot(choiceM, bankStride)),
                        wordIdx);
                    const V otherWord = B::gather32(arena, otherOff);
                    const V otherCnt = B::and_(
                        B::srlv(otherWord, slot), fieldMask);
                    const V oNew = B::blend(
                        otherCnt,
                        stepSaturating<B>(otherCnt, maxValue, zero,
                                          takenM),
                        bothBanksMask);
                    B::scatter32(
                        arena, otherOff,
                        B::or_(B::andnot(B::sllv(fieldMask, slot),
                                         otherWord),
                               B::sllv(oNew, slot)),
                        active);
                }

                if constexpr (Choice == SimdChoiceKind::BiMode) {
                    // Choice table trains toward the outcome, EXCEPT
                    // when it picked the "wrong" bank but that bank
                    // still predicted correctly (the paper's choice
                    // exception; alwaysChoiceMask lanes run the
                    // always-update ablation instead).
                    const V cStepped = stepSaturating<B>(
                        choiceVal, choiceMaxValue, zero, takenM);
                    // keep = ~always & (choice != taken) &
                    //        ~(predicted != taken)
                    const V keepM = B::andnot(
                        alwaysChoiceMask,
                        B::andnot(B::xor_(predicted, takenM),
                                  B::xor_(choiceM, takenM)));
                    B::scatter32(choiceArena, choiceOff,
                                 B::blend(cStepped, choiceVal, keepM),
                                 active);
                } else if constexpr (Choice == SimdChoiceKind::Agree) {
                    // Re-pack valid=1 plus the (possibly captured)
                    // biasing bit.
                    B::scatter32(choiceArena, choiceOff,
                                 B::or_(one, B::and_(newBiasM, two)),
                                 active);
                }

                }

                if (j >= scoreFrom) {
                    // predicted ^ takenM is all-ones (-1) exactly on
                    // a mispredicting lane; subtracting adds 1.
                    const V mispredM = B::xor_(predicted, takenM);
                    misses = B::sub(misses, mispredM);
                    if constexpr (Probed) {
                        // Same trick per static branch: every lane's
                        // counter for this branch's id lives at a
                        // disjoint offset, so the RMW cannot collide
                        // within the group.
                        const V pOff = B::add(
                            probeBase, B::bcast(probeIds[j]));
                        const V cnt = B::gather32(probeArena, pOff);
                        B::scatter32(probeArena, pOff,
                                     B::sub(cnt, mispredM), active);
                    }
                }

                const V takenBit = B::and_(takenM, one);
                if constexpr (LocalHistory) {
                    // The index recomputation is CSE'd against the
                    // gather above.
                    const V localIdx = B::add(
                        localBase, B::and_(addrV, localMask));
                    const V shifted = B::and_(
                        B::or_(B::sll1(h), takenBit), histMask);
                    B::scatter32(localHist, localIdx, shifted, active);
                } else {
                    hist = B::and_(
                        B::or_(B::sll1(hist), takenBit), histMask);
                }
            }

            B::store(&state.hist[g0], hist);
            B::store(valBuf, misses);
            for (std::size_t k = 0; k < active; ++k)
                state.mispredictions[g0 + k] += valBuf[k];
        }
    }
}

/** Selects the probed or unprobed instantiation of one kernel shape
 *  at runtime. Probing doubles the instantiation count per backend;
 *  keeping the variants separate (rather than branching on a null
 *  probe inside the loop) is what keeps the unprobed kernels'
 *  codegen untouched. */
template <typename B, SimdChoiceKind Choice, bool BothBanks,
          bool LocalHistory, bool Packed>
inline void
runMaybeProbed(SimdBankState &state, const std::uint64_t *pcs,
               const std::uint64_t *words, std::size_t total,
               std::size_t warmup, SimdBankProbe *probe)
{
    if (probe != nullptr) {
        runSimdBankKernel<B, Choice, BothBanks, LocalHistory, Packed,
                          true>(state, pcs, words, total, warmup,
                                probe);
    } else {
        runSimdBankKernel<B, Choice, BothBanks, LocalHistory, Packed,
                          false>(state, pcs, words, total, warmup,
                                 nullptr);
    }
}

/** Instantiates the kernel matching @p state's choice, history and
 *  packing flavors for backend @p B — the shared dispatch of every
 *  per-ISA entry point. Only the combinations a builder can produce
 *  are instantiated: two-gather kinds are always packed with a global
 *  (or no) history register, and only bi-mode has a second bank. */
template <typename B>
void
dispatchSimdBankKernel(SimdBankState &state, const std::uint64_t *pcs,
                       const std::uint64_t *words, std::size_t total,
                       std::size_t warmup, SimdBankProbe *probe)
{
    constexpr auto kNone = SimdChoiceKind::None;
    switch (state.choiceKind) {
      case SimdChoiceKind::BiMode:
        if (state.updateBothBanks) {
            runMaybeProbed<B, SimdChoiceKind::BiMode, true, false,
                           true>(state, pcs, words, total, warmup,
                                 probe);
        } else {
            runMaybeProbed<B, SimdChoiceKind::BiMode, false, false,
                           true>(state, pcs, words, total, warmup,
                                 probe);
        }
        return;
      case SimdChoiceKind::Agree:
        runMaybeProbed<B, SimdChoiceKind::Agree, false, false, true>(
            state, pcs, words, total, warmup, probe);
        return;
      case SimdChoiceKind::Tournament:
        runMaybeProbed<B, SimdChoiceKind::Tournament, false, false,
                       true>(state, pcs, words, total, warmup, probe);
        return;
      case SimdChoiceKind::Gskew:
        runMaybeProbed<B, SimdChoiceKind::Gskew, false, false, true>(
            state, pcs, words, total, warmup, probe);
        return;
      case SimdChoiceKind::Yags:
        // Yags is the one unpacked multi-read kind: each cache entry
        // is a whole valid/tag/counter word.
        runMaybeProbed<B, SimdChoiceKind::Yags, false, false, false>(
            state, pcs, words, total, warmup, probe);
        return;
      case SimdChoiceKind::Filter:
        runMaybeProbed<B, SimdChoiceKind::Filter, false, false, true>(
            state, pcs, words, total, warmup, probe);
        return;
      case SimdChoiceKind::None:
        break;
    }
    if (state.localHistory) {
        if (state.packed) {
            runMaybeProbed<B, kNone, false, true, true>(
                state, pcs, words, total, warmup, probe);
        } else {
            runMaybeProbed<B, kNone, false, true, false>(
                state, pcs, words, total, warmup, probe);
        }
    } else if (state.packed) {
        runMaybeProbed<B, kNone, false, false, true>(
            state, pcs, words, total, warmup, probe);
    } else {
        runMaybeProbed<B, kNone, false, false, false>(
            state, pcs, words, total, warmup, probe);
    }
}

} // namespace detail

} // namespace bpsim

#endif // BPSIM_SIM_SIMD_SIMD_KERNEL_HH
