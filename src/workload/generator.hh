/**
 * @file
 * Trace generation: executes a synthetic Program and emits the
 * branch stream.
 *
 * The generator maintains the *executed* global history and each
 * site's local history, so correlated behaviours observe exactly
 * what a history-based predictor will observe — the correlation in
 * the trace is architectural, not injected.
 */

#ifndef BPSIM_WORKLOAD_GENERATOR_HH
#define BPSIM_WORKLOAD_GENERATOR_HH

#include <array>

#include "trace/memory_trace.hh"
#include "workload/program.hh"
#include "workload/workload_spec.hh"

namespace bpsim
{

/** Executes a Program, emitting records into a TraceWriter. */
class TraceGenerator
{
  public:
    /**
     * @param program the static program to execute (held by
     *        reference; must outlive the generator)
     * @param spec the spec the program was built from (dispatch
     *        parameters and seed)
     */
    TraceGenerator(Program &program, const WorkloadSpec &spec);

    /**
     * Emits @p count conditional branch records into @p sink.
     * finish() is not called on the sink.
     */
    void generate(std::uint64_t count, TraceWriter &sink);

    /** Restarts execution from the initial state. */
    void restart();

  private:
    std::size_t pickNextRoutine(std::size_t current);

    /**
     * Executes one routine, emitting its branch records; with
     * call/return emission enabled, may recursively call successor
     * routines mid-body (bounded depth).
     */
    void walkRoutine(std::size_t routineIndex, unsigned depth,
                     std::uint64_t count, std::uint64_t &emitted,
                     TraceWriter &sink);

    Program &program;
    WorkloadSpec spec;
    Rng rng;
    ZipfSampler routineSampler;
    /** Scatters hot Zipf ranks across the address space. */
    std::vector<std::size_t> routineOrder;
    /**
     * Markov control flow: each routine has a few preferred
     * successors (callers repeat call sequences), giving the global
     * history cross-routine structure predictors can learn. With
     * probability WorkloadSpec-independent 1/4 the walk re-dispatches
     * through the Zipf sampler instead, keeping the heavy-tailed
     * execution skew.
     */
    std::vector<std::array<std::size_t, 3>> successors;
    std::uint64_t globalHistory = 0;
};

/** Convenience: builds the program for @p spec and generates its
 *  full dynamic branch count into an in-memory trace. */
MemoryTrace generateWorkloadTrace(const WorkloadSpec &spec);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_GENERATOR_HH
