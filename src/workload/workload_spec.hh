/**
 * @file
 * Declarative description of a synthetic workload.
 *
 * A WorkloadSpec captures the axes that drive branch predictor
 * behaviour: the static branch population (aliasing pressure), the
 * behaviour-family mix (bias distribution), and the correlation
 * structure (how much history helps). The 14 built-in specs in
 * benchmarks.cc mirror the paper's Table 2 programs.
 */

#ifndef BPSIM_WORKLOAD_WORKLOAD_SPEC_HH
#define BPSIM_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>

namespace bpsim
{

/**
 * Relative weights of the behaviour families assigned to branch
 * sites. Weights need not sum to 1; they are normalized.
 */
struct BehaviorMix
{
    /** Strongly biased branches (error checks, guards). */
    double stronglyBiased = 0.30;
    /** Loop back-edges. */
    double loop = 0.15;
    /** Branches correlated with global history. */
    double globalCorrelated = 0.25;
    /** Branches correlated with their own history. */
    double localCorrelated = 0.05;
    /** Short repeating patterns. */
    double pattern = 0.05;
    /** Phase-modal branches (bias flips between program phases). */
    double phaseModal = 0.05;
    /** Weakly biased data-dependent branches. */
    double weaklyBiased = 0.15;
};

/** Parameters of the behaviour families. */
struct BehaviorParams
{
    /** Taken-side strong bias is drawn from [strongLo, strongHi],
     *  quadratically skewed toward strongHi (most guards are nearly
     *  always one-sided). */
    double strongLo = 0.97;
    double strongHi = 1.00;
    /** Fraction of strongly biased branches biased toward taken. */
    double strongTakenShare = 0.5;
    /** Weakly biased branches: the majority-direction share is drawn
     *  uniformly from [weakLo, weakHi] (must be >= 0.5) and the
     *  direction is a fair coin. A 0.58..0.85 range makes these the
     *  paper's WB class — biased, but well under the 90% line. */
    double weakLo = 0.58;
    double weakHi = 0.85;
    /** Loop mean trip counts drawn log-uniformly from [lo, hi]. */
    double loopTripLo = 2.0;
    double loopTripHi = 10.0;
    /** Fraction of loops with deterministic trip counts. */
    double loopDeterministicShare = 0.85;
    /** Global correlation depth drawn uniformly from [lo, hi]. */
    unsigned corrDepthLo = 2;
    unsigned corrDepthHi = 10;
    /** Noise applied to correlated branches. */
    double corrNoise = 0.015;
    /**
     * Majority share of correlated branches' truth tables: the
     * fraction of table entries mapping to the branch's dominant
     * direction. Special conditions are the exception in real code,
     * so per-address these branches look ~70/30, not 50/50.
     */
    double corrOutputBias = 0.72;
    /** Local correlation depth range. */
    unsigned localDepthLo = 2;
    unsigned localDepthHi = 6;
    /** Pattern length range. */
    unsigned patternLenLo = 2;
    unsigned patternLenHi = 8;
    /** Mean phase length of phase-modal branches. */
    double phaseLength = 20000.0;
};

/** A complete synthetic workload description. */
struct WorkloadSpec
{
    /** Benchmark name (e.g. "gcc"). */
    std::string name;
    /** Suite label (e.g. "SPEC CINT95" or "IBS-Ultrix"). */
    std::string suite;
    /** Target number of static conditional branch sites. */
    std::uint64_t staticBranches = 1000;
    /** Dynamic conditional branches to generate. */
    std::uint64_t dynamicBranches = 1'000'000;
    /** Master seed; everything derives deterministically from it. */
    std::uint64_t seed = 1;
    /** Behaviour family weights. */
    BehaviorMix mix;
    /** Behaviour family parameters. */
    BehaviorParams params;
    /** Zipf exponent of routine execution frequencies (0 = uniform).
     *  Real programs concentrate most dynamic branches in a small
     *  hot set; the default matches gcc-like skew where the top ~15%
     *  of sites carry ~90% of the traffic. */
    double zipfExponent = 2.0;
    /** Shifted-Zipf head flattening: no single routine should
     *  dominate the trace (hot weights ~ 1/(rank+offset)^s). */
    double zipfOffset = 15.0;
    /** Mean branch sites per routine. */
    double sitesPerRoutine = 10.0;
    /** Base of the code region branch pcs are placed in. */
    std::uint64_t codeBase = 0x0040'0000;
    /**
     * Emit call/return records around nested routine invocations
     * (default off: direction-prediction studies use conditional-only
     * traces, and the paper's statistics count conditionals only).
     * When on, routines occasionally call a successor mid-body, up to
     * a bounded depth — the structure a return address stack exists
     * for. Call/return records count toward dynamicBranches.
     */
    bool emitCallsAndReturns = false;
    /** Probability of a mid-routine call after each site. */
    double callSiteProbability = 0.10;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_WORKLOAD_SPEC_HH
