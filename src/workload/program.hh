/**
 * @file
 * The static shape of a synthetic program.
 *
 * A Program is a set of routines; each routine is a straight-line
 * sequence of conditional branch sites. Executing a routine walks
 * its sites in order: a loop site repeats itself while taken (a back
 * edge), and a non-loop site taken with a skip amount jumps over the
 * next few sites (an if-then-else diamond). A dispatcher re-enters
 * routines with Zipf-skewed frequencies, giving static branches the
 * heavy-tailed execution distribution real programs show.
 */

#ifndef BPSIM_WORKLOAD_PROGRAM_HH
#define BPSIM_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "workload/behavior.hh"

namespace bpsim
{

/** One static conditional branch site. */
struct BranchSite
{
    /** Instruction address (4-byte aligned). */
    std::uint64_t pc = 0;
    /** Taken-path target address. */
    std::uint64_t takenTarget = 0;
    /** Outcome model. */
    BehaviorPtr behavior;
    /** Back edge: the site re-executes while taken. */
    bool isLoop = false;
    /** Diamond shape: sites skipped within the routine when taken
     *  (0 = plain fall-through semantics). */
    unsigned skipOnTaken = 0;
    /** Executed local history, maintained by the generator. */
    std::uint64_t localHistory = 0;
};

/** A straight-line routine of branch sites. */
struct Routine
{
    std::vector<BranchSite> sites;
};

/** A complete synthetic program. */
class Program
{
  public:
    Program() = default;

    // Behaviours hold unique_ptrs; the program moves, never copies.
    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    void addRoutine(Routine routine);

    std::size_t routineCount() const { return routines.size(); }
    Routine &routine(std::size_t i) { return routines[i]; }
    const Routine &routine(std::size_t i) const { return routines[i]; }

    /** Total branch sites across all routines. */
    std::size_t siteCount() const;

    /** Resets every site's behaviour state and local history. */
    void resetState();

  private:
    std::vector<Routine> routines;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PROGRAM_HH
