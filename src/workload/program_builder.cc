#include "workload/program_builder.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Behaviour family tags, in BehaviorMix order. */
enum class Family
{
    StronglyBiased,
    Loop,
    GlobalCorrelated,
    LocalCorrelated,
    Pattern,
    PhaseModal,
    WeaklyBiased,
};

Family
sampleFamily(const BehaviorMix &mix, Rng &rng)
{
    const std::vector<double> weights = {
        mix.stronglyBiased, mix.loop, mix.globalCorrelated,
        mix.localCorrelated, mix.pattern, mix.phaseModal,
        mix.weaklyBiased,
    };
    return static_cast<Family>(rng.nextWeighted(weights));
}

/** Log-uniform draw from [lo, hi]. */
double
logUniform(Rng &rng, double lo, double hi)
{
    const double log_lo = std::log(std::max(lo, 1e-9));
    const double log_hi = std::log(std::max(hi, lo));
    return std::exp(log_lo + rng.nextDouble() * (log_hi - log_lo));
}

BehaviorPtr
makeBehavior(Family family, const BehaviorParams &p, Rng &rng,
             unsigned depthCap)
{
    switch (family) {
      case Family::StronglyBiased: {
        // Quadratic skew toward strongHi: most guards are nearly
        // always one-sided.
        const double u = rng.nextDouble();
        const double strength =
            p.strongHi - (p.strongHi - p.strongLo) * u * u;
        const bool taken_side = rng.nextBool(p.strongTakenShare);
        return std::make_unique<BiasedBehavior>(
            taken_side ? strength : 1.0 - strength);
      }
      case Family::Loop: {
        const double trips = logUniform(rng, p.loopTripLo, p.loopTripHi);
        const bool det = rng.nextBool(p.loopDeterministicShare);
        return std::make_unique<LoopBehavior>(trips, det);
      }
      case Family::GlobalCorrelated: {
        unsigned depth = static_cast<unsigned>(
            rng.nextRange(p.corrDepthLo, p.corrDepthHi));
        // A branch early in its routine mostly sees outcomes from
        // whichever routine ran before it; cap its correlation depth
        // so the function reads history the control flow actually
        // makes meaningful.
        depth = std::min(depth, std::max(depthCap, p.corrDepthLo));
        const double table_bias = rng.nextBool(0.5)
            ? p.corrOutputBias : 1.0 - p.corrOutputBias;
        return std::make_unique<GlobalCorrelatedBehavior>(
            depth, p.corrNoise, rng.next64(), table_bias);
      }
      case Family::LocalCorrelated: {
        const unsigned depth = static_cast<unsigned>(
            rng.nextRange(p.localDepthLo, p.localDepthHi));
        const double table_bias = rng.nextBool(0.5)
            ? p.corrOutputBias : 1.0 - p.corrOutputBias;
        return std::make_unique<LocalCorrelatedBehavior>(
            depth, p.corrNoise, rng.next64(), table_bias);
      }
      case Family::Pattern: {
        const unsigned len = static_cast<unsigned>(
            rng.nextRange(p.patternLenLo, p.patternLenHi));
        std::vector<bool> pattern(len);
        // Avoid all-same patterns; those are just biased branches.
        bool saw_taken = false, saw_not = false;
        for (unsigned i = 0; i < len; ++i) {
            pattern[i] = rng.nextBool(0.5);
            (pattern[i] ? saw_taken : saw_not) = true;
        }
        if (!saw_taken)
            pattern[0] = true;
        if (!saw_not)
            pattern[len > 1 ? 1 : 0] = false;
        return std::make_unique<PatternBehavior>(std::move(pattern));
      }
      case Family::PhaseModal: {
        // Strong-taken in one phase, strong-not-taken in the other.
        const double pa =
            p.strongLo + rng.nextDouble() * (p.strongHi - p.strongLo);
        const double pb = 1.0 -
            (p.strongLo + rng.nextDouble() * (p.strongHi - p.strongLo));
        return std::make_unique<PhaseModalBehavior>(pa, pb, p.phaseLength);
      }
      case Family::WeaklyBiased: {
        const double strength =
            p.weakLo + rng.nextDouble() * (p.weakHi - p.weakLo);
        const bool taken_side = rng.nextBool(0.5);
        return std::make_unique<BiasedBehavior>(
            taken_side ? strength : 1.0 - strength);
      }
    }
    BPSIM_PANIC("unreachable behaviour family");
}

} // namespace

Program
buildProgram(const WorkloadSpec &spec)
{
    if (spec.staticBranches == 0)
        BPSIM_FATAL("workload '" << spec.name
                    << "' must have at least one static branch");

    Rng rng(spec.seed);
    Program program;

    std::uint64_t next_pc = spec.codeBase;
    std::uint64_t sites_built = 0;

    while (sites_built < spec.staticBranches) {
        Routine routine;
        // Routine sizes vary around the mean, at least 2 sites.
        const double jitter = 0.5 + rng.nextDouble();
        std::uint64_t size = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(
                   std::llround(spec.sitesPerRoutine * jitter)));
        size = std::min(size, spec.staticBranches - sites_built);
        if (size == 0)
            break;

        routine.sites.reserve(size);
        for (std::uint64_t i = 0; i < size; ++i) {
            BranchSite site;
            // Real branches are several instructions apart; random
            // spacing spreads the low pc bits predictors index with.
            next_pc += 4 * static_cast<std::uint64_t>(
                rng.nextRange(1, 8));
            site.pc = next_pc;
            const Family family = sampleFamily(spec.mix, rng);
            // Sites later in a routine have more same-path history
            // in front of them and may correlate deeper.
            const unsigned depth_cap =
                static_cast<unsigned>(std::min<std::uint64_t>(2 * i + 2,
                                                              16));
            site.behavior =
                makeBehavior(family, spec.params, rng, depth_cap);
            site.isLoop = family == Family::Loop;
            if (site.isLoop) {
                // Back edge: target a little before the branch.
                site.takenTarget =
                    site.pc - 4 * static_cast<std::uint64_t>(
                                      rng.nextRange(2, 16));
            } else {
                // Some diamonds: taken skips a couple of sites.
                if (rng.nextBool(0.15))
                    site.skipOnTaken =
                        static_cast<unsigned>(rng.nextRange(1, 3));
                // Forward target (patched after the routine is laid
                // out would be more precise; an approximate forward
                // displacement is enough for the trace consumers).
                site.takenTarget =
                    site.pc + 4 * static_cast<std::uint64_t>(
                                      rng.nextRange(2, 32));
            }
            routine.sites.push_back(std::move(site));
        }
        sites_built += routine.sites.size();
        program.addRoutine(std::move(routine));
        // Gap between routines.
        next_pc += 4 * static_cast<std::uint64_t>(rng.nextRange(4, 64));
    }

    return program;
}

} // namespace bpsim
