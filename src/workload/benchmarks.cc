#include "workload/benchmarks.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Table 2 of the paper: (static, dynamic) conditional branches. */
struct PaperCounts
{
    std::uint64_t staticBranches;
    std::uint64_t dynamicBranches;
};

const std::map<std::string, PaperCounts> &
paperTable2()
{
    static const std::map<std::string, PaperCounts> table = {
        {"compress", {482, 10'114'353}},
        {"gcc", {16'035, 26'520'618}},
        {"go", {5'112, 17'873'772}},
        {"xlisp", {636, 25'008'567}},
        {"perl", {1'974, 39'714'684}},
        {"vortex", {6'599, 27'792'020}},
        {"groff", {6'333, 11'901'481}},
        {"gs", {12'852, 16'307'247}},
        {"mpeg_play", {5'598, 9'566'290}},
        {"nroff", {5'249, 22'574'884}},
        {"real_gcc", {17'361, 14'309'867}},
        {"sdet", {5'310, 5'514'439}},
        {"verilog", {4'636, 6'212'381}},
        {"video_play", {4'606, 5'759'231}},
    };
    return table;
}

/** Dynamic counts are scaled to keep full sweeps laptop-scale. */
std::uint64_t
scaledDynamic(std::uint64_t paper_dynamic)
{
    return std::min<std::uint64_t>(paper_dynamic / 10, 2'500'000);
}

/** Starts a spec with the Table 2 population and a per-benchmark
 *  seed. */
WorkloadSpec
baseSpec(const std::string &name, const std::string &suite,
         std::uint64_t seed)
{
    const auto it = paperTable2().find(name);
    if (it == paperTable2().end())
        BPSIM_PANIC("no Table 2 entry for benchmark '" << name << "'");
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = suite;
    spec.staticBranches = it->second.staticBranches;
    spec.dynamicBranches = scaledDynamic(it->second.dynamicBranches);
    spec.seed = seed;
    return spec;
}

// --------------------------------------------------------------- SPEC 95

/**
 * compress: tiny static footprint (482 branches), dominated by the
 * compression inner loops, with data-dependent hash-hit branches
 * correlated with deep global history. With almost no aliasing
 * pressure, the longest-history configuration (gshare.1PHT) wins —
 * the paper's Figure 3 exception.
 */
WorkloadSpec
makeCompress()
{
    WorkloadSpec spec = baseSpec("compress", "SPEC CINT95", 0xc0317e55);
    spec.mix.stronglyBiased = 0.20;
    spec.mix.loop = 0.24;
    spec.mix.globalCorrelated = 0.40;
    spec.mix.localCorrelated = 0.02;
    spec.mix.pattern = 0.06;
    spec.mix.phaseModal = 0.01;
    spec.mix.weaklyBiased = 0.04;
    spec.params.corrDepthLo = 8;
    spec.params.corrDepthHi = 14;
    spec.params.corrNoise = 0.008;
    spec.params.loopTripLo = 5.0;
    spec.params.loopTripHi = 18.0;
    spec.params.loopDeterministicShare = 0.97;
    spec.params.patternLenLo = 7;
    spec.params.patternLenHi = 14;
    spec.sitesPerRoutine = 14.0;
    return spec;
}

/**
 * gcc: the paper's canonical aliasing-bound program — 16k static
 * branches overwhelm small tables. A broad mix of guard branches in
 * both directions plus moderate-depth correlation.
 */
WorkloadSpec
makeGcc()
{
    WorkloadSpec spec = baseSpec("gcc", "SPEC CINT95", 0x9cc00001);
    spec.mix.stronglyBiased = 0.36;
    spec.mix.loop = 0.12;
    spec.mix.globalCorrelated = 0.26;
    spec.mix.localCorrelated = 0.05;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.04;
    spec.mix.weaklyBiased = 0.10;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.02;
    return spec;
}

/**
 * go: intrinsically hard — the paper measures about half of its
 * dynamic branches as weakly biased, so mispredictions are dominated
 * by the WB class and de-aliasing has little room (Figure 8).
 */
WorkloadSpec
makeGo()
{
    WorkloadSpec spec = baseSpec("go", "SPEC CINT95", 0x90909090);
    spec.mix.stronglyBiased = 0.24;
    spec.mix.loop = 0.08;
    spec.mix.globalCorrelated = 0.32;
    spec.mix.localCorrelated = 0.03;
    spec.mix.pattern = 0.02;
    spec.mix.phaseModal = 0.02;
    spec.mix.weaklyBiased = 0.24;
    spec.params.weakLo = 0.52;
    spec.params.weakHi = 0.78;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 6;
    spec.params.corrNoise = 0.06;
    spec.params.corrOutputBias = 0.68;
    return spec;
}

/**
 * xlisp: 636 static branches of recursive list traversal — deep
 * history correlation, minimal aliasing; the other Figure 3
 * exception where gshare.1PHT beats everything.
 */
WorkloadSpec
makeXlisp()
{
    WorkloadSpec spec = baseSpec("xlisp", "SPEC CINT95", 0x11597411);
    spec.mix.stronglyBiased = 0.24;
    spec.mix.loop = 0.10;
    spec.mix.globalCorrelated = 0.43;
    spec.mix.localCorrelated = 0.02;
    spec.mix.pattern = 0.08;
    spec.mix.phaseModal = 0.01;
    spec.mix.weaklyBiased = 0.06;
    spec.params.corrDepthLo = 7;
    spec.params.corrDepthHi = 14;
    spec.params.corrNoise = 0.008;
    spec.params.loopDeterministicShare = 0.97;
    spec.params.patternLenLo = 6;
    spec.params.patternLenHi = 14;
    spec.sitesPerRoutine = 14.0;
    return spec;
}

/** perl: small footprint, interpreter dispatch — quite predictable
 *  with history; moderate aliasing. */
WorkloadSpec
makePerl()
{
    WorkloadSpec spec = baseSpec("perl", "SPEC CINT95", 0x9e71a111);
    spec.mix.stronglyBiased = 0.38;
    spec.mix.loop = 0.14;
    spec.mix.globalCorrelated = 0.28;
    spec.mix.localCorrelated = 0.05;
    spec.mix.pattern = 0.04;
    spec.mix.phaseModal = 0.03;
    spec.mix.weaklyBiased = 0.08;
    spec.params.corrDepthLo = 3;
    spec.params.corrDepthHi = 11;
    spec.params.corrNoise = 0.015;
    return spec;
}

/** vortex: large footprint but extremely biased branches — the most
 *  predictable CINT95 program in the paper (~1-2% floor). */
WorkloadSpec
makeVortex()
{
    WorkloadSpec spec = baseSpec("vortex", "SPEC CINT95", 0x40e7ec5);
    spec.mix.stronglyBiased = 0.68;
    spec.mix.loop = 0.09;
    spec.mix.globalCorrelated = 0.14;
    spec.mix.localCorrelated = 0.02;
    spec.mix.pattern = 0.02;
    spec.mix.phaseModal = 0.03;
    spec.mix.weaklyBiased = 0.02;
    spec.params.strongLo = 0.975;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 8;
    spec.params.corrNoise = 0.01;
    spec.params.corrOutputBias = 0.85;
    return spec;
}

// ------------------------------------------------------------ IBS-Ultrix

/** groff: text formatter with OS activity; mid-size footprint,
 *  fairly predictable. */
WorkloadSpec
makeGroff()
{
    WorkloadSpec spec = baseSpec("groff", "IBS-Ultrix", 0x62aff001);
    spec.mix.stronglyBiased = 0.42;
    spec.mix.loop = 0.13;
    spec.mix.globalCorrelated = 0.24;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.04;
    spec.mix.weaklyBiased = 0.10;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 10;
    spec.params.corrNoise = 0.02;
    return spec;
}

/** gs: ghostscript — large 12.9k-branch footprint, aliasing-bound
 *  like gcc but with more biased guards. */
WorkloadSpec
makeGs()
{
    WorkloadSpec spec = baseSpec("gs", "IBS-Ultrix", 0x6705c817);
    spec.mix.stronglyBiased = 0.44;
    spec.mix.loop = 0.12;
    spec.mix.globalCorrelated = 0.22;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.04;
    spec.mix.weaklyBiased = 0.11;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.02;
    return spec;
}

/** mpeg_play: media decode loops — loop heavy, phase-modal across
 *  frame types. */
WorkloadSpec
makeMpegPlay()
{
    WorkloadSpec spec = baseSpec("mpeg_play", "IBS-Ultrix", 0x3be90b1a);
    spec.mix.stronglyBiased = 0.34;
    spec.mix.loop = 0.22;
    spec.mix.globalCorrelated = 0.20;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.06;
    spec.mix.phaseModal = 0.06;
    spec.mix.weaklyBiased = 0.08;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.02;
    return spec;
}

/** nroff: formatter; similar to groff with a smaller footprint and
 *  longer runs. */
WorkloadSpec
makeNroff()
{
    WorkloadSpec spec = baseSpec("nroff", "IBS-Ultrix", 0x0a0ff317);
    spec.mix.stronglyBiased = 0.40;
    spec.mix.loop = 0.14;
    spec.mix.globalCorrelated = 0.26;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.03;
    spec.mix.weaklyBiased = 0.10;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 10;
    spec.params.corrNoise = 0.018;
    return spec;
}

/** real_gcc: the IBS gcc trace with kernel activity — the largest
 *  footprint in the suite (17.4k branches) and the hardest IBS
 *  program in the paper. */
WorkloadSpec
makeRealGcc()
{
    WorkloadSpec spec = baseSpec("real_gcc", "IBS-Ultrix", 0x4ea19cc0);
    spec.mix.stronglyBiased = 0.34;
    spec.mix.loop = 0.11;
    spec.mix.globalCorrelated = 0.25;
    spec.mix.localCorrelated = 0.05;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.05;
    spec.mix.weaklyBiased = 0.17;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.03;
    return spec;
}

/** sdet: SPEC SDM systems workload — kernel-heavy, biased guards. */
WorkloadSpec
makeSdet()
{
    WorkloadSpec spec = baseSpec("sdet", "IBS-Ultrix", 0x5de70bb5);
    spec.mix.stronglyBiased = 0.44;
    spec.mix.loop = 0.12;
    spec.mix.globalCorrelated = 0.22;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.03;
    spec.mix.phaseModal = 0.04;
    spec.mix.weaklyBiased = 0.11;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.022;
    return spec;
}

/** verilog: event-driven simulation — dispatch correlation plus
 *  data-dependent evaluation branches. */
WorkloadSpec
makeVerilog()
{
    WorkloadSpec spec = baseSpec("verilog", "IBS-Ultrix", 0x7e1170c0);
    spec.mix.stronglyBiased = 0.38;
    spec.mix.loop = 0.12;
    spec.mix.globalCorrelated = 0.26;
    spec.mix.localCorrelated = 0.05;
    spec.mix.pattern = 0.04;
    spec.mix.phaseModal = 0.03;
    spec.mix.weaklyBiased = 0.12;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 10;
    spec.params.corrNoise = 0.022;
    return spec;
}

/** video_play: like mpeg_play; decode loops and phases. */
WorkloadSpec
makeVideoPlay()
{
    WorkloadSpec spec = baseSpec("video_play", "IBS-Ultrix", 0x71de0b1a);
    spec.mix.stronglyBiased = 0.34;
    spec.mix.loop = 0.20;
    spec.mix.globalCorrelated = 0.20;
    spec.mix.localCorrelated = 0.04;
    spec.mix.pattern = 0.06;
    spec.mix.phaseModal = 0.06;
    spec.mix.weaklyBiased = 0.10;
    spec.params.corrDepthLo = 2;
    spec.params.corrDepthHi = 9;
    spec.params.corrNoise = 0.022;
    return spec;
}

} // namespace

std::vector<WorkloadSpec>
specCint95Benchmarks()
{
    return {makeCompress(), makeGcc(), makeGo(), makeXlisp(), makePerl(),
            makeVortex()};
}

std::vector<WorkloadSpec>
ibsBenchmarks()
{
    return {makeGroff(), makeGs(), makeMpegPlay(), makeNroff(),
            makeRealGcc(), makeSdet(), makeVerilog(), makeVideoPlay()};
}

std::vector<WorkloadSpec>
allBenchmarks()
{
    std::vector<WorkloadSpec> all = specCint95Benchmarks();
    std::vector<WorkloadSpec> ibs = ibsBenchmarks();
    all.insert(all.end(), std::make_move_iterator(ibs.begin()),
               std::make_move_iterator(ibs.end()));
    return all;
}

std::optional<WorkloadSpec>
findBenchmark(const std::string &name)
{
    for (auto &spec : allBenchmarks()) {
        if (spec.name == name)
            return spec;
    }
    return std::nullopt;
}

std::uint64_t
paperDynamicCount(const std::string &name)
{
    const auto it = paperTable2().find(name);
    if (it == paperTable2().end())
        BPSIM_FATAL("unknown benchmark '" << name << "'");
    return it->second.dynamicBranches;
}

std::uint64_t
paperStaticCount(const std::string &name)
{
    const auto it = paperTable2().find(name);
    if (it == paperTable2().end())
        BPSIM_FATAL("unknown benchmark '" << name << "'");
    return it->second.staticBranches;
}

WorkloadSpec
scaledBenchmark(WorkloadSpec spec, std::uint64_t divisor)
{
    if (divisor > 1) {
        spec.dynamicBranches = std::max<std::uint64_t>(
            spec.dynamicBranches / divisor, 50'000);
    }
    return spec;
}

} // namespace bpsim
