#include "workload/spec_io.hh"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Trims ASCII whitespace from both ends. */
std::string
trim(const std::string &text)
{
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

double
parseDouble(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        BPSIM_FATAL("spec key '" << key << "': '" << text
                    << "' is not a number");
    return value;
}

std::uint64_t
parseUint(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        BPSIM_FATAL("spec key '" << key << "': '" << text
                    << "' is not an integer");
    return value;
}

std::string
formatDouble(double value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

/** Setter/getter pair for one file key. */
struct Field
{
    std::function<void(WorkloadSpec &, const std::string &,
                       const std::string &)>
        set;
    std::function<std::string(const WorkloadSpec &)> get;
};

Field
stringField(std::string WorkloadSpec::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &,
                 const std::string &v) { s.*member = v; },
        [member](const WorkloadSpec &s) { return s.*member; }};
}

Field
uintField(std::uint64_t WorkloadSpec::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &key,
                 const std::string &v) { s.*member = parseUint(key, v); },
        [member](const WorkloadSpec &s) {
            return std::to_string(s.*member);
        }};
}

Field
doubleField(double WorkloadSpec::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &key,
                 const std::string &v) {
            s.*member = parseDouble(key, v);
        },
        [member](const WorkloadSpec &s) {
            return formatDouble(s.*member);
        }};
}

Field
mixField(double BehaviorMix::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &key,
                 const std::string &v) {
            s.mix.*member = parseDouble(key, v);
        },
        [member](const WorkloadSpec &s) {
            return formatDouble(s.mix.*member);
        }};
}

Field
paramDoubleField(double BehaviorParams::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &key,
                 const std::string &v) {
            s.params.*member = parseDouble(key, v);
        },
        [member](const WorkloadSpec &s) {
            return formatDouble(s.params.*member);
        }};
}

Field
paramUnsignedField(unsigned BehaviorParams::*member)
{
    return Field{
        [member](WorkloadSpec &s, const std::string &key,
                 const std::string &v) {
            s.params.*member =
                static_cast<unsigned>(parseUint(key, v));
        },
        [member](const WorkloadSpec &s) {
            return std::to_string(s.params.*member);
        }};
}

const std::map<std::string, Field> &
fieldRegistry()
{
    static const std::map<std::string, Field> registry = {
        {"name", stringField(&WorkloadSpec::name)},
        {"suite", stringField(&WorkloadSpec::suite)},
        {"static_branches", uintField(&WorkloadSpec::staticBranches)},
        {"dynamic_branches", uintField(&WorkloadSpec::dynamicBranches)},
        {"seed", uintField(&WorkloadSpec::seed)},
        {"zipf_exponent", doubleField(&WorkloadSpec::zipfExponent)},
        {"zipf_offset", doubleField(&WorkloadSpec::zipfOffset)},
        {"sites_per_routine",
         doubleField(&WorkloadSpec::sitesPerRoutine)},
        {"code_base", uintField(&WorkloadSpec::codeBase)},
        {"mix.strongly_biased", mixField(&BehaviorMix::stronglyBiased)},
        {"mix.loop", mixField(&BehaviorMix::loop)},
        {"mix.global_correlated",
         mixField(&BehaviorMix::globalCorrelated)},
        {"mix.local_correlated",
         mixField(&BehaviorMix::localCorrelated)},
        {"mix.pattern", mixField(&BehaviorMix::pattern)},
        {"mix.phase_modal", mixField(&BehaviorMix::phaseModal)},
        {"mix.weakly_biased", mixField(&BehaviorMix::weaklyBiased)},
        {"params.strong_lo",
         paramDoubleField(&BehaviorParams::strongLo)},
        {"params.strong_hi",
         paramDoubleField(&BehaviorParams::strongHi)},
        {"params.strong_taken_share",
         paramDoubleField(&BehaviorParams::strongTakenShare)},
        {"params.weak_lo", paramDoubleField(&BehaviorParams::weakLo)},
        {"params.weak_hi", paramDoubleField(&BehaviorParams::weakHi)},
        {"params.loop_trip_lo",
         paramDoubleField(&BehaviorParams::loopTripLo)},
        {"params.loop_trip_hi",
         paramDoubleField(&BehaviorParams::loopTripHi)},
        {"params.loop_deterministic_share",
         paramDoubleField(&BehaviorParams::loopDeterministicShare)},
        {"params.corr_depth_lo",
         paramUnsignedField(&BehaviorParams::corrDepthLo)},
        {"params.corr_depth_hi",
         paramUnsignedField(&BehaviorParams::corrDepthHi)},
        {"params.corr_noise",
         paramDoubleField(&BehaviorParams::corrNoise)},
        {"params.corr_output_bias",
         paramDoubleField(&BehaviorParams::corrOutputBias)},
        {"params.local_depth_lo",
         paramUnsignedField(&BehaviorParams::localDepthLo)},
        {"params.local_depth_hi",
         paramUnsignedField(&BehaviorParams::localDepthHi)},
        {"params.pattern_len_lo",
         paramUnsignedField(&BehaviorParams::patternLenLo)},
        {"params.pattern_len_hi",
         paramUnsignedField(&BehaviorParams::patternLenHi)},
        {"params.phase_length",
         paramDoubleField(&BehaviorParams::phaseLength)},
        {"emit_calls_and_returns",
         Field{[](WorkloadSpec &s, const std::string &key,
                  const std::string &v) {
                   s.emitCallsAndReturns = parseUint(key, v) != 0;
               },
               [](const WorkloadSpec &s) {
                   return std::string(s.emitCallsAndReturns ? "1" : "0");
               }}},
        {"call_site_probability",
         doubleField(&WorkloadSpec::callSiteProbability)},
    };
    return registry;
}

} // namespace

WorkloadSpec
parseWorkloadSpec(std::istream &in, const std::string &sourceName)
{
    WorkloadSpec spec;
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos)
            BPSIM_FATAL(sourceName << ":" << line_number
                        << ": expected 'key = value', got '" << trimmed
                        << "'");
        const std::string key = trim(trimmed.substr(0, eq));
        const std::string value = trim(trimmed.substr(eq + 1));
        const auto field = fieldRegistry().find(key);
        if (field == fieldRegistry().end())
            BPSIM_FATAL(sourceName << ":" << line_number
                        << ": unknown spec key '" << key << "'");
        field->second.set(spec, key, value);
    }
    return spec;
}

WorkloadSpec
loadWorkloadSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        BPSIM_FATAL("cannot open workload spec '" << path << "'");
    return parseWorkloadSpec(in, path);
}

void
writeWorkloadSpec(std::ostream &out, const WorkloadSpec &spec)
{
    out << "# bimode-bp workload spec\n";
    for (const auto &[key, field] : fieldRegistry())
        out << key << " = " << field.get(spec) << "\n";
}

void
saveWorkloadSpec(const std::string &path, const WorkloadSpec &spec)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        BPSIM_FATAL("cannot write workload spec '" << path << "'");
    writeWorkloadSpec(out, spec);
    out.flush();
    if (!out)
        BPSIM_FATAL("I/O error writing workload spec '" << path << "'");
}

} // namespace bpsim
