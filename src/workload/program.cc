#include "workload/program.hh"

namespace bpsim
{

void
Program::addRoutine(Routine routine)
{
    routines.push_back(std::move(routine));
}

std::size_t
Program::siteCount() const
{
    std::size_t total = 0;
    for (const auto &routine : routines)
        total += routine.sites.size();
    return total;
}

void
Program::resetState()
{
    for (auto &routine : routines) {
        for (auto &site : routine.sites) {
            site.behavior->reset();
            site.localHistory = 0;
        }
    }
}

} // namespace bpsim
