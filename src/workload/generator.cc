#include "workload/generator.hh"

#include <numeric>

#include "util/logging.hh"
#include "workload/program_builder.hh"

namespace bpsim
{

namespace
{

/** Offset mixed into the spec seed for the execution RNG stream so
 *  construction and execution draw from independent streams. */
constexpr std::uint64_t kExecutionSeedSalt = 0x9d2c'5680'1ce4'e5b9ULL;

/**
 * Probability of re-dispatching through the Zipf sampler instead of
 * following the current routine's Markov successors. Kept small:
 * control-flow paths in real programs are highly repetitive, and the
 * repetitiveness is precisely what lets history-indexed predictors
 * converge — every re-dispatch gives the next routine's branches a
 * history window they have rarely seen before.
 */
constexpr double kRedispatchProbability = 0.06;

} // namespace

TraceGenerator::TraceGenerator(Program &program, const WorkloadSpec &spec)
    : program(program), spec(spec),
      rng(spec.seed ^ kExecutionSeedSalt),
      routineSampler(std::max<std::size_t>(program.routineCount(), 1),
                     spec.zipfExponent, spec.zipfOffset)
{
    if (program.routineCount() == 0)
        BPSIM_FATAL("cannot generate a trace from an empty program");

    // Map Zipf ranks onto routines in a shuffled order so the hot
    // routines are scattered across the code region.
    routineOrder.resize(program.routineCount());
    std::iota(routineOrder.begin(), routineOrder.end(), std::size_t{0});
    Rng setup_rng(spec.seed ^ 0x5851'f42d'4c95'7f2dULL);
    for (std::size_t i = routineOrder.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(setup_rng.nextBounded(i));
        std::swap(routineOrder[i - 1], routineOrder[j]);
    }

    // Markov successors: drawn through the Zipf sampler so hot
    // routines stay hot under chained control flow as well.
    successors.resize(program.routineCount());
    for (auto &list : successors) {
        for (auto &succ : list)
            succ = routineOrder[routineSampler.sample(setup_rng)];
    }
}

void
TraceGenerator::restart()
{
    program.resetState();
    globalHistory = 0;
    rng = Rng(spec.seed ^ kExecutionSeedSalt);
}

std::size_t
TraceGenerator::pickNextRoutine(std::size_t current)
{
    // Rare uniform escape: cold paths do run occasionally (signal
    // handlers, error paths, phase changes), which also keeps the
    // executed-site population close to the configured Table 2
    // static count.
    if (rng.nextBool(0.005))
        return static_cast<std::size_t>(
            rng.nextBounded(program.routineCount()));
    if (rng.nextBool(kRedispatchProbability))
        return routineOrder[routineSampler.sample(rng)];
    const auto &list = successors[current];
    // Weighted toward the first successor (callers repeat their
    // dominant call sequence most of the time).
    const double point = rng.nextDouble();
    if (point < 0.72)
        return list[0];
    if (point < 0.92)
        return list[1];
    return list[2];
}

void
TraceGenerator::walkRoutine(std::size_t routineIndex, unsigned depth,
                            std::uint64_t count, std::uint64_t &emitted,
                            TraceWriter &sink)
{
    Routine &routine = program.routine(routineIndex);
    BranchRecord record;

    std::size_t i = 0;
    while (i < routine.sites.size() && emitted < count) {
        BranchSite &site = routine.sites[i];
        bool outcome;
        do {
            BehaviorContext ctx;
            ctx.rng = &rng;
            ctx.globalHistory = globalHistory;
            ctx.localHistory = site.localHistory;
            outcome = site.behavior->nextOutcome(ctx);

            record.pc = site.pc;
            record.target = site.takenTarget;
            record.type = BranchType::Conditional;
            record.taken = outcome;
            sink.append(record);

            globalHistory = (globalHistory << 1) | (outcome ? 1 : 0);
            site.localHistory =
                (site.localHistory << 1) | (outcome ? 1 : 0);
            ++emitted;
            // A loop site repeats while its back edge is taken.
        } while (site.isLoop && outcome && emitted < count);

        // Optional nested call to a successor routine: emit the
        // call, walk the callee, emit the matching return. The
        // call site sits just past the current branch.
        if (spec.emitCallsAndReturns && depth < 8 && emitted < count &&
            rng.nextBool(spec.callSiteProbability)) {
            const std::size_t callee = pickNextRoutine(routineIndex);
            const std::uint64_t call_pc = site.pc + 4;
            const std::uint64_t callee_entry =
                program.routine(callee).sites.front().pc - 4;

            record.pc = call_pc;
            record.target = callee_entry;
            record.type = BranchType::Call;
            record.taken = true;
            sink.append(record);
            ++emitted;

            walkRoutine(callee, depth + 1, count, emitted, sink);

            if (emitted < count) {
                const std::uint64_t callee_exit =
                    program.routine(callee).sites.back().pc + 8;
                record.pc = callee_exit;
                record.target = call_pc + 4;
                record.type = BranchType::Return;
                record.taken = true;
                sink.append(record);
                ++emitted;
            }
        }

        if (!site.isLoop && outcome && site.skipOnTaken > 0)
            i += 1 + site.skipOnTaken;
        else
            i += 1;
    }
}

void
TraceGenerator::generate(std::uint64_t count, TraceWriter &sink)
{
    std::uint64_t emitted = 0;

    // Cold sweep: run every routine once up front, the way program
    // initialization touches code that the steady state rarely
    // revisits. This pins the executed static-branch population to
    // the configured Table 2 count (modulo skipped diamond arms).
    std::vector<std::size_t> sweep_order(program.routineCount());
    std::iota(sweep_order.begin(), sweep_order.end(), std::size_t{0});
    for (std::size_t i = sweep_order.size(); i > 1; --i)
        std::swap(sweep_order[i - 1],
                  sweep_order[static_cast<std::size_t>(rng.nextBounded(i))]);
    std::size_t sweep_position = 0;

    std::size_t current = routineOrder[routineSampler.sample(rng)];
    while (emitted < count) {
        if (sweep_position < sweep_order.size() &&
            program.siteCount() * 2 < count) {
            current = sweep_order[sweep_position++];
        }
        walkRoutine(current, 0, count, emitted, sink);
        current = pickNextRoutine(current);
    }
}

MemoryTrace
generateWorkloadTrace(const WorkloadSpec &spec)
{
    Program program = buildProgram(spec);
    TraceGenerator generator(program, spec);
    MemoryTrace trace;
    trace.reserve(spec.dynamicBranches);
    generator.generate(spec.dynamicBranches, trace);
    return trace;
}

} // namespace bpsim
