/**
 * @file
 * Per-branch outcome behaviour models for synthetic workloads.
 *
 * The paper's traces are unavailable (IBS hardware-monitor traces of
 * a MIPS R2000 and ATOM-instrumented SPEC CINT95 runs), so the
 * workload substrate synthesizes programs whose branches follow the
 * behaviour families real integer code exhibits:
 *
 *  - strongly biased branches (error checks, guards)        Biased
 *  - loop back-edges (taken n-1 times, exits once)          Loop
 *  - repeating control patterns                             Pattern
 *  - branches correlated with neighbouring outcomes         GlobalCorrelated
 *  - branches correlated with their own recent outcomes     LocalCorrelated
 *  - branches whose bias flips between program phases       PhaseModal
 *  - weakly biased data-dependent branches                  Biased(p~0.5)
 *
 * Each model decides outcomes from the *actual executed* global and
 * local history carried in BehaviorContext, so history correlation
 * in the generated trace is real, not injected.
 */

#ifndef BPSIM_WORKLOAD_BEHAVIOR_HH
#define BPSIM_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace bpsim
{

/** Execution context visible to a behaviour when deciding an outcome. */
struct BehaviorContext
{
    /** Per-site RNG stream (deterministic per workload seed). */
    Rng *rng = nullptr;
    /** Executed global outcome history, newest outcome in bit 0. */
    std::uint64_t globalHistory = 0;
    /** Executed history of this branch site, newest in bit 0. */
    std::uint64_t localHistory = 0;
};

/** Abstract per-site outcome model. */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /** Decides the next outcome of this branch site. */
    virtual bool nextOutcome(BehaviorContext &ctx) = 0;

    /** Restores the initial internal state (loop counters, phases). */
    virtual void reset() = 0;

    /** Short description for debugging and workload dumps. */
    virtual std::string describe() const = 0;
};

using BehaviorPtr = std::unique_ptr<BranchBehavior>;

/** Bernoulli outcomes with fixed probability. */
class BiasedBehavior : public BranchBehavior
{
  public:
    /** @param takenProbability probability of a taken outcome */
    explicit BiasedBehavior(double takenProbability);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override {}
    std::string describe() const override;

    double takenProbability() const { return probability; }

  private:
    double probability;
};

/**
 * Loop back-edge: taken until the trip count is exhausted, then one
 * not-taken exit. The trip count is resampled for each loop entry
 * around the configured mean (geometrically), so the pattern is
 * "almost periodic" the way real loop bounds are.
 */
class LoopBehavior : public BranchBehavior
{
  public:
    /**
     * @param meanTrips mean iterations per entry (>= 1)
     * @param deterministic when true every entry runs exactly
     *        meanTrips iterations (fully history-predictable)
     */
    LoopBehavior(double meanTrips, bool deterministic);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override;
    std::string describe() const override;

  private:
    void resample(Rng &rng);

    double meanTrips;
    bool deterministic;
    std::uint64_t remaining = 0;
    bool armed = false;
};

/** Cycles through a fixed outcome pattern. */
class PatternBehavior : public BranchBehavior
{
  public:
    /** @param pattern outcome sequence; must be non-empty */
    explicit PatternBehavior(std::vector<bool> pattern);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override { position = 0; }
    std::string describe() const override;

  private:
    std::vector<bool> pattern;
    std::size_t position = 0;
};

/**
 * Outcome is a fixed random boolean function of a few *specific*
 * bits of the executed global history (the way real if-then-else
 * correlation works: "this guard repeats the decision the branch
 * two blocks ago made"), flipped with a small noise probability.
 *
 * The function reads 1-3 bit positions drawn within the configured
 * depth, so a global-history predictor whose history reaches the
 * deepest position learns the branch to (1 - noise) accuracy while
 * the branch's pattern working set stays small (2, 4 or 8 history
 * patterns per site, not 2^depth). To an address-indexed predictor
 * the branch looks weakly biased.
 */
class GlobalCorrelatedBehavior : public BranchBehavior
{
  public:
    /**
     * @param depth deepest history position read (1..16)
     * @param noise probability of deviating from the function
     * @param tableSeed seeds the bit selection and truth table
     * @param bias fraction of truth-table entries that map to taken
     */
    GlobalCorrelatedBehavior(unsigned depth, double noise,
                             std::uint64_t tableSeed, double bias = 0.5);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override {}
    std::string describe() const override;

    unsigned depth() const { return depthBits; }

  private:
    unsigned depthBits;
    double noise;
    /** History bit positions the function reads (newest = 0). */
    std::vector<unsigned> inputBits;
    std::vector<bool> truthTable;
};

/** Like GlobalCorrelatedBehavior but keyed on the site's own recent
 *  outcomes — the behaviour class per-address history exploits. */
class LocalCorrelatedBehavior : public BranchBehavior
{
  public:
    LocalCorrelatedBehavior(unsigned depth, double noise,
                            std::uint64_t tableSeed, double bias = 0.5);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override {}
    std::string describe() const override;

  private:
    unsigned depthBits;
    double noise;
    std::vector<unsigned> inputBits;
    std::vector<bool> truthTable;
};

/**
 * Bias that flips between two phases with geometrically distributed
 * phase lengths: the "current mode of the program" behaviour the
 * bi-mode choice predictor tracks.
 */
class PhaseModalBehavior : public BranchBehavior
{
  public:
    /**
     * @param takenProbabilityA bias during phase A
     * @param takenProbabilityB bias during phase B
     * @param meanPhaseLength mean executions per phase
     */
    PhaseModalBehavior(double takenProbabilityA, double takenProbabilityB,
                       double meanPhaseLength);

    bool nextOutcome(BehaviorContext &ctx) override;
    void reset() override;
    std::string describe() const override;

  private:
    double probabilityA;
    double probabilityB;
    double meanPhaseLength;
    bool inPhaseA = true;
    std::uint64_t remainingInPhase = 0;
    bool armed = false;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_BEHAVIOR_HH
