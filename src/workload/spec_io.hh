/**
 * @file
 * WorkloadSpec serialization: a simple `key = value` text format so
 * custom workloads can be described in files and shared, instead of
 * recompiling.
 *
 * Example:
 *
 *   # my workload
 *   name = myapp
 *   static_branches = 3000
 *   dynamic_branches = 1000000
 *   seed = 42
 *   mix.strongly_biased = 0.4
 *   mix.weakly_biased = 0.1
 *   params.corr_depth_hi = 12
 *
 * Unset keys keep the WorkloadSpec defaults. Unknown keys are fatal
 * (typos should not silently produce a different workload).
 */

#ifndef BPSIM_WORKLOAD_SPEC_IO_HH
#define BPSIM_WORKLOAD_SPEC_IO_HH

#include <iosfwd>
#include <string>

#include "workload/workload_spec.hh"

namespace bpsim
{

/** Parses a spec from an input stream; fatal() on malformed input. */
WorkloadSpec parseWorkloadSpec(std::istream &in,
                               const std::string &sourceName = "<spec>");

/** Loads a spec from a file; fatal() if unreadable or malformed. */
WorkloadSpec loadWorkloadSpec(const std::string &path);

/** Writes a spec in the same format (all keys, commented header). */
void writeWorkloadSpec(std::ostream &out, const WorkloadSpec &spec);

/** Saves a spec to a file; fatal() on I/O failure. */
void saveWorkloadSpec(const std::string &path, const WorkloadSpec &spec);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_SPEC_IO_HH
