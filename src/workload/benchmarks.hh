/**
 * @file
 * The built-in benchmark suite: synthetic mirrors of the paper's
 * SPEC CINT95 and IBS-Ultrix programs (Table 2).
 *
 * Each spec reproduces the program's static conditional branch count
 * from Table 2 exactly and its dynamic count scaled by ~1/10 (capped
 * at 2.5M so the full figure sweeps stay laptop-scale), with a
 * behaviour mix tuned to the hardness profile the paper reports:
 * go weakly-biased-dominated, compress/xlisp tiny static footprints
 * with deep history correlation, gcc/real_gcc large aliasing-bound
 * footprints, vortex highly predictable, and so on.
 */

#ifndef BPSIM_WORKLOAD_BENCHMARKS_HH
#define BPSIM_WORKLOAD_BENCHMARKS_HH

#include <optional>
#include <vector>

#include "workload/workload_spec.hh"

namespace bpsim
{

/** The six SPEC CINT95 mirrors, in the paper's Table 2 order. */
std::vector<WorkloadSpec> specCint95Benchmarks();

/** The eight IBS-Ultrix mirrors, in the paper's Table 2 order. */
std::vector<WorkloadSpec> ibsBenchmarks();

/** All fourteen benchmarks, SPEC first. */
std::vector<WorkloadSpec> allBenchmarks();

/** Looks a benchmark up by name across both suites. */
std::optional<WorkloadSpec> findBenchmark(const std::string &name);

/** The paper's Table 2 dynamic branch counts (for reporting the
 *  scaling factor next to measured counts). */
std::uint64_t paperDynamicCount(const std::string &name);

/** The paper's Table 2 static branch counts. */
std::uint64_t paperStaticCount(const std::string &name);

/**
 * Scales a spec's dynamic branch count down by @p divisor (floored
 * at 50k so even --quick runs exercise real behaviour). The single
 * definition of the quick-run scaling, shared by the bench drivers'
 * --quick flag and the campaign service's "divisor" request field —
 * the two must agree for streamed results to match offline runs.
 */
WorkloadSpec scaledBenchmark(WorkloadSpec spec, std::uint64_t divisor);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_BENCHMARKS_HH
