#include "workload/behavior.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"

namespace bpsim
{

namespace
{

/** Builds a random truth table with the requested taken fraction. */
std::vector<bool>
makeTruthTable(unsigned inputs, Rng &rng, double bias)
{
    std::vector<bool> table(std::size_t{1} << inputs);
    bool saw_taken = false, saw_not = false;
    for (std::size_t i = 0; i < table.size(); ++i) {
        table[i] = rng.nextBool(bias);
        (table[i] ? saw_taken : saw_not) = true;
    }
    // A constant function is just a biased branch; force at least
    // one entry of each direction so the correlation is real.
    if (!saw_taken)
        table[0] = true;
    if (!saw_not)
        table[table.size() > 1 ? 1 : 0] = false;
    return table;
}

/** Picks 1-3 distinct history positions within [0, depth). */
std::vector<unsigned>
pickInputBits(unsigned depth, Rng &rng)
{
    const unsigned want = 1 + static_cast<unsigned>(rng.nextBounded(3));
    std::vector<unsigned> bits;
    for (unsigned attempt = 0; attempt < 16 && bits.size() < want;
         ++attempt) {
        const unsigned candidate =
            static_cast<unsigned>(rng.nextBounded(depth));
        bool duplicate = false;
        for (unsigned b : bits)
            duplicate |= b == candidate;
        if (!duplicate)
            bits.push_back(candidate);
    }
    // The function must read its deepest advertised position,
    // otherwise the effective depth is shallower than configured.
    bool has_deepest = false;
    for (unsigned b : bits)
        has_deepest |= b == depth - 1;
    if (!has_deepest)
        bits[0] = depth - 1;
    return bits;
}

/** Extracts the function key from a history register. */
std::size_t
extractKey(std::uint64_t history, const std::vector<unsigned> &bits)
{
    std::size_t key = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        key |= static_cast<std::size_t>((history >> bits[i]) & 1) << i;
    return key;
}

} // namespace

// ---------------------------------------------------------------- Biased

BiasedBehavior::BiasedBehavior(double takenProbability)
    : probability(std::clamp(takenProbability, 0.0, 1.0))
{
}

bool
BiasedBehavior::nextOutcome(BehaviorContext &ctx)
{
    return ctx.rng->nextBool(probability);
}

std::string
BiasedBehavior::describe() const
{
    std::ostringstream os;
    os << "biased(p=" << probability << ")";
    return os.str();
}

// ------------------------------------------------------------------ Loop

LoopBehavior::LoopBehavior(double meanTrips, bool deterministic)
    : meanTrips(std::max(meanTrips, 1.0)), deterministic(deterministic)
{
}

void
LoopBehavior::resample(Rng &rng)
{
    if (deterministic) {
        remaining = static_cast<std::uint64_t>(std::llround(meanTrips));
    } else {
        // Geometric around the mean, shifted so every entry runs at
        // least one iteration; cap to keep single loops from eating
        // the whole trace budget.
        const double p = 1.0 / meanTrips;
        remaining = 1 + rng.nextGeometric(p, 4096);
    }
    remaining = std::max<std::uint64_t>(remaining, 1);
    armed = true;
}

bool
LoopBehavior::nextOutcome(BehaviorContext &ctx)
{
    if (!armed)
        resample(*ctx.rng);
    // remaining iterations to run: take the back-edge while more
    // than one remains; the last evaluation falls through (exit).
    if (remaining > 1) {
        --remaining;
        return true;
    }
    armed = false;
    return false;
}

void
LoopBehavior::reset()
{
    armed = false;
    remaining = 0;
}

std::string
LoopBehavior::describe() const
{
    std::ostringstream os;
    os << "loop(mean=" << meanTrips
       << (deterministic ? ",det" : ",rand") << ")";
    return os.str();
}

// --------------------------------------------------------------- Pattern

PatternBehavior::PatternBehavior(std::vector<bool> pattern)
    : pattern(std::move(pattern))
{
    if (this->pattern.empty())
        BPSIM_PANIC("PatternBehavior requires a non-empty pattern");
}

bool
PatternBehavior::nextOutcome(BehaviorContext &)
{
    const bool outcome = pattern[position];
    position = (position + 1) % pattern.size();
    return outcome;
}

std::string
PatternBehavior::describe() const
{
    std::string text = "pattern(";
    for (bool b : pattern)
        text += b ? 'T' : 'N';
    text += ")";
    return text;
}

// ------------------------------------------------------ GlobalCorrelated

GlobalCorrelatedBehavior::GlobalCorrelatedBehavior(unsigned depth,
                                                   double noise,
                                                   std::uint64_t tableSeed,
                                                   double bias)
    : depthBits(depth), noise(noise)
{
    if (depth < 1 || depth > 16)
        BPSIM_PANIC("correlation depth " << depth << " out of range 1..16");
    Rng rng(tableSeed);
    inputBits = pickInputBits(depth, rng);
    truthTable = makeTruthTable(
        static_cast<unsigned>(inputBits.size()), rng, bias);
}

bool
GlobalCorrelatedBehavior::nextOutcome(BehaviorContext &ctx)
{
    bool outcome = truthTable[extractKey(ctx.globalHistory, inputBits)];
    if (noise > 0.0 && ctx.rng->nextBool(noise))
        outcome = !outcome;
    return outcome;
}

std::string
GlobalCorrelatedBehavior::describe() const
{
    std::ostringstream os;
    os << "gcorr(k=" << depthBits << ",noise=" << noise << ")";
    return os.str();
}

// ------------------------------------------------------- LocalCorrelated

LocalCorrelatedBehavior::LocalCorrelatedBehavior(unsigned depth,
                                                 double noise,
                                                 std::uint64_t tableSeed,
                                                 double bias)
    : depthBits(depth), noise(noise)
{
    if (depth < 1 || depth > 16)
        BPSIM_PANIC("correlation depth " << depth << " out of range 1..16");
    Rng rng(tableSeed);
    inputBits = pickInputBits(depth, rng);
    truthTable = makeTruthTable(
        static_cast<unsigned>(inputBits.size()), rng, bias);
}

bool
LocalCorrelatedBehavior::nextOutcome(BehaviorContext &ctx)
{
    bool outcome = truthTable[extractKey(ctx.localHistory, inputBits)];
    if (noise > 0.0 && ctx.rng->nextBool(noise))
        outcome = !outcome;
    return outcome;
}

std::string
LocalCorrelatedBehavior::describe() const
{
    std::ostringstream os;
    os << "lcorr(k=" << depthBits << ",noise=" << noise << ")";
    return os.str();
}

// ------------------------------------------------------------ PhaseModal

PhaseModalBehavior::PhaseModalBehavior(double takenProbabilityA,
                                       double takenProbabilityB,
                                       double meanPhaseLength)
    : probabilityA(std::clamp(takenProbabilityA, 0.0, 1.0)),
      probabilityB(std::clamp(takenProbabilityB, 0.0, 1.0)),
      meanPhaseLength(std::max(meanPhaseLength, 1.0))
{
}

bool
PhaseModalBehavior::nextOutcome(BehaviorContext &ctx)
{
    if (!armed || remainingInPhase == 0) {
        if (armed)
            inPhaseA = !inPhaseA;
        const double p = 1.0 / meanPhaseLength;
        remainingInPhase = 1 + ctx.rng->nextGeometric(p, 1u << 22);
        armed = true;
    }
    --remainingInPhase;
    return ctx.rng->nextBool(inPhaseA ? probabilityA : probabilityB);
}

void
PhaseModalBehavior::reset()
{
    inPhaseA = true;
    remainingInPhase = 0;
    armed = false;
}

std::string
PhaseModalBehavior::describe() const
{
    std::ostringstream os;
    os << "phase(pA=" << probabilityA << ",pB=" << probabilityB
       << ",len=" << meanPhaseLength << ")";
    return os.str();
}

} // namespace bpsim
