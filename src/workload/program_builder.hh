/**
 * @file
 * Materializes a WorkloadSpec into a static Program.
 */

#ifndef BPSIM_WORKLOAD_PROGRAM_BUILDER_HH
#define BPSIM_WORKLOAD_PROGRAM_BUILDER_HH

#include "workload/program.hh"
#include "workload/workload_spec.hh"

namespace bpsim
{

/**
 * Builds the static program for @p spec.
 *
 * Deterministic: the same spec (including seed) always produces the
 * same routines, addresses and behaviour assignments.
 */
Program buildProgram(const WorkloadSpec &spec);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_PROGRAM_BUILDER_HH
