/**
 * @file
 * Umbrella header: the whole public API of bimode-bp in one include.
 *
 * Downstream users who do not care about fine-grained includes can
 *
 *   #include "bpsim.hh"
 *
 * and reach every predictor, the workload generator, the simulator
 * and the analysis layer. Library code itself always includes the
 * specific headers.
 */

#ifndef BPSIM_BPSIM_HH
#define BPSIM_BPSIM_HH

// Utility substrate.
#include "util/args.hh"
#include "util/bits.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

// Trace substrate.
#include "trace/binary_io.hh"
#include "trace/branch_record.hh"
#include "trace/memory_trace.hh"
#include "trace/text_io.hh"
#include "trace/trace_source.hh"
#include "trace/trace_stats.hh"

// Synthetic workloads.
#include "workload/behavior.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"
#include "workload/program.hh"
#include "workload/program_builder.hh"
#include "workload/spec_io.hh"
#include "workload/workload_spec.hh"

// Predictors.
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/btb.hh"
#include "predictors/filter.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/perceptron.hh"
#include "predictors/predictor.hh"
#include "predictors/ras.hh"
#include "predictors/static_predictors.hh"
#include "predictors/tournament.hh"
#include "predictors/twolevel.hh"
#include "predictors/yags.hh"

// The paper's contribution and the factory.
#include "core/bimode.hh"
#include "core/factory.hh"

// Simulation engine.
#include "sim/gshare_sweep.hh"
#include "sim/interval_stats.hh"
#include "sim/pipeline_model.hh"
#include "sim/simulator.hh"
#include "sim/size_ladder.hh"
#include "sim/trace_cache.hh"

// Experiment campaigns (parallel grid execution).
#include "campaign/campaign.hh"
#include "campaign/emitters.hh"

// Section 4 analyses.
#include "analysis/bias_analysis.hh"
#include "analysis/bias_class.hh"
#include "analysis/counter_profile.hh"
#include "analysis/interference.hh"
#include "analysis/stream_tracker.hh"

#endif // BPSIM_BPSIM_HH
