
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/predictors/test_agree.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_agree.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_agree.cc.o.d"
  "/root/repo/tests/predictors/test_bimodal.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_bimodal.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_bimodal.cc.o.d"
  "/root/repo/tests/predictors/test_btb.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_btb.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_btb.cc.o.d"
  "/root/repo/tests/predictors/test_counter.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_counter.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_counter.cc.o.d"
  "/root/repo/tests/predictors/test_factory.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_factory.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_factory.cc.o.d"
  "/root/repo/tests/predictors/test_filter.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_filter.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_filter.cc.o.d"
  "/root/repo/tests/predictors/test_gshare.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_gshare.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_gshare.cc.o.d"
  "/root/repo/tests/predictors/test_gskew.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_gskew.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_gskew.cc.o.d"
  "/root/repo/tests/predictors/test_history.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_history.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_history.cc.o.d"
  "/root/repo/tests/predictors/test_perceptron.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_perceptron.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_perceptron.cc.o.d"
  "/root/repo/tests/predictors/test_properties.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_properties.cc.o.d"
  "/root/repo/tests/predictors/test_ras.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_ras.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_ras.cc.o.d"
  "/root/repo/tests/predictors/test_static.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_static.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_static.cc.o.d"
  "/root/repo/tests/predictors/test_tournament.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_tournament.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_tournament.cc.o.d"
  "/root/repo/tests/predictors/test_twolevel.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_twolevel.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_twolevel.cc.o.d"
  "/root/repo/tests/predictors/test_yags.cc" "tests/CMakeFiles/test_predictors.dir/predictors/test_yags.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors/test_yags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bpsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
