file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_bias_analysis.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_bias_analysis.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_bias_class.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_bias_class.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_counter_profile.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_counter_profile.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_interference.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_interference.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_stream_tracker.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_stream_tracker.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
