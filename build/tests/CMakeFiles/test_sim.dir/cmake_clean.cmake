file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_gshare_sweep.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_gshare_sweep.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_interval_stats.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_interval_stats.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_model.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_model.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_size_ladder.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_size_ladder.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace_cache.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_trace_cache.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
