
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_behavior.cc" "tests/CMakeFiles/test_workload.dir/workload/test_behavior.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_behavior.cc.o.d"
  "/root/repo/tests/workload/test_benchmarks.cc" "tests/CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o.d"
  "/root/repo/tests/workload/test_calls_returns.cc" "tests/CMakeFiles/test_workload.dir/workload/test_calls_returns.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_calls_returns.cc.o.d"
  "/root/repo/tests/workload/test_generator.cc" "tests/CMakeFiles/test_workload.dir/workload/test_generator.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_generator.cc.o.d"
  "/root/repo/tests/workload/test_golden.cc" "tests/CMakeFiles/test_workload.dir/workload/test_golden.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_golden.cc.o.d"
  "/root/repo/tests/workload/test_program_builder.cc" "tests/CMakeFiles/test_workload.dir/workload/test_program_builder.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_program_builder.cc.o.d"
  "/root/repo/tests/workload/test_spec_io.cc" "tests/CMakeFiles/test_workload.dir/workload/test_spec_io.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_spec_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bpsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
