file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_behavior.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_behavior.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_calls_returns.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_calls_returns.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_generator.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_generator.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_golden.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_golden.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_program_builder.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_program_builder.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_spec_io.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_spec_io.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
