# Empty dependencies file for aliasing_demo.
# This may be replaced when dependencies are built.
