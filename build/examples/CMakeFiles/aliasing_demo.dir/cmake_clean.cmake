file(REMOVE_RECURSE
  "CMakeFiles/aliasing_demo.dir/aliasing_demo.cpp.o"
  "CMakeFiles/aliasing_demo.dir/aliasing_demo.cpp.o.d"
  "aliasing_demo"
  "aliasing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aliasing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
