# Empty compiler generated dependencies file for learning_curve.
# This may be replaced when dependencies are built.
