# Empty compiler generated dependencies file for inspect_workload.
# This may be replaced when dependencies are built.
