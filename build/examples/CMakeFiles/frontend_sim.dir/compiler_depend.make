# Empty compiler generated dependencies file for frontend_sim.
# This may be replaced when dependencies are built.
