file(REMOVE_RECURSE
  "CMakeFiles/frontend_sim.dir/frontend_sim.cpp.o"
  "CMakeFiles/frontend_sim.dir/frontend_sim.cpp.o.d"
  "frontend_sim"
  "frontend_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
