file(REMOVE_RECURSE
  "CMakeFiles/bpsim_analysis.dir/bias_analysis.cc.o"
  "CMakeFiles/bpsim_analysis.dir/bias_analysis.cc.o.d"
  "CMakeFiles/bpsim_analysis.dir/bias_class.cc.o"
  "CMakeFiles/bpsim_analysis.dir/bias_class.cc.o.d"
  "CMakeFiles/bpsim_analysis.dir/counter_profile.cc.o"
  "CMakeFiles/bpsim_analysis.dir/counter_profile.cc.o.d"
  "CMakeFiles/bpsim_analysis.dir/interference.cc.o"
  "CMakeFiles/bpsim_analysis.dir/interference.cc.o.d"
  "CMakeFiles/bpsim_analysis.dir/stream_tracker.cc.o"
  "CMakeFiles/bpsim_analysis.dir/stream_tracker.cc.o.d"
  "libbpsim_analysis.a"
  "libbpsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
