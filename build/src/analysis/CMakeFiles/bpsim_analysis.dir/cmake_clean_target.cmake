file(REMOVE_RECURSE
  "libbpsim_analysis.a"
)
