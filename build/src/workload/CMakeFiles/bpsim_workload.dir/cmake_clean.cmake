file(REMOVE_RECURSE
  "CMakeFiles/bpsim_workload.dir/behavior.cc.o"
  "CMakeFiles/bpsim_workload.dir/behavior.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/benchmarks.cc.o"
  "CMakeFiles/bpsim_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/generator.cc.o"
  "CMakeFiles/bpsim_workload.dir/generator.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/program.cc.o"
  "CMakeFiles/bpsim_workload.dir/program.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/program_builder.cc.o"
  "CMakeFiles/bpsim_workload.dir/program_builder.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/spec_io.cc.o"
  "CMakeFiles/bpsim_workload.dir/spec_io.cc.o.d"
  "libbpsim_workload.a"
  "libbpsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
