
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/workload/CMakeFiles/bpsim_workload.dir/behavior.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/behavior.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/workload/CMakeFiles/bpsim_workload.dir/benchmarks.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/benchmarks.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/bpsim_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/bpsim_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/program.cc.o.d"
  "/root/repo/src/workload/program_builder.cc" "src/workload/CMakeFiles/bpsim_workload.dir/program_builder.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/program_builder.cc.o.d"
  "/root/repo/src/workload/spec_io.cc" "src/workload/CMakeFiles/bpsim_workload.dir/spec_io.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/spec_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
