# Empty dependencies file for bpsim_util.
# This may be replaced when dependencies are built.
