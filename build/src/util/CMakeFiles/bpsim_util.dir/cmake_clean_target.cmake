file(REMOVE_RECURSE
  "libbpsim_util.a"
)
