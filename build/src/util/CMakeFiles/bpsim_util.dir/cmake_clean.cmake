file(REMOVE_RECURSE
  "CMakeFiles/bpsim_util.dir/args.cc.o"
  "CMakeFiles/bpsim_util.dir/args.cc.o.d"
  "CMakeFiles/bpsim_util.dir/logging.cc.o"
  "CMakeFiles/bpsim_util.dir/logging.cc.o.d"
  "CMakeFiles/bpsim_util.dir/random.cc.o"
  "CMakeFiles/bpsim_util.dir/random.cc.o.d"
  "CMakeFiles/bpsim_util.dir/stats.cc.o"
  "CMakeFiles/bpsim_util.dir/stats.cc.o.d"
  "CMakeFiles/bpsim_util.dir/table.cc.o"
  "CMakeFiles/bpsim_util.dir/table.cc.o.d"
  "libbpsim_util.a"
  "libbpsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
