file(REMOVE_RECURSE
  "CMakeFiles/bpsim_sim.dir/gshare_sweep.cc.o"
  "CMakeFiles/bpsim_sim.dir/gshare_sweep.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/interval_stats.cc.o"
  "CMakeFiles/bpsim_sim.dir/interval_stats.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/pipeline_model.cc.o"
  "CMakeFiles/bpsim_sim.dir/pipeline_model.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/simulator.cc.o"
  "CMakeFiles/bpsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/size_ladder.cc.o"
  "CMakeFiles/bpsim_sim.dir/size_ladder.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/trace_cache.cc.o"
  "CMakeFiles/bpsim_sim.dir/trace_cache.cc.o.d"
  "libbpsim_sim.a"
  "libbpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
