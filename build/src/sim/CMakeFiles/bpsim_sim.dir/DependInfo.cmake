
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gshare_sweep.cc" "src/sim/CMakeFiles/bpsim_sim.dir/gshare_sweep.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/gshare_sweep.cc.o.d"
  "/root/repo/src/sim/interval_stats.cc" "src/sim/CMakeFiles/bpsim_sim.dir/interval_stats.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/interval_stats.cc.o.d"
  "/root/repo/src/sim/pipeline_model.cc" "src/sim/CMakeFiles/bpsim_sim.dir/pipeline_model.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/pipeline_model.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/bpsim_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/size_ladder.cc" "src/sim/CMakeFiles/bpsim_sim.dir/size_ladder.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/size_ladder.cc.o.d"
  "/root/repo/src/sim/trace_cache.cc" "src/sim/CMakeFiles/bpsim_sim.dir/trace_cache.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
