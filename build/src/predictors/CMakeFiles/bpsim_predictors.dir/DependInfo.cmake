
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/agree.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/agree.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/agree.cc.o.d"
  "/root/repo/src/predictors/bimodal.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimodal.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimodal.cc.o.d"
  "/root/repo/src/predictors/btb.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/btb.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/btb.cc.o.d"
  "/root/repo/src/predictors/filter.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/filter.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/filter.cc.o.d"
  "/root/repo/src/predictors/gshare.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare.cc.o.d"
  "/root/repo/src/predictors/gskew.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gskew.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gskew.cc.o.d"
  "/root/repo/src/predictors/perceptron.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/perceptron.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/perceptron.cc.o.d"
  "/root/repo/src/predictors/ras.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/ras.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/ras.cc.o.d"
  "/root/repo/src/predictors/static_predictors.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/static_predictors.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/static_predictors.cc.o.d"
  "/root/repo/src/predictors/tournament.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/tournament.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/tournament.cc.o.d"
  "/root/repo/src/predictors/twolevel.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/twolevel.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/twolevel.cc.o.d"
  "/root/repo/src/predictors/yags.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/yags.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/yags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
