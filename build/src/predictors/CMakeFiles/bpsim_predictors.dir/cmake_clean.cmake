file(REMOVE_RECURSE
  "CMakeFiles/bpsim_predictors.dir/agree.cc.o"
  "CMakeFiles/bpsim_predictors.dir/agree.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/bimodal.cc.o"
  "CMakeFiles/bpsim_predictors.dir/bimodal.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/btb.cc.o"
  "CMakeFiles/bpsim_predictors.dir/btb.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/filter.cc.o"
  "CMakeFiles/bpsim_predictors.dir/filter.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/gshare.cc.o"
  "CMakeFiles/bpsim_predictors.dir/gshare.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/gskew.cc.o"
  "CMakeFiles/bpsim_predictors.dir/gskew.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/perceptron.cc.o"
  "CMakeFiles/bpsim_predictors.dir/perceptron.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/ras.cc.o"
  "CMakeFiles/bpsim_predictors.dir/ras.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/static_predictors.cc.o"
  "CMakeFiles/bpsim_predictors.dir/static_predictors.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/tournament.cc.o"
  "CMakeFiles/bpsim_predictors.dir/tournament.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/twolevel.cc.o"
  "CMakeFiles/bpsim_predictors.dir/twolevel.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/yags.cc.o"
  "CMakeFiles/bpsim_predictors.dir/yags.cc.o.d"
  "libbpsim_predictors.a"
  "libbpsim_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
