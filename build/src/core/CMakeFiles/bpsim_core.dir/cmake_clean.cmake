file(REMOVE_RECURSE
  "CMakeFiles/bpsim_core.dir/bimode.cc.o"
  "CMakeFiles/bpsim_core.dir/bimode.cc.o.d"
  "CMakeFiles/bpsim_core.dir/factory.cc.o"
  "CMakeFiles/bpsim_core.dir/factory.cc.o.d"
  "libbpsim_core.a"
  "libbpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
