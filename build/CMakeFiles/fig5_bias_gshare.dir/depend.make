# Empty dependencies file for fig5_bias_gshare.
# This may be replaced when dependencies are built.
