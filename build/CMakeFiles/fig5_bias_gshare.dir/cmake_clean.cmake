file(REMOVE_RECURSE
  "CMakeFiles/fig5_bias_gshare.dir/bench/fig5_bias_gshare.cc.o"
  "CMakeFiles/fig5_bias_gshare.dir/bench/fig5_bias_gshare.cc.o.d"
  "bench/fig5_bias_gshare"
  "bench/fig5_bias_gshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bias_gshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
