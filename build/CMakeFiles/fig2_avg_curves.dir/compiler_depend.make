# Empty compiler generated dependencies file for fig2_avg_curves.
# This may be replaced when dependencies are built.
