file(REMOVE_RECURSE
  "CMakeFiles/fig2_avg_curves.dir/bench/fig2_avg_curves.cc.o"
  "CMakeFiles/fig2_avg_curves.dir/bench/fig2_avg_curves.cc.o.d"
  "bench/fig2_avg_curves"
  "bench/fig2_avg_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_avg_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
