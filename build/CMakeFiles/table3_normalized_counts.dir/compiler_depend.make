# Empty compiler generated dependencies file for table3_normalized_counts.
# This may be replaced when dependencies are built.
