file(REMOVE_RECURSE
  "CMakeFiles/table3_normalized_counts.dir/bench/table3_normalized_counts.cc.o"
  "CMakeFiles/table3_normalized_counts.dir/bench/table3_normalized_counts.cc.o.d"
  "bench/table3_normalized_counts"
  "bench/table3_normalized_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_normalized_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
