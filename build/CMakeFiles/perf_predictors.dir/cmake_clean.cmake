file(REMOVE_RECURSE
  "CMakeFiles/perf_predictors.dir/bench/perf_predictors.cc.o"
  "CMakeFiles/perf_predictors.dir/bench/perf_predictors.cc.o.d"
  "bench/perf_predictors"
  "bench/perf_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
