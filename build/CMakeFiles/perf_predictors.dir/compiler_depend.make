# Empty compiler generated dependencies file for perf_predictors.
# This may be replaced when dependencies are built.
