file(REMOVE_RECURSE
  "CMakeFiles/table2_branch_stats.dir/bench/table2_branch_stats.cc.o"
  "CMakeFiles/table2_branch_stats.dir/bench/table2_branch_stats.cc.o.d"
  "bench/table2_branch_stats"
  "bench/table2_branch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_branch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
