file(REMOVE_RECURSE
  "CMakeFiles/table4_class_changes.dir/bench/table4_class_changes.cc.o"
  "CMakeFiles/table4_class_changes.dir/bench/table4_class_changes.cc.o.d"
  "bench/table4_class_changes"
  "bench/table4_class_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_class_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
