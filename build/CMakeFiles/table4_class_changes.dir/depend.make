# Empty dependencies file for table4_class_changes.
# This may be replaced when dependencies are built.
