file(REMOVE_RECURSE
  "CMakeFiles/scheme_comparison.dir/bench/scheme_comparison.cc.o"
  "CMakeFiles/scheme_comparison.dir/bench/scheme_comparison.cc.o.d"
  "bench/scheme_comparison"
  "bench/scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
