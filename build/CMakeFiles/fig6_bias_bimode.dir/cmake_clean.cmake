file(REMOVE_RECURSE
  "CMakeFiles/fig6_bias_bimode.dir/bench/fig6_bias_bimode.cc.o"
  "CMakeFiles/fig6_bias_bimode.dir/bench/fig6_bias_bimode.cc.o.d"
  "bench/fig6_bias_bimode"
  "bench/fig6_bias_bimode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bias_bimode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
