# Empty dependencies file for fig6_bias_bimode.
# This may be replaced when dependencies are built.
