file(REMOVE_RECURSE
  "libbpsim_bench_common.a"
)
