# Empty compiler generated dependencies file for bpsim_bench_common.
# This may be replaced when dependencies are built.
