file(REMOVE_RECURSE
  "CMakeFiles/bpsim_bench_common.dir/bench/common/bench_common.cc.o"
  "CMakeFiles/bpsim_bench_common.dir/bench/common/bench_common.cc.o.d"
  "libbpsim_bench_common.a"
  "libbpsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
