file(REMOVE_RECURSE
  "CMakeFiles/fig3_spec_curves.dir/bench/fig3_spec_curves.cc.o"
  "CMakeFiles/fig3_spec_curves.dir/bench/fig3_spec_curves.cc.o.d"
  "bench/fig3_spec_curves"
  "bench/fig3_spec_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_spec_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
