# Empty dependencies file for interference_taxonomy.
# This may be replaced when dependencies are built.
