file(REMOVE_RECURSE
  "CMakeFiles/interference_taxonomy.dir/bench/interference_taxonomy.cc.o"
  "CMakeFiles/interference_taxonomy.dir/bench/interference_taxonomy.cc.o.d"
  "bench/interference_taxonomy"
  "bench/interference_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
