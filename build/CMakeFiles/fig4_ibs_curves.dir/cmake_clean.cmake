file(REMOVE_RECURSE
  "CMakeFiles/fig4_ibs_curves.dir/bench/fig4_ibs_curves.cc.o"
  "CMakeFiles/fig4_ibs_curves.dir/bench/fig4_ibs_curves.cc.o.d"
  "bench/fig4_ibs_curves"
  "bench/fig4_ibs_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ibs_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
