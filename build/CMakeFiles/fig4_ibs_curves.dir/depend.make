# Empty dependencies file for fig4_ibs_curves.
# This may be replaced when dependencies are built.
