# Empty compiler generated dependencies file for fig7_breakdown_gcc.
# This may be replaced when dependencies are built.
