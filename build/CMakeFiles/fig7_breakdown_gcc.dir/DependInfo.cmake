
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_breakdown_gcc.cc" "CMakeFiles/fig7_breakdown_gcc.dir/bench/fig7_breakdown_gcc.cc.o" "gcc" "CMakeFiles/fig7_breakdown_gcc.dir/bench/fig7_breakdown_gcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/bpsim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bpsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
