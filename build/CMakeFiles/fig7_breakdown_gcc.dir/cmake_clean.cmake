file(REMOVE_RECURSE
  "CMakeFiles/fig7_breakdown_gcc.dir/bench/fig7_breakdown_gcc.cc.o"
  "CMakeFiles/fig7_breakdown_gcc.dir/bench/fig7_breakdown_gcc.cc.o.d"
  "bench/fig7_breakdown_gcc"
  "bench/fig7_breakdown_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_breakdown_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
