file(REMOVE_RECURSE
  "CMakeFiles/ablation_bimode.dir/bench/ablation_bimode.cc.o"
  "CMakeFiles/ablation_bimode.dir/bench/ablation_bimode.cc.o.d"
  "bench/ablation_bimode"
  "bench/ablation_bimode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bimode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
