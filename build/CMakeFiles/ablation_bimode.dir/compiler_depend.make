# Empty compiler generated dependencies file for ablation_bimode.
# This may be replaced when dependencies are built.
