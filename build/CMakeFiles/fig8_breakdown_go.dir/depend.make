# Empty dependencies file for fig8_breakdown_go.
# This may be replaced when dependencies are built.
