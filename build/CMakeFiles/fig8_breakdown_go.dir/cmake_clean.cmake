file(REMOVE_RECURSE
  "CMakeFiles/fig8_breakdown_go.dir/bench/fig8_breakdown_go.cc.o"
  "CMakeFiles/fig8_breakdown_go.dir/bench/fig8_breakdown_go.cc.o.d"
  "bench/fig8_breakdown_go"
  "bench/fig8_breakdown_go.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_breakdown_go.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
