/**
 * @file
 * Building custom workloads with the library API.
 *
 * Demonstrates the two levels of the workload substrate:
 *
 *  1. Spec level — compose a WorkloadSpec from behaviour-family
 *     weights and parameters, then sweep one axis (here: the weakly
 *     biased share) and watch how the predictor ranking responds —
 *     reproducing in miniature why "go" resists de-aliasing.
 *
 *  2. Program level — hand-build a Program (routines, sites,
 *     behaviours) for full control, the way targeted microbenchmarks
 *     are written against the simulator.
 */

#include <iostream>

#include "core/factory.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"
#include "util/table.hh"
#include "workload/generator.hh"
#include "workload/program_builder.hh"

using namespace bpsim;

namespace
{

double
mispredictOn(const MemoryTrace &trace, const std::string &config)
{
    const PredictorPtr predictor = makePredictor(config);
    auto reader = trace.reader();
    return simulate(*predictor, reader).mispredictionRate();
}

void
sweepWeakShare()
{
    std::cout << "1) spec-level: sweeping the weakly-biased share\n\n";
    // No flags here, but the store still honours $BPSIM_TRACE_CACHE
    // (set it to 'none' to force regeneration).
    TraceCache cache(resolveTraceStoreDir(""));
    TextTable table;
    table.setColumns({"weak share", "bimodal", "gshare.1PHT", "bi-mode",
                      "bi-mode win vs gshare (pp)"});
    for (double weak : {0.0, 0.15, 0.30, 0.45}) {
        WorkloadSpec spec;
        spec.name = "custom-weak-" + TextTable::fixed(weak, 2);
        spec.suite = "custom";
        spec.staticBranches = 4000;
        spec.dynamicBranches = 700'000;
        spec.seed = 0xabcde;
        spec.mix.stronglyBiased = 0.40 * (1.0 - weak);
        spec.mix.loop = 0.15 * (1.0 - weak);
        spec.mix.globalCorrelated = 0.30 * (1.0 - weak);
        spec.mix.localCorrelated = 0.05 * (1.0 - weak);
        spec.mix.pattern = 0.05 * (1.0 - weak);
        spec.mix.phaseModal = 0.05 * (1.0 - weak);
        spec.mix.weaklyBiased = weak;
        const MemoryTrace &trace = cache.traceFor(spec);
        const double bimodal = mispredictOn(trace, "bimodal:n=12");
        const double gshare = mispredictOn(trace, "gshare:n=12");
        const double bimode = mispredictOn(trace, "bimode:d=11");
        table.addRow({TextTable::fixed(weak, 2),
                      TextTable::fixed(bimodal, 2),
                      TextTable::fixed(gshare, 2),
                      TextTable::fixed(bimode, 2),
                      TextTable::fixed(gshare - bimode, 2)});
    }
    table.print(std::cout);
    std::cout << "\nas the WB share grows every scheme degrades: the "
                 "WB error is a floor that\nno de-aliasing can remove "
                 "— the paper's go effect (section 4.4) in\n"
                 "isolation. The bi-mode margin over gshare persists "
                 "but becomes a shrinking\nfraction of the total "
                 "error.\n\n";
}

void
handBuiltProgram()
{
    std::cout << "2) program-level: a hand-built two-routine program\n\n";

    Program program;
    {
        // Routine 0: a guard (strongly taken), a 4-trip loop, and a
        // branch that repeats the guard's decision (1-deep global
        // correlation; the loop's outcomes sit between them, so the
        // function reads bit 4 of history: guard, then 3 taken + 1
        // not-taken loop outcomes).
        Routine routine;
        BranchSite guard;
        guard.pc = 0x10000;
        guard.takenTarget = 0x10040;
        guard.behavior = std::make_unique<BiasedBehavior>(0.97);
        routine.sites.push_back(std::move(guard));

        BranchSite loop;
        loop.pc = 0x10010;
        loop.takenTarget = 0x10008;
        loop.isLoop = true;
        loop.behavior = std::make_unique<LoopBehavior>(4.0, true);
        routine.sites.push_back(std::move(loop));

        BranchSite echo;
        echo.pc = 0x10020;
        echo.takenTarget = 0x10080;
        echo.behavior = std::make_unique<GlobalCorrelatedBehavior>(
            5, 0.0, /*tableSeed=*/1234);
        routine.sites.push_back(std::move(echo));
        program.addRoutine(std::move(routine));
    }
    {
        // Routine 1: an alternating pattern branch.
        Routine routine;
        BranchSite toggler;
        toggler.pc = 0x20000;
        toggler.takenTarget = 0x20040;
        toggler.behavior = std::make_unique<PatternBehavior>(
            std::vector<bool>{true, false});
        routine.sites.push_back(std::move(toggler));
        program.addRoutine(std::move(routine));
    }

    WorkloadSpec spec;
    spec.name = "hand-built";
    spec.suite = "custom";
    spec.staticBranches = program.siteCount();
    spec.dynamicBranches = 200'000;
    spec.seed = 7;
    TraceGenerator generator(program, spec);
    MemoryTrace trace;
    generator.generate(spec.dynamicBranches, trace);

    TextTable table;
    table.setColumns({"predictor", "mispredict %"});
    for (const char *config :
         {"taken", "bimodal:n=10", "gshare:n=10,h=4", "gshare:n=10",
          "bimode:d=9", "pas:h=4,l=6,a=4"}) {
        table.addRow({config,
                      TextTable::fixed(mispredictOn(trace, config), 3)});
    }
    table.print(std::cout);
    std::cout << "\nthe loop and the echo branch need history; the "
                 "guard only needs a counter.\nEvery history scheme "
                 "should approach the guard's 3% noise floor.\n";
}

} // namespace

int
main()
{
    std::cout << "Custom workload construction with the bimode-bp "
                 "library\n\n";
    sweepWeakShare();
    handBuiltProgram();
    return 0;
}
