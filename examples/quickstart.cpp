/**
 * @file
 * Quickstart: build a bi-mode predictor, run it on a synthetic
 * workload, and compare it against gshare at the same hardware cost.
 *
 * Usage:
 *   quickstart [--benchmark gcc] [--size-bits 11]
 *
 * --size-bits d sets the bi-mode direction-bank width (each bank
 * 2^d counters); the gshare comparator gets the equal-cost index
 * width.
 */

#include <cstdio>
#include <iostream>

#include "core/bimode.hh"
#include "core/factory.hh"
#include "predictors/gshare.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

int
main(int argc, char **argv)
{
    bpsim::ArgParser args(
        "quickstart",
        "Run the bi-mode predictor against gshare on one benchmark.");
    args.addOption("benchmark", "gcc",
                   "benchmark name (see DESIGN.md Table 2 list)");
    args.addOption("size-bits", "11",
                   "bi-mode direction-bank width d (2^d counters/bank)");
    bpsim::CommonOptions::declareTraceCache(args);
    if (!args.parse(argc, argv))
        return 0;

    const auto spec = bpsim::findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark '" << args.get("benchmark")
                  << "'\n";
        return 1;
    }
    const unsigned d = static_cast<unsigned>(args.getUint("size-bits"));

    std::cout << "loading synthetic '" << spec->name << "' trace ("
              << spec->dynamicBranches << " conditional branches, "
              << spec->staticBranches << " static sites)...\n";
    bpsim::TraceCache cache(
        bpsim::resolveTraceStoreDir(
        bpsim::CommonOptions::fromArgs(args).traceCache));
    const bpsim::MemoryTrace &trace = cache.traceFor(*spec);

    // The contribution: a bi-mode predictor in its canonical shape.
    bpsim::BiModePredictor bimode(bpsim::BiModeConfig::canonical(d));

    // Equal-cost comparators: bi-mode's 3 * 2^d counters sit between
    // gshare n = d+1 (2/3 of the cost) and n = d+2 (4/3); show both.
    bpsim::GsharePredictor gshare_small(d + 1, d + 1);
    bpsim::GsharePredictor gshare_large(d + 2, d + 2);

    bpsim::TextTable table;
    table.setColumns({"predictor", "counter KB", "mispredict (%)"});
    for (bpsim::BranchPredictor *predictor :
         {static_cast<bpsim::BranchPredictor *>(&gshare_small),
          static_cast<bpsim::BranchPredictor *>(&bimode),
          static_cast<bpsim::BranchPredictor *>(&gshare_large)}) {
        auto reader = trace.reader();
        const bpsim::SimResult result = simulate(*predictor, reader);
        table.addRow({result.predictorName,
                      bpsim::TextTable::fixed(result.counterKBytes(), 3),
                      bpsim::TextTable::fixed(result.mispredictionRate(),
                                              3)});
    }
    table.print(std::cout);
    std::cout << "\nLower is better; the bi-mode point costs 1.5x the "
                 "smaller gshare\nand 0.75x the larger one.\n";
    return 0;
}
