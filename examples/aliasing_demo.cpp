/**
 * @file
 * A didactic walkthrough of the paper's core mechanism.
 *
 * Two strongly but oppositely biased branches are forced onto the
 * same second-level counter. The demo traces the counter state under
 * gshare (destructive aliasing: the counter oscillates and both
 * branches mispredict) and under bi-mode (the choice predictor
 * steers them into different banks and both predict perfectly),
 * printing the internal state transition by transition.
 */

#include <cstdio>
#include <iostream>

#include "core/bimode.hh"
#include "predictors/gshare.hh"

using namespace bpsim;

namespace
{

/** The two colliding branches: same low address bits, opposite bias. */
constexpr std::uint64_t kTakenPc = 0x1000;     // always taken
constexpr std::uint64_t kNotTakenPc = 0x1040;  // always not-taken

void
demoGshare()
{
    std::cout << "=== gshare (4-bit index, no history for clarity) ===\n"
              << "branch A = 0x1000 (always taken), branch B = 0x1040 "
                 "(always not-taken)\n"
              << "both map to PHT index 0 -> one shared 2-bit counter\n\n";
    GsharePredictor gshare(4, 0);
    int wrong = 0;
    std::printf("%-6s %-10s %-9s %-10s %-8s %s\n", "round", "branch",
                "counter", "predicts", "outcome", "verdict");
    for (int round = 0; round < 6; ++round) {
        for (const auto &[pc, outcome, label] :
             {std::tuple{kTakenPc, true, "A(T)"},
              std::tuple{kNotTakenPc, false, "B(N)"}}) {
            const PredictionDetail detail = gshare.predictDetailed(pc);
            const bool hit = detail.taken == outcome;
            wrong += !hit;
            std::printf("%-6d %-10s %-9llu %-10s %-8s %s\n", round,
                        label,
                        static_cast<unsigned long long>(detail.counterId),
                        detail.taken ? "taken" : "not-taken",
                        outcome ? "taken" : "not-taken",
                        hit ? "ok" : "MISS");
            gshare.update(pc, outcome);
        }
    }
    std::cout << "\ngshare mispredictions: " << wrong << "/12 — the "
              << "shared counter oscillates between the two biases.\n\n";
}

void
demoBiMode()
{
    std::cout << "=== bi-mode (same direction-bank collision) ===\n"
              << "direction banks: 16 counters each; choice: 256 "
                 "entries (A and B distinct)\n\n";
    BiModeConfig cfg;
    cfg.directionIndexBits = 4;
    cfg.choiceIndexBits = 8;
    cfg.historyBits = 0;
    BiModePredictor bimode(cfg);
    std::cout << "direction index of A: "
              << bimode.directionIndexFor(kTakenPc)
              << ", of B: " << bimode.directionIndexFor(kNotTakenPc)
              << " (collide)\n"
              << "choice index of A: " << bimode.choiceIndexFor(kTakenPc)
              << ", of B: " << bimode.choiceIndexFor(kNotTakenPc)
              << " (distinct)\n\n";

    int wrong = 0;
    std::printf("%-6s %-10s %-14s %-10s %-8s %s\n", "round", "branch",
                "serving bank", "predicts", "outcome", "verdict");
    for (int round = 0; round < 6; ++round) {
        for (const auto &[pc, outcome, label] :
             {std::tuple{kTakenPc, true, "A(T)"},
              std::tuple{kNotTakenPc, false, "B(N)"}}) {
            const PredictionDetail detail = bimode.predictDetailed(pc);
            const bool hit = detail.taken == outcome;
            wrong += !hit;
            std::printf("%-6d %-10s %-14s %-10s %-8s %s\n", round,
                        label,
                        detail.bank == BiModePredictor::kTakenBank
                            ? "taken-bank" : "not-taken-bank",
                        detail.taken ? "taken" : "not-taken",
                        outcome ? "taken" : "not-taken",
                        hit ? "ok" : "MISS");
            bimode.update(pc, outcome);
        }
    }
    std::cout << "\nbi-mode mispredictions: " << wrong
              << "/12 — after one round the choice predictor routes "
                 "A to the taken bank\nand B to the not-taken bank; "
                 "the collision becomes harmless because both\n"
                 "streams reaching each counter agree.\n";
}

} // namespace

int
main()
{
    std::cout << "Destructive aliasing and how the bi-mode predictor "
                 "removes it\n"
              << "(Lee, Chen & Mudge, MICRO-30 1997)\n\n";
    demoGshare();
    demoBiMode();
    return 0;
}
