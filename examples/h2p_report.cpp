/**
 * @file
 * Hard-to-predict branch report.
 *
 * Runs a set of predictor configurations over one benchmark with
 * per-branch accounting (sim/probe.hh) and prints, per predictor,
 * the top-K static branches ranked by misprediction count — each
 * annotated with its §4 bias class and its share of the scheme's
 * mispredictions — plus the H2P set size (the smallest prefix of
 * the ranking covering --coverage percent of all mispredictions).
 * With two or more predictors it also intersects their H2P sets,
 * answering whether e.g. bi-mode and gshare stumble over the same
 * branches.
 *
 * Same-kind configurations fuse into one banked replay pass
 * (campaign fusion works for probed runs too), so a bimode size
 * ladder exercises the vectorized probed kernels; set --kernel-tier
 * scalar to pin the scalar bank (CI byte-diffs the two).
 *
 * Usage: h2p_report [--benchmark gcc]
 *                   [--predictors bimode:d=11;gshare:n=12]
 *                   [--coverage 90] [--top 20] [--warmup 0]
 *                   [--csv | --json] [--quick] [--kernel-tier auto]
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/h2p.hh"
#include "campaign/campaign.hh"
#include "sim/simd/kernel_tier.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

using namespace bpsim;

namespace
{

/** Splits a ';'-separated predictor list. */
std::vector<std::string>
splitConfigs(const std::string &text)
{
    std::vector<std::string> configs;
    std::istringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ';')) {
        if (!item.empty())
            configs.push_back(item);
    }
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("h2p_report",
                   "Per-branch misprediction ranking (hard-to-predict "
                   "set) of a predictor set over one benchmark.");
    args.addOption("benchmark", "gcc", "benchmark name");
    args.addOption("predictors", "bimode:d=11;gshare:n=12",
                   "';'-separated predictor configs");
    args.addOption("coverage", "90",
                   "misprediction share (percent) the H2P set covers");
    args.addOption("top", "20", "ranking rows in the table view");
    args.addOption("warmup", "0",
                   "warm-up branches excluded from the statistics");
    CommonOptions::declare(args);
    if (!args.parse(argc, argv))
        return 0;
    const CommonOptions opts = CommonOptions::fromArgs(args);

    const auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    const std::vector<std::string> configs =
        splitConfigs(args.get("predictors"));
    if (configs.empty()) {
        std::cerr << "no predictor configs\n";
        return 1;
    }
    KernelTier tier = KernelTier::Auto;
    if (!parseKernelTier(opts.kernelTier, tier)) {
        std::cerr << "unknown kernel tier '" << opts.kernelTier << "'\n";
        return 1;
    }

    TraceCache cache(resolveTraceStoreDir(opts.traceCache));
    const std::vector<BenchmarkTrace> benches = resolveTraces(
        cache, {scaledBenchmark(*spec, opts.quickDivisor())});

    SimConfig simConfig;
    simConfig.warmupBranches = args.getUint("warmup");
    simConfig.trackPerBranch = true;
    simConfig.kernelTier = tier;
    Campaign campaign;
    campaign.addGrid(configs, benches, simConfig);
    const std::vector<JobResult> results = campaign.run(opts.jobs);

    const double coverage = args.getDouble("coverage") / 100.0;
    std::vector<H2PReport> reports;
    for (const JobResult &job : results) {
        if (!job.ok()) {
            std::cerr << "config '" << job.configText
                      << "' failed: " << job.error << "\n";
            return 1;
        }
        reports.push_back(buildH2PReport(job.result, coverage));
    }

    if (opts.csv) {
        for (const H2PReport &report : reports) {
            std::cout << "# predictor=" << report.predictorName
                      << " benchmark=" << report.benchmark << "\n";
            writeH2PCsv(std::cout, report);
        }
        return 0;
    }
    if (opts.json) {
        for (const H2PReport &report : reports) {
            writeH2PJson(std::cout, report);
            std::cout << "\n";
        }
        return 0;
    }

    const std::size_t top = args.getUint("top");
    for (const H2PReport &report : reports) {
        writeH2PTable(std::cout, report, top);
        std::cout << "\n";
    }
    if (reports.size() >= 2) {
        TextTable table;
        table.setColumns({"predictor A", "predictor B", "|A|", "|B|",
                          "shared", "Jaccard"});
        for (std::size_t i = 0; i < reports.size(); ++i) {
            for (std::size_t j = i + 1; j < reports.size(); ++j) {
                const H2PSetComparison cmp =
                    compareH2PSets(reports[i], reports[j]);
                table.addRow({reports[i].predictorName,
                              reports[j].predictorName,
                              std::to_string(cmp.countA),
                              std::to_string(cmp.countB),
                              std::to_string(cmp.shared),
                              TextTable::fixed(cmp.jaccard, 3)});
            }
        }
        std::cout << "H2P set overlap (coverage "
                  << TextTable::fixed(100.0 * coverage, 0) << "%):\n";
        table.print(std::cout);
    }
    return 0;
}
