/**
 * @file
 * Front-end fetch simulation: direction predictor + branch target
 * buffer working together, the way the machines the paper targets
 * (Pentium Pro, Alpha 21264) actually redirect fetch.
 *
 * A fetch redirect (pipeline bubble) happens when
 *   - the direction prediction is wrong, or
 *   - the branch is predicted taken but the BTB misses or holds a
 *     stale target.
 *
 * The example reports, per predictor, the direction misprediction
 * rate, the taken-but-no-target rate, the combined redirect rate,
 * and the estimated IPC under the first-order pipeline model.
 *
 * Usage: frontend_sim [--benchmark gcc] [--btb-sets 512]
 *                     [--btb-ways 4]
 */

#include <iostream>

#include "core/factory.hh"
#include "predictors/btb.hh"
#include "predictors/ras.hh"
#include "sim/pipeline_model.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

using namespace bpsim;

namespace
{

struct FrontEndResult
{
    std::uint64_t branches = 0;
    std::uint64_t directionWrong = 0;
    std::uint64_t targetWrong = 0; // predicted taken, target unknown
    BtbStats btb;

    double
    redirectPercent() const
    {
        return branches ? 100.0 *
                              static_cast<double>(directionWrong +
                                                  targetWrong) /
                              static_cast<double>(branches)
                        : 0.0;
    }

    double
    directionPercent() const
    {
        return branches ? 100.0 * static_cast<double>(directionWrong) /
                              static_cast<double>(branches)
                        : 0.0;
    }

    double
    targetPercent() const
    {
        return branches ? 100.0 * static_cast<double>(targetWrong) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

FrontEndResult
runFrontEnd(const MemoryTrace &trace, BranchPredictor &predictor,
            BranchTargetBuffer &btb)
{
    FrontEndResult result;
    auto reader = trace.reader();
    BranchRecord record;
    while (reader.next(record)) {
        if (!record.isConditional())
            continue;
        ++result.branches;
        const bool prediction = predictor.predict(record.pc);
        if (prediction != record.taken) {
            ++result.directionWrong;
        } else if (prediction) {
            // Correct taken prediction still redirects if the front
            // end does not know the target.
            const auto target = btb.lookup(record.pc);
            if (!target || *target != record.target)
                ++result.targetWrong;
        }
        btb.update(record.pc, record.target, record.taken);
        predictor.observeTarget(record.pc, record.target);
        predictor.update(record.pc, record.taken);
    }
    result.btb = btb.stats();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("frontend_sim",
                   "Direction predictor + BTB fetch-redirect "
                   "simulation.");
    args.addOption("benchmark", "gcc", "benchmark name");
    args.addOption("btb-sets", "512", "BTB sets (power of two)");
    args.addOption("btb-ways", "4", "BTB associativity");
    args.addFlag("calls",
                 "emit call/return records and report RAS accuracy");
    CommonOptions::declareTraceCache(args);
    if (!args.parse(argc, argv))
        return 0;

    auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    if (args.flag("calls"))
        spec->emitCallsAndReturns = true;
    TraceCache cache(resolveTraceStoreDir(
        CommonOptions::fromArgs(args).traceCache));
    const MemoryTrace &trace = cache.traceFor(*spec);

    BtbConfig btb_cfg;
    unsigned sets_log2 = 0;
    while ((1u << sets_log2) < args.getUint("btb-sets"))
        ++sets_log2;
    btb_cfg.setsLog2 = sets_log2;
    btb_cfg.ways = static_cast<unsigned>(args.getUint("btb-ways"));

    const PipelineModel machine;
    std::cout << "benchmark " << spec->name << ", BTB "
              << (1u << btb_cfg.setsLog2) << " sets x " << btb_cfg.ways
              << " ways\n";

    TextTable table;
    table.setColumns({"direction predictor", "dir wrong %",
                      "target miss %", "redirect %", "BTB hit %",
                      "est. IPC"});
    for (const char *config :
         {"bimodal:n=12", "gshare:n=12", "bimode:d=11",
          "yags:c=12,n=10", "perceptron:n=8,h=24"}) {
        const PredictorPtr predictor = makePredictor(config);
        BranchTargetBuffer btb(btb_cfg);
        const FrontEndResult result =
            runFrontEnd(trace, *predictor, btb);
        table.addRow({
            predictor->name(),
            TextTable::fixed(result.directionPercent(), 2),
            TextTable::fixed(result.targetPercent(), 2),
            TextTable::fixed(result.redirectPercent(), 2),
            TextTable::fixed(100.0 * result.btb.hitRate(), 2),
            TextTable::fixed(machine.ipcAt(result.redirectPercent()),
                             3),
        });
    }
    table.print(std::cout);

    if (args.flag("calls")) {
        // Return-target prediction: BTB alone vs BTB + RAS.
        BranchTargetBuffer btb(btb_cfg);
        ReturnAddressStack ras(16);
        std::uint64_t returns = 0, btb_correct = 0;
        auto reader = trace.reader();
        BranchRecord record;
        while (reader.next(record)) {
            if (record.type == BranchType::Call) {
                ras.pushCall(record.pc);
                btb.update(record.pc, record.target, true);
            } else if (record.type == BranchType::Return) {
                ++returns;
                const auto guess = btb.lookup(record.pc);
                btb_correct += guess && *guess == record.target;
                ras.popReturn(record.target);
                btb.update(record.pc, record.target, true);
            }
        }
        std::cout << "\nreturn-target prediction over " << returns
                  << " returns:\n  BTB alone: "
                  << TextTable::fixed(returns ? 100.0 * btb_correct /
                                          static_cast<double>(returns)
                                              : 0.0, 2)
                  << "% correct (returns from multiple call sites "
                     "defeat it)\n  16-deep RAS: "
                  << TextTable::fixed(
                         100.0 * ras.stats().returnAccuracy(), 2)
                  << "% correct\n";
    }

    std::cout << "\nredirect = wrong direction, or taken-predicted "
                 "branch whose target the BTB\ncould not supply; the "
                 "BTB bounds every direction predictor's usefulness.\n";
    return 0;
}
