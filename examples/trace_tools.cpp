/**
 * @file
 * Trace toolbox: generate, convert, inspect and simulate branch
 * trace files from the command line.
 *
 * Subcommands (first positional argument):
 *   generate  --benchmark gcc --out gcc.bbt [--count N]
 *             (or --spec-file my.spec to generate a custom workload)
 *   spec      --benchmark gcc --out gcc.spec (dump a built-in
 *             benchmark's workload spec for editing)
 *   convert   --in a.trace --out b.trace (format by extension:
 *             .bbt binary, anything else text)
 *   stats     --in a.trace
 *   simulate  --in a.trace --predictor bimode:d=11
 */

#include <iostream>
#include <optional>

#include "core/factory.hh"
#include "sim/simulator.hh"
#include "trace/binary_io.hh"
#include "trace/text_io.hh"
#include "trace/trace_stats.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"
#include "workload/program_builder.hh"
#include "workload/spec_io.hh"

using namespace bpsim;

namespace
{

bool
isBinaryPath(const std::string &path)
{
    return path.size() >= 4 &&
           path.compare(path.size() - 4, 4, ".bbt") == 0;
}

std::unique_ptr<TraceReader>
openReader(const std::string &path)
{
    if (isBinaryPath(path))
        return std::make_unique<BinaryTraceReader>(path);
    return std::make_unique<TextTraceReader>(path);
}

std::unique_ptr<TraceWriter>
openWriter(const std::string &path)
{
    if (isBinaryPath(path))
        return std::make_unique<BinaryTraceWriter>(path);
    return std::make_unique<TextTraceWriter>(path);
}

int
cmdGenerate(const ArgParser &args)
{
    std::optional<WorkloadSpec> spec;
    if (!args.get("spec-file").empty()) {
        spec = loadWorkloadSpec(args.get("spec-file"));
    } else {
        spec = findBenchmark(args.get("benchmark"));
        if (!spec) {
            std::cerr << "unknown benchmark '" << args.get("benchmark")
                      << "'\n";
            return 1;
        }
    }
    if (args.getUint("count") > 0)
        spec->dynamicBranches = args.getUint("count");
    const std::string out = args.get("out");
    if (out.empty()) {
        std::cerr << "generate requires --out\n";
        return 1;
    }
    Program program = buildProgram(*spec);
    TraceGenerator generator(program, *spec);
    auto writer = openWriter(out);
    generator.generate(spec->dynamicBranches, *writer);
    writer->finish();
    std::cout << "wrote " << spec->dynamicBranches << " records of '"
              << spec->name << "' to " << out << "\n";
    return 0;
}

int
cmdSpec(const ArgParser &args)
{
    const auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark '" << args.get("benchmark")
                  << "'\n";
        return 1;
    }
    const std::string out = args.get("out");
    if (out.empty()) {
        writeWorkloadSpec(std::cout, *spec);
    } else {
        saveWorkloadSpec(out, *spec);
        std::cout << "wrote spec of '" << spec->name << "' to " << out
                  << "\n";
    }
    return 0;
}

int
cmdConvert(const ArgParser &args)
{
    const std::string in = args.get("in"), out = args.get("out");
    if (in.empty() || out.empty()) {
        std::cerr << "convert requires --in and --out\n";
        return 1;
    }
    auto reader = openReader(in);
    auto writer = openWriter(out);
    BranchRecord record;
    std::uint64_t count = 0;
    while (reader->next(record)) {
        writer->append(record);
        ++count;
    }
    writer->finish();
    std::cout << "converted " << count << " records " << in << " -> "
              << out << "\n";
    return 0;
}

int
cmdStats(const ArgParser &args)
{
    const std::string in = args.get("in");
    if (in.empty()) {
        std::cerr << "stats requires --in\n";
        return 1;
    }
    auto reader = openReader(in);
    TraceStats stats;
    stats.observeAll(*reader);
    TextTable table;
    table.setColumns({"metric", "value"});
    table.addRow({"static conditional branches",
                  TextTable::grouped(stats.staticConditional())});
    table.addRow({"dynamic conditional branches",
                  TextTable::grouped(stats.dynamicConditional())});
    table.addRow({"other dynamic records",
                  TextTable::grouped(stats.dynamicOther())});
    table.addRow({"taken fraction (%)",
                  TextTable::fixed(100.0 * stats.takenFraction(), 2)});
    table.addRow({">=90% biased dynamic share (%)",
                  TextTable::fixed(
                      100.0 * stats.stronglyBiasedDynamicFraction(),
                      2)});
    table.print(std::cout);

    const auto branches = stats.perBranch();
    std::cout << "\nhottest branches:\n";
    TextTable hot;
    hot.setColumns({"pc", "executions", "taken %"});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, branches.size());
         ++i) {
        char pc_text[32];
        std::snprintf(pc_text, sizeof(pc_text), "0x%llx",
                      static_cast<unsigned long long>(branches[i].pc));
        hot.addRow({pc_text, TextTable::grouped(branches[i].executions),
                    TextTable::fixed(
                        100.0 * branches[i].takenFraction(), 1)});
    }
    hot.print(std::cout);
    return 0;
}

int
cmdSimulate(const ArgParser &args)
{
    const std::string in = args.get("in");
    if (in.empty()) {
        std::cerr << "simulate requires --in\n";
        return 1;
    }
    auto reader = openReader(in);
    const PredictorPtr predictor = makePredictor(args.get("predictor"));
    const SimResult result = simulate(*predictor, *reader);
    TextTable table;
    table.setColumns({"metric", "value"});
    table.addRow({"predictor", result.predictorName});
    table.addRow({"counter KB",
                  TextTable::fixed(result.counterKBytes(), 3)});
    table.addRow({"branches", TextTable::grouped(result.branches)});
    table.addRow({"mispredictions",
                  TextTable::grouped(result.mispredictions)});
    table.addRow({"misprediction rate (%)",
                  TextTable::fixed(result.mispredictionRate(), 3)});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("trace_tools",
                   "Generate, convert, inspect and simulate branch "
                   "trace files.\nsubcommands: generate | spec | convert | "
                   "stats | simulate");
    args.addOption("benchmark", "gcc", "benchmark to generate");
    args.addOption("count", "0",
                   "records to generate (0 = benchmark default)");
    args.addOption("in", "", "input trace path");
    args.addOption("out", "", "output trace path");
    args.addOption("predictor", "bimode:d=11",
                   "predictor config for 'simulate'");
    args.addOption("spec-file", "",
                   "workload spec file for 'generate'");
    if (!args.parse(argc, argv))
        return 0;
    if (args.positional().size() != 1) {
        std::cerr << args.usage();
        return 1;
    }
    const std::string &command = args.positional()[0];
    if (command == "generate")
        return cmdGenerate(args);
    if (command == "spec")
        return cmdSpec(args);
    if (command == "convert")
        return cmdConvert(args);
    if (command == "stats")
        return cmdStats(args);
    if (command == "simulate")
        return cmdSimulate(args);
    std::cerr << "unknown subcommand '" << command << "'\n"
              << args.usage();
    return 1;
}
