/**
 * @file
 * Workload inspector: prints the trace-level statistics of a
 * benchmark (static/dynamic counts, taken fraction, bias
 * distribution) and a panel of predictors from trivial static
 * baselines to an idealized per-branch oracle, bracketing where a
 * real predictor's error comes from.
 *
 * Usage: inspect_workload [--benchmark gcc] [--size-bits 12]
 */

#include <iostream>

#include "core/factory.hh"
#include "predictors/bimodal.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_stats.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

namespace
{

/**
 * Idealized static oracle: predicts every static branch's majority
 * direction, computed from the whole trace. Its misprediction rate
 * is the per-branch-bias floor — everything above it needs history.
 */
double
staticOracleMispredict(const bpsim::TraceStats &stats)
{
    std::uint64_t wrong = 0, total = 0;
    for (const auto &branch : stats.perBranch()) {
        const std::uint64_t minority =
            std::min(branch.takenCount,
                     branch.executions - branch.takenCount);
        wrong += minority;
        total += branch.executions;
    }
    return total ? 100.0 * static_cast<double>(wrong) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bpsim::ArgParser args("inspect_workload",
                          "Inspect a synthetic benchmark workload.");
    args.addOption("benchmark", "gcc", "benchmark name");
    args.addOption("size-bits", "12",
                   "gshare index width n for the predictor panel");
    bpsim::CommonOptions::declareTraceCache(args);
    if (!args.parse(argc, argv))
        return 0;

    const auto spec = bpsim::findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark '" << args.get("benchmark")
                  << "'\n";
        return 1;
    }
    const unsigned n = static_cast<unsigned>(args.getUint("size-bits"));

    bpsim::TraceCache cache(
        bpsim::resolveTraceStoreDir(
        bpsim::CommonOptions::fromArgs(args).traceCache));
    const bpsim::MemoryTrace &trace = cache.traceFor(*spec);
    bpsim::TraceStats stats;
    auto stat_reader = trace.reader();
    stats.observeAll(stat_reader);

    std::cout << "benchmark: " << spec->name << " (" << spec->suite
              << ")\n";
    bpsim::TextTable info;
    info.setColumns({"metric", "value"});
    info.addRow({"static conditional branches",
                 bpsim::TextTable::grouped(stats.staticConditional())});
    info.addRow({"dynamic conditional branches",
                 bpsim::TextTable::grouped(stats.dynamicConditional())});
    info.addRow({"taken fraction (%)",
                 bpsim::TextTable::fixed(100.0 * stats.takenFraction(),
                                         2)});
    info.addRow({"dynamic share of >=90% biased branches (%)",
                 bpsim::TextTable::fixed(
                     100.0 * stats.stronglyBiasedDynamicFraction(), 2)});
    info.addRow({"static-oracle misprediction floor (%)",
                 bpsim::TextTable::fixed(staticOracleMispredict(stats),
                                         2)});
    info.print(std::cout);

    std::cout << "\npredictor panel (n=" << n << "):\n";
    const std::vector<std::string> configs = {
        "taken",
        "nottaken",
        "bimodal:n=" + std::to_string(n),
        "gshare:n=" + std::to_string(n) + ",h=2",
        "gshare:n=" + std::to_string(n) + ",h=4",
        "gshare:n=" + std::to_string(n) + ",h=8",
        "gshare:n=" + std::to_string(n),
        "bimode:d=" + std::to_string(n - 1),
        "gskew:n=" + std::to_string(n - 1),
        "agree:n=" + std::to_string(n),
        "pas:h=6,l=" + std::to_string(n - 6) + ",a=" +
            std::to_string(n - 6),
        "yags:c=" + std::to_string(n) + ",n=" + std::to_string(n - 2),
        "tournament:n=" + std::to_string(n - 2),
    };
    bpsim::TextTable panel;
    panel.setColumns({"predictor", "counter KB", "mispredict (%)"});
    for (const std::string &config : configs) {
        const bpsim::PredictorPtr predictor =
            bpsim::makePredictor(config);
        auto reader = trace.reader();
        const bpsim::SimResult result = simulate(*predictor, reader);
        panel.addRow({result.predictorName,
                      bpsim::TextTable::fixed(result.counterKBytes(), 3),
                      bpsim::TextTable::fixed(result.mispredictionRate(),
                                              3)});
    }
    panel.print(std::cout);
    return 0;
}
