/**
 * @file
 * Learning curves and pipeline impact.
 *
 * Plots (as a text series) the per-interval misprediction rate of a
 * set of predictors over one benchmark — showing how fast each
 * converges after cold start — then translates the steady-state
 * rates into estimated CPI/IPC and speedup with the first-order
 * pipeline model.
 *
 * Usage: learning_curve [--benchmark gcc] [--interval 50000]
 *                       [--predictors bimodal:n=12,gshare:n=12;...]
 */

#include <algorithm>
#include <iostream>
#include <sstream>

#include "core/factory.hh"
#include "sim/interval_stats.hh"
#include "sim/pipeline_model.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

using namespace bpsim;

namespace
{

/** Splits a ';'-separated predictor list. */
std::vector<std::string>
splitConfigs(const std::string &text)
{
    std::vector<std::string> configs;
    std::istringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ';')) {
        if (!item.empty())
            configs.push_back(item);
    }
    return configs;
}

/** A tiny text sparkline for a misprediction series. */
std::string
sparkline(const std::vector<double> &values, double lo, double hi)
{
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+", "*",
                                   "#"};
    std::string line;
    for (double v : values) {
        const double t = hi > lo ? (v - lo) / (hi - lo) : 0.0;
        const int level = std::clamp(static_cast<int>(t * 7.0), 0, 7);
        line += glyphs[level];
    }
    return line;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("learning_curve",
                   "Per-interval misprediction series and pipeline "
                   "impact of a predictor set.");
    args.addOption("benchmark", "gcc", "benchmark name");
    args.addOption("interval", "50000",
                   "conditional branches per interval");
    args.addOption("predictors",
                   "bimodal:n=12;gshare:n=12;bimode:d=11;"
                   "perceptron:n=8,h=24",
                   "';'-separated predictor configs");
    args.addFlag("grammar",
                 "print the predictor config grammar (every "
                 "registered kind with its parameter schema) and "
                 "exit");
    CommonOptions::declareTraceCache(args);
    if (!args.parse(argc, argv))
        return 0;
    if (args.flag("grammar")) {
        std::cout << predictorGrammarHelp();
        return 0;
    }

    const auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    TraceCache cache(resolveTraceStoreDir(
        CommonOptions::fromArgs(args).traceCache));
    const MemoryTrace &trace = cache.traceFor(*spec);
    const std::uint64_t interval = args.getUint("interval");

    struct Row
    {
        std::string name;
        IntervalSeries series;
    };
    std::vector<Row> rows;
    double lo = 100.0, hi = 0.0;
    for (const std::string &config : splitConfigs(args.get("predictors"))) {
        const PredictorPtr predictor = makePredictor(config);
        auto reader = trace.reader();
        IntervalSeries series =
            measureIntervals(*predictor, reader, interval);
        for (double v : series.mispredictPercent) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        rows.push_back(Row{predictor->name(), std::move(series)});
    }

    std::cout << "benchmark " << spec->name << ", interval " << interval
              << " branches; series low " << TextTable::fixed(lo, 1)
              << "% high " << TextTable::fixed(hi, 1) << "%\n\n";
    for (const Row &row : rows) {
        std::cout << "  " << row.name << "\n  |"
                  << sparkline(row.series.mispredictPercent, lo, hi)
                  << "|  overall "
                  << TextTable::fixed(row.series.overallPercent, 2)
                  << "%, steady "
                  << TextTable::fixed(row.series.steadyStatePercent(), 2)
                  << "%, warm-up "
                  << row.series.warmupIntervals() << " intervals\n\n";
    }

    // Pipeline translation (Alpha 21264-flavoured parameters).
    const PipelineModel machine;
    std::cout << "pipeline model: base CPI " << machine.baseCpi
              << ", branch fraction " << machine.branchFraction
              << ", penalty " << machine.mispredictPenaltyCycles
              << " cycles\n";
    TextTable table;
    table.setColumns({"predictor", "steady misp %", "est. IPC",
                      "speedup vs first (%)"});
    const double base_rate =
        rows.empty() ? 0.0 : rows.front().series.steadyStatePercent();
    for (const Row &row : rows) {
        const double rate = row.series.steadyStatePercent();
        table.addRow({row.name, TextTable::fixed(rate, 2),
                      TextTable::fixed(machine.ipcAt(rate), 3),
                      TextTable::fixed(
                          machine.speedupPercent(base_rate, rate), 2)});
    }
    table.print(std::cout);
    return 0;
}
