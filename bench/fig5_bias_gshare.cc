/**
 * @file
 * Reproduces Figure 5 of the paper: per-counter bias-class
 * decomposition for two 256-counter gshare-style schemes on gcc —
 *
 *   history-indexed  8 pc bits xor 8 history bits  (n=8, m=8)
 *   address-indexed  8 pc bits xor 2 history bits  (n=8, m=2)
 *
 * Expected shape: the history-indexed scheme has the smaller WB area
 * (more history isolates special conditions into strongly biased
 * substreams) but the larger non-dominant area (it mixes opposite
 * strong biases onto shared counters — destructive aliasing).
 */

#include <iostream>

#include "analysis/bias_analysis.hh"
#include "common/bench_common.hh"
#include "predictors/gshare.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig5_bias_gshare",
                   "Reproduce Figure 5: bias breakdown per counter "
                   "for history- vs address-indexed gshare on gcc.");
    addCommonOptions(args);
    args.addOption("benchmark", "gcc", "benchmark to analyze");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    spec->dynamicBranches /= divisor;
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);

    struct SchemeDef
    {
        const char *label;
        unsigned historyBits;
    };
    for (const SchemeDef scheme :
         {SchemeDef{"history-indexed gshare (8 addr xor 8 hist)", 8},
          SchemeDef{"address-indexed gshare (8 addr xor 2 hist)", 2}}) {
        GsharePredictor predictor(8, scheme.historyBits);
        auto reader = trace.reader();
        BiasAnalysis analysis(predictor, reader);
        analysis.run();
        const CounterProfile profile = analysis.counterProfile();
        CounterProfileView view;
        view.title = "Figure 5: bias breakdown (" + spec->name + ")";
        view.schemeLabel = scheme.label;
        view.profile = &profile;
        emitCounterProfile(args, view);
        std::cout << "overall misprediction: "
                  << TextTable::fixed(
                         analysis.result().mispredictionRate(), 2)
                  << "%\n";
    }
    return 0;
}
