/**
 * @file
 * Reproduces Table 2 of the paper: static and dynamic conditional
 * branch counts of the benchmark suite.
 *
 * The synthetic workloads pin the static population to the paper's
 * values at build time; the dynamic counts are scaled by ~1/10
 * (capped at 2.5M) so the full figure sweeps stay laptop-scale. The
 * table reports both the measured counts and the paper's originals.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "trace/trace_stats.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("table2_branch_stats",
                   "Reproduce Table 2: branch counts per benchmark.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    std::cout << "Table 2 — static and dynamic conditional branch "
                 "counts\n(paper values in parentheses columns)\n";

    TraceCache cache(traceStoreDir(args));
    TextTable table;
    table.setColumns({"benchmark", "suite", "static", "static (paper)",
                      "dynamic", "dynamic (paper)", "taken %",
                      ">=90% biased dyn %"});
    std::string last_suite;
    for (const auto &spec :
         scaledSuite(allBenchmarks(), divisor)) {
        if (!last_suite.empty() && spec.suite != last_suite)
            table.addRule();
        last_suite = spec.suite;
        const MemoryTrace &trace = cache.traceFor(spec);
        TraceStats stats;
        auto reader = trace.reader();
        stats.observeAll(reader);
        table.addRow({
            spec.name,
            spec.suite,
            TextTable::grouped(stats.staticConditional()),
            TextTable::grouped(paperStaticCount(spec.name)),
            TextTable::grouped(stats.dynamicConditional()),
            TextTable::grouped(paperDynamicCount(spec.name)),
            TextTable::fixed(100.0 * stats.takenFraction(), 1),
            TextTable::fixed(
                100.0 * stats.stronglyBiasedDynamicFraction(), 1),
        });
    }
    emitTable(args, table, "Table 2: branch counts");
    return 0;
}
