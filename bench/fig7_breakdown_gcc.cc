/**
 * @file
 * Reproduces Figure 7 of the paper: misprediction contributed by the
 * SNT / ST / WB bias classes on gcc, for three schemes at three
 * second-level sizes (256, 1K, 32K counters).
 *
 * Expected shape: the address-indexed gshare (few history bits) has
 * the largest WB error; the history-indexed gshare trades WB error
 * for ST/SNT interference error; bi-mode keeps the reduced WB error
 * while also shrinking the strongly-biased classes' error.
 */

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig7_breakdown_gcc",
                   "Reproduce Figure 7: misprediction by bias class "
                   "on gcc.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    runBreakdownFigure(args, "gcc", divisor, "Figure 7");
    return 0;
}
