/**
 * @file
 * Reproduces Figure 2 of the paper: misprediction rate versus
 * predictor size (0.25-32 K bytes of 2-bit counters), averaged over
 * SPEC CINT95 and over IBS-Ultrix, for three schemes:
 *
 *   gshare.1PHT  gshare with full-length history (m = n)
 *   gshare.best  the best history length for the suite average,
 *                found by the paper's exhaustive sweep (§3.1)
 *   bi-mode      the canonical bi-mode point at its natural
 *                1.5x-of-the-smaller-gshare cost
 *
 * The expected shape (paper): bi-mode lowest at every size,
 * gshare.best between, gshare.1PHT highest; bi-mode needs roughly
 * half the hardware of gshare for equal accuracy at >= 4KB.
 *
 * The measurement runs as campaign grids on the --jobs worker pool
 * (traces generated once, simulated many); output is identical at
 * any worker count.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

void
reportSuite(const ArgParser &args, TraceCache &cache,
            const std::vector<WorkloadSpec> &specs,
            const std::string &label)
{
    const auto curve =
        measureSchemeCurves(cache, specs, paperSizeLadder());
    TextTable table;
    table.setColumns({"size (KB)", "gshare.1PHT", "gshare.best",
                      "(best h)", "bi-mode", "(bi-mode KB)"});
    for (const auto &point : curve) {
        table.addRow({
            TextTable::fixed(point.size.gshareKBytes(), 3),
            TextTable::fixed(point.pht1Average, 2),
            TextTable::fixed(point.bestAverage, 2),
            "h=" + std::to_string(point.bestHistoryBits),
            TextTable::fixed(point.bimodeAverage, 2),
            TextTable::fixed(point.size.bimodeKBytes(), 3),
        });
    }
    emitTable(args, table,
              "Figure 2: averaged misprediction rates — " + label);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fig2_avg_curves",
                   "Reproduce Figure 2: averaged misprediction vs "
                   "predictor size for gshare.1PHT, gshare.best and "
                   "bi-mode.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    TraceCache cache(traceStoreDir(args));
    reportSuite(args, cache, scaledSuite(specCint95Benchmarks(), divisor),
                "SPEC CINT95 average");
    reportSuite(args, cache, scaledSuite(ibsBenchmarks(), divisor),
                "IBS-Ultrix average");
    return 0;
}
