/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 *
 * Every bench binary accepts:
 *   --quick        scale dynamic branch counts down 5x (fast smoke
 *                  runs; the shapes survive, the noise grows)
 *   --csv          also emit each table as CSV after the aligned view
 *   --json         also dump raw per-job campaign results as JSON
 *   --jobs N       campaign worker threads (0 = one per hardware
 *                  thread); results are identical for every N
 *   --timing       include machine-dependent wall time / throughput
 *                  fields in JSON output (off by default so output
 *                  stays byte-identical across machines)
 *   --trace-cache DIR
 *                  persistent trace store directory (default:
 *                  $BPSIM_TRACE_CACHE, then .bpsim-cache; 'none'
 *                  disables persistence). A warmed store turns the
 *                  serial generate-and-pack phase into file loads —
 *                  the packed traces as zero-copy mmap views — so
 *                  repeat figure runs are replay-bound end to end.
 *   --verbose      progress logging to stderr
 */

#ifndef BPSIM_BENCH_COMMON_HH
#define BPSIM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "analysis/counter_profile.hh"
#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "sim/gshare_sweep.hh"
#include "sim/size_ladder.hh"
#include "sim/trace_cache.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "workload/benchmarks.hh"

namespace bpsim::bench
{

/** Declares the common options on @p args. */
void addCommonOptions(ArgParser &args);

/** Applies --verbose and --jobs; returns the --quick scale-down. */
std::uint64_t applyCommonOptions(const ArgParser &args);

/** Resolves --trace-cache through the flag/env/default ladder; ""
 *  when persistence is disabled. Pass to the TraceCache ctor. */
std::string traceStoreDir(const ArgParser &args);

/** A campaign progress hook that logs each completed job when
 *  --verbose is on. */
ProgressFn verboseProgress();

/** Dumps @p results as JSON to stdout when --json was given. */
void maybeEmitJson(const ArgParser &args,
                   const std::vector<JobResult> &results,
                   const std::string &title);

/** Scales a suite's dynamic counts down by @p divisor (>= 1). */
std::vector<WorkloadSpec> scaledSuite(std::vector<WorkloadSpec> specs,
                                      std::uint64_t divisor);

/** Prints the table and, when --csv was given, its CSV form. */
void emitTable(const ArgParser &args, const TextTable &table,
               const std::string &title);

/** Readers over a suite's traces, generating through @p cache. */
std::vector<const MemoryTrace *>
suiteTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs);

/**
 * Per-size-rung results of the paper's three headline schemes
 * (gshare.1PHT, gshare.best, bi-mode) over one benchmark suite.
 */
struct SchemeCurvePoint
{
    SizePoint size;
    /** gshare.best history length found by the suite-average sweep. */
    unsigned bestHistoryBits = 0;
    /** Misprediction rates per benchmark, suite order. */
    std::vector<double> pht1;
    std::vector<double> best;
    std::vector<double> bimode;
    /** Suite averages. */
    double pht1Average = 0.0;
    double bestAverage = 0.0;
    double bimodeAverage = 0.0;
};

/**
 * Runs the Figure 2/3/4 measurement: for each ladder rung, sweeps
 * gshare history lengths over the suite (paper §3.1), then measures
 * gshare.1PHT, gshare.best and the natural bi-mode point. Both
 * stages run as campaign grids on the --jobs worker pool; results
 * are identical at any worker count.
 */
std::vector<SchemeCurvePoint>
measureSchemeCurves(TraceCache &cache,
                    const std::vector<WorkloadSpec> &specs,
                    const std::vector<SizePoint> &ladder);

/**
 * Runs a Figure 7/8 style misprediction breakdown: for second-level
 * sizes of 256, 1K and 32K counters, measures the misprediction
 * contributed by the SNT / ST / WB classes under three schemes —
 * address-indexed gshare (m = n-6), history-indexed gshare (m = n),
 * and the bi-mode point whose second level matches the size class
 * (d = n-1).
 */
void runBreakdownFigure(const ArgParser &args,
                        const std::string &benchmarkName,
                        std::uint64_t divisor,
                        const std::string &figureLabel);

/** Inputs of emitCounterProfile(). */
struct CounterProfileView
{
    std::string title;
    std::string schemeLabel;
    const CounterProfile *profile = nullptr;
    /** Per-counter rows shown in the aligned view (CSV shows all). */
    std::size_t maxRows = 32;
};

/**
 * Prints a Figure 5/6 style per-counter bias profile: the summary
 * areas plus the per-counter decomposition, sorted by WB share as in
 * the paper's x-axis.
 */
void emitCounterProfile(const ArgParser &args,
                        const CounterProfileView &view);

} // namespace bpsim::bench

#endif // BPSIM_BENCH_COMMON_HH
