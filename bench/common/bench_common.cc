#include "common/bench_common.hh"

#include <algorithm>
#include <iostream>

#include "analysis/bias_analysis.hh"
#include "core/factory.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace bpsim::bench
{

void
addCommonOptions(ArgParser &args)
{
    CommonOptions::declare(args);
}

std::uint64_t
applyCommonOptions(const ArgParser &args)
{
    const CommonOptions opts = CommonOptions::fromArgs(args);
    setVerbose(opts.verbose);
    KernelTier tier = KernelTier::Auto;
    if (!parseKernelTier(opts.kernelTier, tier)) {
        BPSIM_WARN("--kernel-tier '" << opts.kernelTier
                   << "' is not a tier name (auto, scalar, neon, "
                   << "avx2, avx512); using auto");
        tier = KernelTier::Auto;
    }
    setKernelTierOverride(tier);
    // The blocking drivers call Campaign::run(0) all over; feed the
    // legacy process-wide default for them. Scheduler-based callers
    // pass opts.jobs explicitly instead.
    setDefaultWorkerCount(opts.jobs);
    return opts.quickDivisor();
}

std::string
traceStoreDir(const ArgParser &args)
{
    return resolveTraceStoreDir(args.get("trace-cache"));
}

ProgressFn
verboseProgress()
{
    if (!verbose())
        return {};
    return [](const CampaignProgress &progress) {
        BPSIM_INFORM("[" << progress.completed << "/" << progress.total
                     << "] " << progress.latest->benchmark << " × "
                     << progress.latest->configText
                     << (progress.latest->ok()
                             ? ""
                             : " FAILED: " + progress.latest->error));
    };
}

void
maybeEmitJson(const ArgParser &args,
              const std::vector<JobResult> &results,
              const std::string &title)
{
    if (!args.flag("json"))
        return;
    std::cout << "\n[json] " << title << "\n";
    // Timing is opt-in so default JSON stays byte-identical across
    // machines and --jobs values.
    writeResultsJson(std::cout, results, args.flag("timing"));
    std::cout.flush();
}

std::vector<WorkloadSpec>
scaledSuite(std::vector<WorkloadSpec> specs, std::uint64_t divisor)
{
    for (auto &spec : specs)
        spec = scaledBenchmark(std::move(spec), divisor);
    return specs;
}

void
emitTable(const ArgParser &args, const TextTable &table,
          const std::string &title)
{
    std::cout << "\n## " << title << "\n\n";
    table.print(std::cout);
    if (args.flag("csv")) {
        std::cout << "\n[csv] " << title << "\n";
        table.printCsv(std::cout);
    }
    std::cout.flush();
}

std::vector<const MemoryTrace *>
suiteTraces(TraceCache &cache, const std::vector<WorkloadSpec> &specs)
{
    std::vector<const MemoryTrace *> traces;
    traces.reserve(specs.size());
    for (const auto &spec : specs)
        traces.push_back(&cache.traceFor(spec));
    return traces;
}

std::vector<SchemeCurvePoint>
measureSchemeCurves(TraceCache &cache,
                    const std::vector<WorkloadSpec> &specs,
                    const std::vector<SizePoint> &ladder)
{
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, specs);

    std::vector<SchemeCurvePoint> curve;
    curve.reserve(ladder.size());

    for (const SizePoint &size : ladder) {
        BPSIM_INFORM("sweeping gshare at n=" << size.gshareIndexBits);
        SchemeCurvePoint point;
        point.size = size;

        // Exhaustive history sweep (paper section 3.1), a campaign
        // grid inside sweepGshare(). The benchmarks carry packed
        // traces, so the whole sweep fuses into one banked replay
        // pass per benchmark. The m == n point doubles as
        // gshare.1PHT.
        const GshareSweepResult sweep =
            sweepGshare(size.gshareIndexBits, benchmarks);
        const GshareSweepPoint &best = sweep.best();
        const GshareSweepPoint &pht1 = sweep.points.back();
        point.bestHistoryBits = best.historyBits;
        point.pht1 = pht1.perBenchmark;
        point.pht1Average = pht1.average;
        point.best = best.perBenchmark;
        point.bestAverage = best.average;

        // The natural bi-mode point at this rung: one campaign of
        // the canonical config over the whole suite. The factory's
        // "bimode:d=<d>" defaults are BiModeConfig::canonical(d).
        Campaign bimodeJobs;
        bimodeJobs.addGrid(
            {"bimode:d=" + std::to_string(size.bimodeDirectionBits)},
            benchmarks);
        const std::vector<JobResult> results =
            bimodeJobs.run(0, verboseProgress());
        double total = 0.0;
        for (const JobResult &job : results) {
            if (!job.ok())
                BPSIM_FATAL("bi-mode job failed: " << job.error);
            point.bimode.push_back(job.result.mispredictionRate());
            total += job.result.mispredictionRate();
        }
        point.bimodeAverage =
            total / static_cast<double>(benchmarks.size());
        curve.push_back(std::move(point));
    }
    return curve;
}

void
runBreakdownFigure(const ArgParser &args,
                   const std::string &benchmarkName,
                   std::uint64_t divisor, const std::string &figureLabel)
{
    auto spec = findBenchmark(benchmarkName);
    if (!spec)
        BPSIM_FATAL("unknown benchmark '" << benchmarkName << "'");
    spec->dynamicBranches /= divisor;
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);

    TextTable table;
    table.setColumns({"second level", "scheme", "SNT %", "ST %", "WB %",
                      "total %"});

    // The paper's three size classes: 256, 1K and 32K counters.
    for (unsigned n : {8u, 10u, 15u}) {
        struct Scheme
        {
            std::string label;
            PredictorPtr predictor;
        };
        std::vector<Scheme> schemes;
        schemes.push_back(
            {"gshare(" + std::to_string(n - 6) + ")",
             makePredictor("gshare:n=" + std::to_string(n) +
                           ",h=" + std::to_string(n - 6))});
        schemes.push_back(
            {"gshare(" + std::to_string(n) + ")",
             makePredictor("gshare:n=" + std::to_string(n))});
        schemes.push_back(
            {"bimode(" + std::to_string(n - 1) + ")",
             makePredictor("bimode:d=" + std::to_string(n - 1))});

        const std::string size_label =
            n == 8 ? "256" : n == 10 ? "1K" : "32K";
        for (Scheme &scheme : schemes) {
            auto reader = trace.reader();
            BiasAnalysis analysis(*scheme.predictor, reader);
            analysis.run();
            const MispredictionBreakdown breakdown =
                analysis.breakdown();
            table.addRow({size_label + " counters", scheme.label,
                          TextTable::fixed(breakdown.sntPercent, 2),
                          TextTable::fixed(breakdown.stPercent, 2),
                          TextTable::fixed(breakdown.wbPercent, 2),
                          TextTable::fixed(breakdown.totalPercent(),
                                           2)});
        }
        table.addRule();
    }
    emitTable(args, table,
              figureLabel + ": misprediction by bias class (" +
                  spec->name + ")");
}

void
emitCounterProfile(const ArgParser &args, const CounterProfileView &view)
{
    const CounterProfile &profile = *view.profile;
    std::cout << "\n## " << view.title << " — " << view.schemeLabel
              << "\n\n";
    std::cout << "active counters: " << profile.activeCounters << "\n"
              << "region areas (mean per-counter shares, %):\n"
              << "  dominant     "
              << TextTable::fixed(100 * profile.meanDominantShare, 2)
              << "\n  non-dominant "
              << TextTable::fixed(100 * profile.meanNonDominantShare, 2)
              << "\n  WB           "
              << TextTable::fixed(100 * profile.meanWbShare, 2) << "\n"
              << "traffic-weighted shares (%): dominant "
              << TextTable::fixed(100 * profile.trafficDominantShare, 2)
              << ", non-dominant "
              << TextTable::fixed(100 * profile.trafficNonDominantShare,
                                  2)
              << ", WB "
              << TextTable::fixed(100 * profile.trafficWbShare, 2)
              << "\n";

    TextTable table;
    table.setColumns({"counter (WB-sorted rank)", "traffic",
                      "dominant %", "non-dominant %", "WB %"});
    const std::size_t n = profile.counters.size();
    const std::size_t step =
        view.maxRows == 0 ? 1 : std::max<std::size_t>(1, n / view.maxRows);
    for (std::size_t i = 0; i < n; i += step) {
        const CounterBias &c = profile.counters[i];
        table.addRow({
            std::to_string(i),
            TextTable::grouped(c.total),
            TextTable::fixed(100 * c.dominantShare(), 1),
            TextTable::fixed(100 * c.nonDominantShare(), 1),
            TextTable::fixed(100 * c.wbShare(), 1),
        });
    }
    table.print(std::cout);

    if (args.flag("csv")) {
        TextTable full;
        full.setColumns({"rank", "counterId", "traffic", "dominant",
                         "nonDominant", "wb"});
        for (std::size_t i = 0; i < n; ++i) {
            const CounterBias &c = profile.counters[i];
            full.addRow({std::to_string(i), std::to_string(c.counterId),
                         std::to_string(c.total),
                         TextTable::fixed(c.dominantShare(), 6),
                         TextTable::fixed(c.nonDominantShare(), 6),
                         TextTable::fixed(c.wbShare(), 6)});
        }
        std::cout << "\n[csv] " << view.title << "\n";
        full.printCsv(std::cout);
    }
    std::cout.flush();
}

} // namespace bpsim::bench
