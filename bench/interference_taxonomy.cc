/**
 * @file
 * Lookup-level interference taxonomy (companion analysis to the
 * paper's Section 4, after Young/Gloy/Smith and Michaud et al.):
 * what fraction of lookups are aliased, and of those, how many are
 * destructive vs neutral vs constructive — for each de-aliasing
 * scheme at the 1KB size class on gcc and go.
 *
 * Expected shape: bi-mode and agree convert most destructive
 * interference to neutral; the history-indexed gshare suffers the
 * most destructive aliasing.
 */

#include <iostream>

#include "analysis/interference.hh"
#include "common/bench_common.hh"
#include "core/factory.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("interference_taxonomy",
                   "Aliased-lookup taxonomy (neutral / destructive / "
                   "constructive) per scheme.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    TraceCache cache(traceStoreDir(args));
    for (const char *bench_name : {"gcc", "go"}) {
        auto spec = findBenchmark(bench_name);
        spec->dynamicBranches /= divisor;
        const MemoryTrace &trace = cache.traceFor(*spec);

        TextTable table;
        table.setColumns({"scheme", "aliased %", "destructive %",
                          "neutral %", "constructive %"});
        for (const char *config :
             {"bimodal:n=12", "gshare:n=12,h=6", "gshare:n=12",
              "agree:n=12", "filter:n=12", "gskew:n=11",
              "bimode:d=11"}) {
            const PredictorPtr predictor = makePredictor(config);
            auto reader = trace.reader();
            const InterferenceStats stats =
                measureInterference(*predictor, reader);
            table.addRow({predictor->name(),
                          TextTable::fixed(stats.aliasedPercent(), 2),
                          TextTable::fixed(stats.destructivePercent(),
                                           2),
                          TextTable::fixed(stats.neutralPercent(), 2),
                          TextTable::fixed(stats.constructivePercent(),
                                           2)});
        }
        emitTable(args, table,
                  std::string("Interference taxonomy at the 1KB "
                              "class (") +
                      bench_name + ")");
    }
    std::cout << "\nnote: the serving counter is exact for single-"
                 "write schemes and the voter's\nbimodal bank for "
                 "gskew, so its row is an approximation.\n";
    return 0;
}
