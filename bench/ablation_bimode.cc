/**
 * @file
 * Ablation study of the bi-mode design choices (beyond the paper's
 * figures; DESIGN.md section 5):
 *
 *  1. partial vs full direction-bank update
 *  2. the choice-update exception vs always updating the choice
 *  3. choice table sizing (half / equal / double the bank size)
 *  4. history length relative to the direction index width
 *
 * Run on gcc (aliasing-bound) and the SPEC CINT95 average. All
 * variant × benchmark cells form one campaign grid executed on the
 * --jobs worker pool (the gcc column reuses the suite run's gcc
 * cell — every cell is simulated exactly once).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("ablation_bimode",
                   "Ablations of the bi-mode update policies and "
                   "sizing choices.");
    addCommonOptions(args);
    args.addOption("d", "11", "direction-bank index width");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    const unsigned d = static_cast<unsigned>(args.getUint("d"));

    TraceCache cache(traceStoreDir(args));
    const auto suite = scaledSuite(specCint95Benchmarks(), divisor);
    // Suite order is the paper's Table 2 order; index 1 is gcc.
    const std::size_t gcc_index = 1;

    struct Variant
    {
        std::string label;
        std::string config;
    };
    const std::string base = "bimode:d=" + std::to_string(d);
    const std::vector<Variant> variants = {
        {"paper policy (partial update + choice exception)", base},
        {"full direction update", base + ",partial=0"},
        {"always update choice", base + ",alwayschoice=1"},
        {"both ablations", base + ",partial=0,alwayschoice=1"},
        {"choice half the bank (c=d-1)",
         base + ",c=" + std::to_string(d - 1)},
        {"choice double the bank (c=d+1)",
         base + ",c=" + std::to_string(d + 1)},
        {"history d-2", base + ",h=" + std::to_string(d - 2)},
        {"history d-4", base + ",h=" + std::to_string(d - 4)},
    };

    Campaign campaign;
    std::vector<std::string> configs;
    configs.reserve(variants.size());
    for (const Variant &variant : variants)
        configs.push_back(variant.config);
    campaign.addGrid(configs, resolveTraces(cache, suite));
    const auto results = campaign.run(0, verboseProgress());
    maybeEmitJson(args, results, "bi-mode ablations");

    TextTable table;
    table.setColumns(
        {"variant", "gcc misp %", "CINT95 avg misp %", "counter KB"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::size_t first = v * suite.size();
        std::string error;
        double total = 0.0;
        for (std::size_t b = 0; b < suite.size(); ++b) {
            const JobResult &job = results[first + b];
            if (!job.ok()) {
                error = job.error;
                break;
            }
            total += job.result.mispredictionRate();
        }
        if (!error.empty()) {
            table.addRow({variants[v].label, "--", "error: " + error,
                          "--"});
            continue;
        }
        table.addRow({
            variants[v].label,
            TextTable::fixed(
                results[first + gcc_index].result.mispredictionRate(),
                2),
            TextTable::fixed(
                total / static_cast<double>(suite.size()), 2),
            TextTable::fixed(results[first].result.counterKBytes(), 3),
        });
    }
    emitTable(args, table, "Bi-mode ablations (d=" + std::to_string(d) +
                               ")");
    std::cout << "expected: the paper policy is the best fixed-size "
                 "point; disabling either update rule costs accuracy.\n";
    return 0;
}
