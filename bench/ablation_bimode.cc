/**
 * @file
 * Ablation study of the bi-mode design choices (beyond the paper's
 * figures; DESIGN.md section 5):
 *
 *  1. partial vs full direction-bank update
 *  2. the choice-update exception vs always updating the choice
 *  3. choice table sizing (half / equal / double the bank size)
 *  4. history length relative to the direction index width
 *
 * Run on gcc (aliasing-bound) and the SPEC CINT95 average.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "sim/simulator.hh"
#include "core/factory.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

double
averageOver(TraceCache &cache, const std::vector<WorkloadSpec> &specs,
            const std::string &config)
{
    double total = 0.0;
    for (const auto &spec : specs) {
        const PredictorPtr predictor = makePredictor(config);
        auto reader = cache.traceFor(spec).reader();
        total += simulate(*predictor, reader).mispredictionRate();
    }
    return total / static_cast<double>(specs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_bimode",
                   "Ablations of the bi-mode update policies and "
                   "sizing choices.");
    addCommonOptions(args);
    args.addOption("d", "11", "direction-bank index width");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    const unsigned d = static_cast<unsigned>(args.getUint("d"));

    TraceCache cache;
    const auto suite = scaledSuite(specCint95Benchmarks(), divisor);
    const std::vector<WorkloadSpec> gcc_only = {suite[1]};

    struct Variant
    {
        std::string label;
        std::string config;
    };
    const std::string base = "bimode:d=" + std::to_string(d);
    const std::vector<Variant> variants = {
        {"paper policy (partial update + choice exception)", base},
        {"full direction update", base + ",partial=0"},
        {"always update choice", base + ",alwayschoice=1"},
        {"both ablations", base + ",partial=0,alwayschoice=1"},
        {"choice half the bank (c=d-1)",
         base + ",c=" + std::to_string(d - 1)},
        {"choice double the bank (c=d+1)",
         base + ",c=" + std::to_string(d + 1)},
        {"history d-2", base + ",h=" + std::to_string(d - 2)},
        {"history d-4", base + ",h=" + std::to_string(d - 4)},
    };

    TextTable table;
    table.setColumns(
        {"variant", "gcc misp %", "CINT95 avg misp %", "counter KB"});
    for (const Variant &variant : variants) {
        const PredictorPtr probe = makePredictor(variant.config);
        table.addRow({
            variant.label,
            TextTable::fixed(averageOver(cache, gcc_only,
                                         variant.config), 2),
            TextTable::fixed(averageOver(cache, suite, variant.config),
                             2),
            TextTable::fixed(
                static_cast<double>(probe->counterBits()) / 8 / 1024, 3),
        });
    }
    emitTable(args, table, "Bi-mode ablations (d=" + std::to_string(d) +
                               ")");
    std::cout << "expected: the paper policy is the best fixed-size "
                 "point; disabling either update rule costs accuracy.\n";
    return 0;
}
