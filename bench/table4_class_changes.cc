/**
 * @file
 * Reproduces Table 4 of the paper: the number of changes between
 * bias classes at the second-level counters, comparing the
 * history-indexed gshare with the bi-mode scheme on gcc.
 *
 * A "change" is a break in one class's run of accesses at a counter
 * (interference by the other classes). Expected shape: bi-mode shows
 * fewer changes — its ST and SNT substreams are less intermingled.
 */

#include <iostream>

#include "analysis/bias_analysis.hh"
#include "common/bench_common.hh"
#include "core/bimode.hh"
#include "predictors/gshare.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("table4_class_changes",
                   "Reproduce Table 4: bias-class change counts for "
                   "the history-indexed and bi-mode schemes.");
    addCommonOptions(args);
    args.addOption("benchmark", "gcc", "benchmark to analyze");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    spec->dynamicBranches /= divisor;
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);

    TextTable table;
    table.setColumns(
        {"scheme", "dominant", "non-dominant", "WB", "total"});

    // History-indexed gshare: 256 counters, 8 bits of history.
    {
        GsharePredictor predictor(8, 8);
        auto reader = trace.reader();
        BiasAnalysis analysis(predictor, reader);
        analysis.run();
        const TransitionCounts counts = analysis.countTransitions();
        table.addRow({"history-indexed gshare (n=8,h=8)",
                      TextTable::grouped(counts.dominant),
                      TextTable::grouped(counts.nonDominant),
                      TextTable::grouped(counts.weak),
                      TextTable::grouped(counts.total())});
    }

    // Bi-mode: 128-counter choice + two 128-counter banks.
    {
        BiModeConfig cfg;
        cfg.directionIndexBits = 7;
        cfg.choiceIndexBits = 7;
        cfg.historyBits = 7;
        BiModePredictor predictor(cfg);
        auto reader = trace.reader();
        BiasAnalysis analysis(predictor, reader);
        analysis.run();
        const TransitionCounts counts = analysis.countTransitions();
        table.addRow({"bi-mode (c=128, 2x128 direction)",
                      TextTable::grouped(counts.dominant),
                      TextTable::grouped(counts.nonDominant),
                      TextTable::grouped(counts.weak),
                      TextTable::grouped(counts.total())});
    }

    emitTable(args, table,
              "Table 4: bias-class changes (" + spec->name + ")");
    std::cout << "expected shape: fewer changes for bi-mode — its ST "
                 "and SNT classes are less intermingled.\n";
    return 0;
}
