/**
 * @file
 * Reproduces Table 3 of the paper: the worked example of normalized
 * counts N_bc at a prediction counter, first with the paper's exact
 * four streams, then live — the busiest mixed-class counter found in
 * an actual gshare run on gcc.
 */

#include <algorithm>
#include <iostream>

#include "analysis/bias_analysis.hh"
#include "common/bench_common.hh"
#include "predictors/gshare.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

void
emitStreams(const ArgParser &args,
            const std::vector<const StreamStats *> &streams,
            std::uint64_t counterTotal, const std::string &title)
{
    TextTable table;
    table.setColumns({"branch pc", "count to counter", "taken count",
                      "bias class", "normalized count %"});
    for (const StreamStats *stream : streams) {
        table.addRow({
            "0x" + [&] {
                char buffer[32];
                std::snprintf(buffer, sizeof(buffer), "%llx",
                              static_cast<unsigned long long>(stream->pc));
                return std::string(buffer);
            }(),
            TextTable::grouped(stream->count),
            TextTable::grouped(stream->takenCount),
            biasClassName(stream->biasClass()),
            TextTable::fixed(100.0 * static_cast<double>(stream->count) /
                                 static_cast<double>(counterTotal),
                             1),
        });
    }
    emitTable(args, table, title);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("table3_normalized_counts",
                   "Reproduce Table 3: normalized counts at a "
                   "prediction counter.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    // Part 1: the paper's exact example — four streams on counter c.
    {
        StreamTracker tracker;
        auto feed = [&](std::uint64_t pc, int total, int taken) {
            for (int i = 0; i < total; ++i)
                tracker.observe(pc, 0, i < taken, false);
        };
        feed(0x001, 12, 11);
        feed(0x005, 20, 1);
        feed(0x100, 8, 3);
        feed(0x150, 10, 1);
        emitStreams(args, tracker.streamsOfCounter(0), 50,
                    "Table 3 (paper example): four streams at one "
                    "counter");
        std::cout << "expected: ST 24%, SNT 40%+20% = 60% (dominant), "
                     "WB 16%\n";
    }

    // Part 2: the same decomposition live from a gcc run.
    auto spec = findBenchmark("gcc");
    spec->dynamicBranches /= divisor;
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);
    GsharePredictor predictor(8, 8);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();

    // Find the busiest counter whose dominant class does not own the
    // whole traffic (a genuinely mixed counter).
    const CounterProfile profile = analysis.counterProfile();
    const CounterBias *chosen = nullptr;
    for (const CounterBias &c : profile.counters) {
        if (c.nonDominantShare() > 0.1 && c.wbShare() > 0.05 &&
            (!chosen || c.total > chosen->total)) {
            chosen = &c;
        }
    }
    if (chosen) {
        auto streams = analysis.streams().streamsOfCounter(
            chosen->counterId);
        std::sort(streams.begin(), streams.end(),
                  [](const StreamStats *a, const StreamStats *b) {
                      return a->count > b->count;
                  });
        if (streams.size() > 12)
            streams.resize(12);
        emitStreams(args, streams, chosen->total,
                    "Table 3 (live): busiest mixed counter in a "
                    "256-counter gshare on gcc (counter " +
                        std::to_string(chosen->counterId) + ", " +
                        std::to_string(chosen->total) +
                        " accesses; top streams)");
    } else {
        std::cout << "no mixed counter found (unexpected)\n";
    }
    return 0;
}
