/**
 * @file
 * The related-work shootout the paper points to ([Lee97], §2.1): all
 * de-aliasing schemes at matched hardware budgets over the full
 * 14-benchmark suite.
 *
 * At each budget (1KB / 4KB / 16KB of prediction state) the closest
 * configuration of every scheme is measured and the suite-average
 * misprediction reported, alongside its exact counter cost.
 *
 * Expected shape (paper §2.1): "hardware hashing [gskew] is useful
 * for small low cost systems; for large systems the bi-mode scheme
 * is the best cost-effective scheme" among the 1997 proposals. The
 * perceptron (2001) is included as the out-of-era reference point.
 *
 * Each budget class is one campaign grid (configs × 14 benchmarks)
 * executed on the --jobs worker pool; a bad configuration shows up
 * as an error row instead of killing the run.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

struct BudgetClass
{
    const char *label;
    std::vector<std::string> configs;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("scheme_comparison",
                   "All de-aliasing schemes at matched budgets over "
                   "the full suite.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    TraceCache cache(traceStoreDir(args));
    const auto specs = scaledSuite(allBenchmarks(), divisor);
    const auto benchmarks = resolveTraces(cache, specs);

    // Configurations sized to land at (or just under) each budget.
    const std::vector<BudgetClass> budgets = {
        {"~1KB",
         {"bimodal:n=12", "gshare:n=12", "gshare:n=12,h=9",
          "gas:h=8,a=4", "pas:h=6,l=9,a=6", "agree:n=12",
          "filter:n=12", "gskew:n=10", "bimode:d=10", "yags:c=11,n=9",
          "tournament:n=10", "perceptron:n=5,h=21"}},
        {"~4KB",
         {"bimodal:n=14", "gshare:n=14", "gshare:n=14,h=11",
          "gas:h=10,a=4", "pas:h=8,l=10,a=6", "agree:n=14",
          "filter:n=14", "gskew:n=12", "bimode:d=12", "yags:c=13,n=11",
          "tournament:n=12", "perceptron:n=7,h=21"}},
        {"~16KB",
         {"bimodal:n=16", "gshare:n=16", "gshare:n=16,h=13",
          "gas:h=12,a=4", "pas:h=10,l=11,a=6", "agree:n=16",
          "filter:n=16", "gskew:n=14", "bimode:d=14", "yags:c=15,n=13",
          "tournament:n=14", "perceptron:n=9,h=21"}},
    };

    for (const BudgetClass &budget : budgets) {
        Campaign campaign;
        campaign.addGrid(budget.configs, benchmarks);
        const auto results = campaign.run(0, verboseProgress());
        maybeEmitJson(args, results,
                      std::string("scheme comparison ") + budget.label);

        TextTable table;
        table.setColumns({"scheme", "counter KB", "suite avg misp %",
                          "CINT95 avg %", "IBS avg %"});
        for (std::size_t c = 0; c < budget.configs.size(); ++c) {
            // The grid is config-major: this config's results form
            // one contiguous run in suite order.
            const std::size_t base = c * specs.size();
            double total = 0.0, cint = 0.0, ibs = 0.0;
            std::size_t cint_count = 0, ibs_count = 0;
            std::string name;
            double kbytes = 0.0;
            std::string error;
            for (std::size_t b = 0; b < specs.size(); ++b) {
                const JobResult &job = results[base + b];
                if (!job.ok()) {
                    error = job.error;
                    break;
                }
                name = job.result.predictorName;
                kbytes = job.result.counterKBytes();
                const double rate = job.result.mispredictionRate();
                total += rate;
                if (specs[b].suite == "SPEC CINT95") {
                    cint += rate;
                    ++cint_count;
                } else {
                    ibs += rate;
                    ++ibs_count;
                }
            }
            if (!error.empty()) {
                table.addRow({budget.configs[c], "--",
                              "error: " + error, "--", "--"});
                continue;
            }
            table.addRow({
                name,
                TextTable::fixed(kbytes, 2),
                TextTable::fixed(total / specs.size(), 2),
                TextTable::fixed(cint / cint_count, 2),
                TextTable::fixed(ibs / ibs_count, 2),
            });
        }
        emitTable(args, table,
                  std::string("Scheme comparison at ") + budget.label);
    }
    return 0;
}
