/**
 * @file
 * Reproduces Figure 3 of the paper: per-benchmark misprediction
 * curves for the six SPEC CINT95 programs.
 *
 * As in the paper, gshare.best is the configuration that minimizes
 * the *suite-average* misprediction at each size (not the per-
 * benchmark optimum), so individual programs can and do invert:
 * compress and xlisp favour gshare.1PHT; go favours multiple PHTs.
 *
 * Runs as campaign grids on the --jobs worker pool; output is
 * identical at any worker count.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig3_spec_curves",
                   "Reproduce Figure 3: per-benchmark curves, "
                   "SPEC CINT95.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    TraceCache cache(traceStoreDir(args));
    const auto specs = scaledSuite(specCint95Benchmarks(), divisor);
    const auto curve =
        measureSchemeCurves(cache, specs, paperSizeLadder());

    for (std::size_t b = 0; b < specs.size(); ++b) {
        TextTable table;
        table.setColumns({"size (KB)", "gshare.1PHT", "gshare.best",
                          "(best h)", "bi-mode"});
        for (const auto &point : curve) {
            table.addRow({
                TextTable::fixed(point.size.gshareKBytes(), 3),
                TextTable::fixed(point.pht1[b], 2),
                TextTable::fixed(point.best[b], 2),
                "h=" + std::to_string(point.bestHistoryBits),
                TextTable::fixed(point.bimode[b], 2),
            });
        }
        emitTable(args, table,
                  "Figure 3: misprediction rates — " + specs[b].name);
    }
    return 0;
}
