/**
 * @file
 * Reproduces Figure 6 of the paper: per-counter bias-class
 * decomposition for the bi-mode scheme (128-counter choice predictor
 * plus two 128-counter direction banks) on gcc.
 *
 * Expected shape versus Figure 5: the WB area stays as small as the
 * history-indexed gshare's (history benefits preserved) while the
 * dominant area grows much larger (destructive aliasing removed) —
 * "the dominant substreams dominate most of the counters".
 */

#include <iostream>

#include "analysis/bias_analysis.hh"
#include "common/bench_common.hh"
#include "core/bimode.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig6_bias_bimode",
                   "Reproduce Figure 6: bias breakdown per counter "
                   "for the bi-mode scheme on gcc.");
    addCommonOptions(args);
    args.addOption("benchmark", "gcc", "benchmark to analyze");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    auto spec = findBenchmark(args.get("benchmark"));
    if (!spec) {
        std::cerr << "unknown benchmark\n";
        return 1;
    }
    spec->dynamicBranches /= divisor;
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);

    // Paper configuration: 128-counter choice, two 128-counter banks.
    BiModeConfig cfg;
    cfg.directionIndexBits = 7;
    cfg.choiceIndexBits = 7;
    cfg.historyBits = 7;
    BiModePredictor predictor(cfg);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const CounterProfile profile = analysis.counterProfile();

    CounterProfileView view;
    view.title = "Figure 6: bias breakdown (" + spec->name + ")";
    view.schemeLabel =
        "bi-mode, 128-counter choice + 2 x 128-counter direction";
    view.profile = &profile;
    emitCounterProfile(args, view);
    std::cout << "overall misprediction: "
              << TextTable::fixed(analysis.result().mispredictionRate(),
                                  2)
              << "%\n";
    return 0;
}
