# Benchmark targets, included from the top-level CMakeLists so that
# build/bench/ holds only the runnable binaries (the documented
# `for b in build/bench/*; do $b; done` loop stays clean).

add_library(bpsim_bench_common bench/common/bench_common.cc)
target_include_directories(bpsim_bench_common
    PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(bpsim_bench_common
    PUBLIC bpsim_analysis bpsim_campaign bpsim_sim bpsim_core
           bpsim_predictors bpsim_workload bpsim_trace bpsim_util)

function(bpsim_bench name)
    add_executable(${name} bench/${name}.cc)
    target_link_libraries(${name} PRIVATE bpsim_bench_common)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

bpsim_bench(table2_branch_stats)
bpsim_bench(fig2_avg_curves)
bpsim_bench(fig3_spec_curves)
bpsim_bench(fig4_ibs_curves)
bpsim_bench(table3_normalized_counts)
bpsim_bench(fig5_bias_gshare)
bpsim_bench(fig6_bias_bimode)
bpsim_bench(table4_class_changes)
bpsim_bench(fig7_breakdown_gcc)
bpsim_bench(fig8_breakdown_go)
bpsim_bench(ablation_bimode)
bpsim_bench(interference_taxonomy)
bpsim_bench(scheme_comparison)
bpsim_bench(perf_replay)
bpsim_bench(perf_multiconfig)

add_executable(perf_predictors bench/perf_predictors.cc)
target_link_libraries(perf_predictors PRIVATE
    bpsim_sim bpsim_core bpsim_predictors bpsim_workload bpsim_trace
    bpsim_util benchmark::benchmark)
set_target_properties(perf_predictors PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
