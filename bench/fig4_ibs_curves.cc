/**
 * @file
 * Reproduces Figure 4 of the paper: per-benchmark misprediction
 * curves for the eight IBS-Ultrix programs. Same methodology as
 * Figure 3 (gshare.best chosen on the suite average).
 *
 * Runs as campaign grids on the --jobs worker pool; output is
 * identical at any worker count.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig4_ibs_curves",
                   "Reproduce Figure 4: per-benchmark curves, "
                   "IBS-Ultrix.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);

    TraceCache cache(traceStoreDir(args));
    const auto specs = scaledSuite(ibsBenchmarks(), divisor);
    const auto curve =
        measureSchemeCurves(cache, specs, paperSizeLadder());

    for (std::size_t b = 0; b < specs.size(); ++b) {
        TextTable table;
        table.setColumns({"size (KB)", "gshare.1PHT", "gshare.best",
                          "(best h)", "bi-mode"});
        for (const auto &point : curve) {
            table.addRow({
                TextTable::fixed(point.size.gshareKBytes(), 3),
                TextTable::fixed(point.pht1[b], 2),
                TextTable::fixed(point.best[b], 2),
                "h=" + std::to_string(point.bestHistoryBits),
                TextTable::fixed(point.bimode[b], 2),
            });
        }
        emitTable(args, table,
                  "Figure 4: misprediction rates — " + specs[b].name);
    }
    return 0;
}
