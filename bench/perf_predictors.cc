/**
 * @file
 * Google-benchmark microbenchmarks: simulation throughput of every
 * predictor kind over a shared gcc-like trace slice. Not a paper
 * figure — this measures the simulator itself, the metric that
 * bounds how much of the paper's sweep fits in a compute budget.
 */

#include <benchmark/benchmark.h>

#include "core/factory.hh"
#include "sim/simulator.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

namespace
{

/** A shared 200k-record slice of the gcc workload. */
const bpsim::MemoryTrace &
sharedTrace()
{
    static const bpsim::MemoryTrace trace = [] {
        auto spec = bpsim::findBenchmark("gcc");
        spec->dynamicBranches = 200'000;
        return bpsim::generateWorkloadTrace(*spec);
    }();
    return trace;
}

/** Conditional-record count of the shared trace — the unit of work
 *  simulate() actually performs (non-conditional records are
 *  skipped), so items/s is comparable with perf_replay. */
std::int64_t
sharedConditionals()
{
    static const std::int64_t count = [] {
        std::int64_t conditionals = 0;
        for (const bpsim::BranchRecord &record : sharedTrace().data())
            conditionals += record.isConditional() ? 1 : 0;
        return conditionals;
    }();
    return count;
}

void
runPredictor(benchmark::State &state, const std::string &config)
{
    const bpsim::MemoryTrace &trace = sharedTrace();
    const bpsim::PredictorPtr predictor = bpsim::makePredictor(config);
    for (auto _ : state) {
        predictor->reset();
        auto reader = trace.reader();
        const bpsim::SimResult result = simulate(*predictor, reader);
        benchmark::DoNotOptimize(result.mispredictions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        sharedConditionals());
}

void BM_Bimodal(benchmark::State &state) { runPredictor(state, "bimodal:n=12"); }
void BM_Gshare(benchmark::State &state) { runPredictor(state, "gshare:n=12"); }
void BM_GshareMultiPht(benchmark::State &state) { runPredictor(state, "gshare:n=12,h=8"); }
void BM_BiMode(benchmark::State &state) { runPredictor(state, "bimode:d=11"); }
void BM_Agree(benchmark::State &state) { runPredictor(state, "agree:n=12"); }
void BM_Gskew(benchmark::State &state) { runPredictor(state, "gskew:n=11"); }
void BM_Yags(benchmark::State &state) { runPredictor(state, "yags:c=12,n=10"); }
void BM_Tournament(benchmark::State &state) { runPredictor(state, "tournament:n=11"); }
void BM_GAs(benchmark::State &state) { runPredictor(state, "gas:h=8,a=4"); }
void BM_PAs(benchmark::State &state) { runPredictor(state, "pas:h=6,l=10,a=6"); }

BENCHMARK(BM_Bimodal);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_GshareMultiPht);
BENCHMARK(BM_BiMode);
BENCHMARK(BM_Agree);
BENCHMARK(BM_Gskew);
BENCHMARK(BM_Yags);
BENCHMARK(BM_Tournament);
BENCHMARK(BM_GAs);
BENCHMARK(BM_PAs);

/** Trace generation throughput. */
void
BM_TraceGeneration(benchmark::State &state)
{
    auto spec = bpsim::findBenchmark("gcc");
    spec->dynamicBranches = 100'000;
    for (auto _ : state) {
        const bpsim::MemoryTrace trace =
            bpsim::generateWorkloadTrace(*spec);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100'000);
}

BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
