/**
 * @file
 * Reproduces Figure 8 of the paper: misprediction contributed by the
 * bias classes on go.
 *
 * Expected shape: unlike gcc, the WB class dominates every scheme
 * and size — go is intrinsically hard, destructive aliasing is not
 * its bottleneck, and bi-mode consequently has little room to win
 * (Section 4.4). More history shrinks the WB share.
 */

#include "common/bench_common.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    ArgParser args("fig8_breakdown_go",
                   "Reproduce Figure 8: misprediction by bias class "
                   "on go.");
    addCommonOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    runBreakdownFigure(args, "go", divisor, "Figure 8");
    return 0;
}
