/**
 * @file
 * Head-to-head throughput of the two replay paths: the virtual
 * simulate() loop versus the devirtualized batched kernel behind
 * simulateAny() (sim/replay_kernel.hh). Not a paper figure — this
 * measures the simulator itself, and records the speedup that makes
 * the paper's sweeps affordable.
 *
 * Every kernel-eligible predictor kind is timed on both paths over
 * the same gcc-like trace; the per-kind best-of-N timings land in a
 * JSON report (default BENCH_replay.json) together with the measured
 * speedup. The binary also re-checks the bit-identity contract on
 * every pair and exits non-zero on any mismatch, so a stale baseline
 * can never hide a divergence.
 */

#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "common/bench_common.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

/** Runs @p body @p reps times and keeps the fastest result — the
 *  usual best-of-N protocol for wall-clock microbenchmarks. */
SimResult
bestOf(unsigned reps, const std::function<SimResult()> &body)
{
    SimResult best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        SimResult result = body();
        if (rep == 0 || result.wallNanos < best.wallNanos)
            best = result;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("perf_replay",
                   "Virtual-loop vs devirtualized-kernel replay "
                   "throughput for every kernel-eligible predictor.");
    addCommonOptions(args);
    args.addOption("branches", "2000000",
                   "dynamic branch count of the timing trace");
    args.addOption("reps", "3", "timed repetitions per path (best-of)");
    args.addOption("out", "BENCH_replay.json",
                   "path of the JSON throughput report");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    const unsigned reps =
        static_cast<unsigned>(std::max<std::uint64_t>(
            args.getUint("reps"), 1));

    auto spec = findBenchmark("gcc");
    spec->dynamicBranches =
        std::max<std::uint64_t>(args.getUint("branches") / divisor,
                                50'000);
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);
    const PackedTrace &packed = cache.packedFor(*spec);
    BPSIM_INFORM("timing trace: " << trace.size() << " records, "
                 << packed.size() << " conditionals");

    // One representative configuration per kernel-eligible kind,
    // matching perf_predictors' sizes.
    const std::vector<std::string> configs = {
        "bimodal:n=12",  "gshare:n=12",      "bimode:d=11",
        "agree:n=12",    "gskew:n=11",       "yags:c=12,n=10",
        "tournament:n=11"};

    TextTable table;
    table.setColumns({"config", "predictor", "virtual Mbr/s",
                      "kernel Mbr/s", "speedup"});

    std::ostringstream json;
    json << "[";
    bool mismatch = false;
    bool first = true;
    for (const std::string &config : configs) {
        const PredictorPtr predictor = makePredictor(config);

        const SimResult virtual_best = bestOf(reps, [&] {
            predictor->reset();
            auto reader = trace.reader();
            return simulate(*predictor, reader);
        });
        // simulateAny() dispatches every one of these configs to the
        // kernel (all kinds here satisfy hasFastReplay()).
        const SimResult kernel_best = bestOf(reps, [&] {
            predictor->reset();
            auto reader = trace.reader();
            return simulateAny(*predictor, reader, &packed);
        });

        const bool identical =
            virtual_best.branches == kernel_best.branches &&
            virtual_best.mispredictions == kernel_best.mispredictions &&
            virtual_best.takenBranches == kernel_best.takenBranches;
        if (!identical) {
            mismatch = true;
            BPSIM_WARN("replay paths DIVERGED for " << config);
        }

        const double speedup =
            virtual_best.wallNanos == 0 || kernel_best.wallNanos == 0
                ? 0.0
                : static_cast<double>(virtual_best.wallNanos) /
                      static_cast<double>(kernel_best.wallNanos);

        table.addRow({config, virtual_best.predictorName,
                      TextTable::fixed(
                          virtual_best.branchesPerSec() / 1e6, 2),
                      TextTable::fixed(
                          kernel_best.branchesPerSec() / 1e6, 2),
                      TextTable::fixed(speedup, 2)});

        if (!first)
            json << ",";
        first = false;
        json << "\n  {\"config\":" << jsonString(config)
             << ",\"predictor\":"
             << jsonString(virtual_best.predictorName)
             << ",\"branches\":" << virtual_best.branches
             << ",\"mispredictions\":" << virtual_best.mispredictions
             << ",\"virtualNanos\":" << virtual_best.wallNanos
             << ",\"kernelNanos\":" << kernel_best.wallNanos
             << ",\"virtualBranchesPerSec\":"
             << jsonNumber(virtual_best.branchesPerSec())
             << ",\"kernelBranchesPerSec\":"
             << jsonNumber(kernel_best.branchesPerSec())
             << ",\"speedup\":" << jsonNumber(speedup)
             << ",\"identical\":" << (identical ? "true" : "false")
             << "}";
    }
    json << "\n]\n";

    emitTable(args, table, "Replay-path throughput (best of " +
                               std::to_string(reps) + ")");

    const std::string out = args.get("out");
    std::ofstream file(out);
    if (!file) {
        std::cerr << "cannot write " << out << "\n";
        return 1;
    }
    file << json.str();
    std::cout << "\nwrote " << out << "\n";

    return mismatch ? 1 : 0;
}
