/**
 * @file
 * Head-to-head throughput of the two replay paths: the virtual
 * simulate() loop versus the devirtualized batched kernel behind
 * simulateAny() (sim/replay_kernel.hh). Not a paper figure — this
 * measures the simulator itself, and records the speedup that makes
 * the paper's sweeps affordable.
 *
 * Every kernel-eligible predictor kind is timed on both paths over
 * the same gcc-like trace; the per-kind best-of-N timings land in a
 * JSON report (default BENCH_replay.json) together with the measured
 * speedup. The binary also re-checks the bit-identity contract on
 * every pair and exits non-zero on any mismatch, so a stale baseline
 * can never hide a divergence.
 *
 * A second section times the banked fused kernel
 * (replayKernelBank()) per kernel tier: a 16-lane mixed-size bank of
 * each vector-eligible kind runs once per tier this binary/CPU
 * offers (sim/simd/kernel_tier.hh), reporting lane-throughput
 * (branches x lanes / pass time) with the scalar bank as baseline.
 * Counts must be bit-identical across tiers, enforced the same way.
 *
 * --baseline FILE turns the run into a regression guard: every
 * kernel throughput measured here (all of them on the unprobed
 * NullProbe path, sim/probe.hh) is compared against the same entry
 * of a previous report, and any rate more than --tolerance percent
 * below its baseline fails the run. This is the gate that keeps the
 * probe template parameter compiled out of unprobed kernels.
 */

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/bench_common.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

/** Runs @p body @p reps times and keeps the fastest result — the
 *  usual best-of-N protocol for wall-clock microbenchmarks. */
SimResult
bestOf(unsigned reps, const std::function<SimResult()> &body)
{
    SimResult best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        SimResult result = body();
        if (rep == 0 || result.wallNanos < best.wallNanos)
            best = result;
    }
    return best;
}

/** One banked-throughput scenario: a bank of kMixedBankLanes lanes
 *  cycling through a few realistic sizes of one kind (identical
 *  lanes would share gather indices and flatter the vector path). */
struct BankScenario
{
    std::string kind;
    std::vector<std::string> variants;
};

constexpr std::size_t kMixedBankLanes = 16;

const std::vector<BankScenario> kBankScenarios = {
    {"bimodal",
     {"bimodal:n=10", "bimodal:n=11", "bimodal:n=12", "bimodal:n=13"}},
    {"gshare",
     {"gshare:n=10,h=10", "gshare:n=11,h=8", "gshare:n=12,h=12",
      "gshare:n=13,h=9"}},
    {"gag", {"gag:h=10", "gag:h=11", "gag:h=12", "gag:h=13"}},
    {"gas", {"gas:h=8,a=3", "gas:h=9,a=3", "gas:h=10,a=2"}},
    {"pag", {"pag:h=8,l=10", "pag:h=10,l=10", "pag:h=12,l=8"}},
    {"pas", {"pas:h=6,l=10,a=4", "pas:h=8,l=10,a=3", "pas:h=8,l=8,a=4"}},
    // Two-gather kinds (choice arena + direction bank, simd_bank.hh):
    // the paper's own predictor and agree, at the Figure 2/3 sweep
    // sizes the campaigns actually fuse.
    {"bimode", {"bimode:d=10", "bimode:d=11", "bimode:d=12",
                "bimode:d=13"}},
    {"agree", {"agree:n=10,h=10,b=10", "agree:n=11,h=8,b=11",
               "agree:n=12,h=12,b=12"}},
    // Multi-read kinds (simd_kernel.hh): tournament's meta-selected
    // component pair, gskew's three skew-hashed gathers plus majority
    // vote, yags' tagged exception-cache probe, and filter's
    // run-length PHT bypass — the heaviest per-branch kernels, where
    // the lane axis pays the most.
    {"tournament", {"tournament:n=10", "tournament:n=11",
                    "tournament:n=12"}},
    {"gskew", {"gskew:n=10,h=10", "gskew:n=11,h=8",
               "gskew:n=12,h=12"}},
    {"yags",
     {"yags:c=10,n=8", "yags:c=11,n=9", "yags:c=12,n=10"}},
    {"filter", {"filter:n=10,h=8,b=10,k=3", "filter:n=12,h=12,b=12,k=4",
                "filter:n=11,h=9,b=11,k=6"}},
};

/** Best-of-N banked pass of @p scenario on @p tier; returns the
 *  per-lane results of the fastest pass (lane 0's branchesPerSec()
 *  is the bank's lane-throughput, see SimResult::wallNanos). */
std::vector<SimResult>
bestBankRun(const BankScenario &scenario, const PackedTrace &packed,
            KernelTier tier, unsigned reps)
{
    std::vector<SimResult> best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        std::vector<PredictorPtr> owned;
        std::vector<BranchPredictor *> bank;
        for (std::size_t l = 0; l < kMixedBankLanes; ++l) {
            owned.push_back(makePredictor(
                scenario.variants[l % scenario.variants.size()]));
            bank.push_back(owned.back().get());
        }
        SimConfig config;
        config.kernelTier = tier;
        std::vector<SimResult> results;
        if (!replayKernelBankAny(scenario.kind, bank, packed, config,
                                 results)) {
            BPSIM_FATAL("bank kernel refused kind '" << scenario.kind
                        << "'");
        }
        if (best.empty() || results[0].wallNanos < best[0].wallNanos)
            best = std::move(results);
    }
    return best;
}

/** One measured kernel rate, keyed for baseline comparison: solo
 *  rows use the config text, bank rows "kind@tier". */
struct MeasuredRate
{
    std::string key;
    double branchesPerSec = 0.0;
};

/** Extracts the comparable rates of a previous report: solo entries'
 *  kernelBranchesPerSec under their config, bank entries' per-tier
 *  laneBranchesPerSec under "kind@requestedTier". */
std::unordered_map<std::string, double>
baselineRates(const JsonValue &doc)
{
    std::unordered_map<std::string, double> rates;
    for (const JsonValue &entry : doc.elements()) {
        if (!entry.isObject())
            continue;
        const std::string config = entry.getString("config");
        if (!config.empty()) {
            rates[config] = entry.getNumber("kernelBranchesPerSec");
            continue;
        }
        const std::string bank = entry.getString("bank");
        const JsonValue *tiers = entry.get("tiers");
        if (bank.empty() || tiers == nullptr || !tiers->isArray())
            continue;
        for (const JsonValue &tier : tiers->elements()) {
            rates[bank + "@" + tier.getString("requestedTier")] =
                tier.getNumber("laneBranchesPerSec");
        }
    }
    return rates;
}

/**
 * Compares @p measured against the report at @p path and prints one
 * row per comparable entry. Returns false when any rate fell more
 * than @p tolerancePct percent below its baseline.
 */
bool
guardThroughput(const ArgParser &args, const std::string &path,
                double tolerancePct,
                const std::vector<MeasuredRate> &measured)
{
    std::ifstream file(path);
    if (!file) {
        std::cerr << "cannot read baseline " << path << "\n";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();
    std::string error;
    const std::optional<JsonValue> doc =
        JsonValue::parse(text.str(), error);
    if (!doc || !doc->isArray()) {
        std::cerr << "baseline " << path << " is not a report array"
                  << (error.empty() ? "" : ": " + error) << "\n";
        return false;
    }
    const std::unordered_map<std::string, double> baseline =
        baselineRates(*doc);

    TextTable table;
    table.setColumns({"kernel", "baseline Mbr/s", "now Mbr/s",
                      "delta (%)", "verdict"});
    bool pass = true;
    std::size_t compared = 0;
    for (const MeasuredRate &rate : measured) {
        const auto it = baseline.find(rate.key);
        if (it == baseline.end() || it->second <= 0.0)
            continue; // new kernel or unusable entry: nothing to guard
        ++compared;
        const double delta =
            100.0 * (rate.branchesPerSec / it->second - 1.0);
        const bool ok = delta >= -tolerancePct;
        pass = pass && ok;
        table.addRow({rate.key,
                      TextTable::fixed(it->second / 1e6, 2),
                      TextTable::fixed(rate.branchesPerSec / 1e6, 2),
                      TextTable::fixed(delta, 2),
                      ok ? "ok" : "REGRESSED"});
    }
    emitTable(args, table,
              "Throughput vs " + path + " (tolerance " +
                  TextTable::fixed(tolerancePct, 1) + "%)");
    if (compared == 0) {
        std::cerr << "baseline " << path
                  << " shares no kernels with this run\n";
        return false;
    }
    return pass;
}

/** Counts-only equality across every lane of two bank runs. */
bool
bankCountsMatch(const std::vector<SimResult> &a,
                const std::vector<SimResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t l = 0; l < a.size(); ++l) {
        if (a[l].branches != b[l].branches ||
            a[l].mispredictions != b[l].mispredictions ||
            a[l].takenBranches != b[l].takenBranches) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("perf_replay",
                   "Virtual-loop vs devirtualized-kernel replay "
                   "throughput for every kernel-eligible predictor.");
    addCommonOptions(args);
    args.addOption("branches", "2000000",
                   "dynamic branch count of the timing trace");
    args.addOption("reps", "3", "timed repetitions per path (best-of)");
    args.addOption("out", "BENCH_replay.json",
                   "path of the JSON throughput report");
    args.addOption("baseline", "",
                   "previous report to guard kernel throughput "
                   "against (empty = no guard)");
    args.addOption("tolerance", "2",
                   "max throughput regression vs --baseline, in "
                   "percent");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    const unsigned reps =
        static_cast<unsigned>(std::max<std::uint64_t>(
            args.getUint("reps"), 1));

    auto spec = findBenchmark("gcc");
    spec->dynamicBranches =
        std::max<std::uint64_t>(args.getUint("branches") / divisor,
                                50'000);
    TraceCache cache(traceStoreDir(args));
    const MemoryTrace &trace = cache.traceFor(*spec);
    const PackedTrace &packed = cache.packedFor(*spec);
    BPSIM_INFORM("timing trace: " << trace.size() << " records, "
                 << packed.size() << " conditionals");

    // One representative configuration per kernel-eligible kind,
    // matching perf_predictors' sizes.
    const std::vector<std::string> configs = {
        "bimodal:n=12",  "gshare:n=12",      "bimode:d=11",
        "agree:n=12",    "gskew:n=11",       "yags:c=12,n=10",
        "tournament:n=11", "gag:h=12",       "gas:h=9,a=3",
        "pag:h=10,l=10", "pas:h=8,l=10,a=3",
        "filter:n=12,h=8,b=10,k=3"};

    TextTable table;
    table.setColumns({"config", "predictor", "virtual Mbr/s",
                      "kernel Mbr/s", "speedup"});

    std::ostringstream json;
    json << "[";
    std::vector<MeasuredRate> measured;
    bool mismatch = false;
    bool first = true;
    for (const std::string &config : configs) {
        const PredictorPtr predictor = makePredictor(config);

        const SimResult virtual_best = bestOf(reps, [&] {
            predictor->reset();
            auto reader = trace.reader();
            return simulate(*predictor, reader);
        });
        // simulateAny() dispatches every one of these configs to the
        // kernel (all kinds here satisfy hasFastReplay()).
        const SimResult kernel_best = bestOf(reps, [&] {
            predictor->reset();
            auto reader = trace.reader();
            return simulateAny(*predictor, reader, &packed);
        });

        const bool identical =
            virtual_best.branches == kernel_best.branches &&
            virtual_best.mispredictions == kernel_best.mispredictions &&
            virtual_best.takenBranches == kernel_best.takenBranches;
        if (!identical) {
            mismatch = true;
            BPSIM_WARN("replay paths DIVERGED for " << config);
        }

        const double speedup =
            virtual_best.wallNanos == 0 || kernel_best.wallNanos == 0
                ? 0.0
                : static_cast<double>(virtual_best.wallNanos) /
                      static_cast<double>(kernel_best.wallNanos);

        measured.push_back({config, kernel_best.branchesPerSec()});
        table.addRow({config, virtual_best.predictorName,
                      TextTable::fixed(
                          virtual_best.branchesPerSec() / 1e6, 2),
                      TextTable::fixed(
                          kernel_best.branchesPerSec() / 1e6, 2),
                      TextTable::fixed(speedup, 2)});

        if (!first)
            json << ",";
        first = false;
        json << "\n  {\"config\":" << jsonString(config)
             << ",\"predictor\":"
             << jsonString(virtual_best.predictorName)
             << ",\"branches\":" << virtual_best.branches
             << ",\"mispredictions\":" << virtual_best.mispredictions
             << ",\"virtualNanos\":" << virtual_best.wallNanos
             << ",\"kernelNanos\":" << kernel_best.wallNanos
             << ",\"virtualBranchesPerSec\":"
             << jsonNumber(virtual_best.branchesPerSec())
             << ",\"kernelBranchesPerSec\":"
             << jsonNumber(kernel_best.branchesPerSec())
             << ",\"speedup\":" << jsonNumber(speedup)
             << ",\"identical\":" << (identical ? "true" : "false")
             << "}";
    }
    emitTable(args, table, "Replay-path throughput (best of " +
                               std::to_string(reps) + ")");

    // Banked fused kernel, one row per kind, one column per kernel
    // tier. Tiers are best-first; the trailing Scalar entry is the
    // baseline every speedup is against.
    const std::vector<KernelTier> tiers = availableKernelTiers();
    TextTable bankTable;
    {
        std::vector<std::string> columns = {"bank kind", "lanes"};
        for (const KernelTier tier : tiers)
            columns.push_back(std::string(kernelTierName(tier)) +
                              " Mbr/s");
        columns.push_back("best speedup");
        bankTable.setColumns(columns);
    }

    for (const BankScenario &scenario : kBankScenarios) {
        std::vector<SimResult> scalarRun = bestBankRun(
            scenario, packed, KernelTier::Scalar, reps);
        const double scalarRate = scalarRun[0].branchesPerSec();

        std::vector<std::string> row = {
            scenario.kind, std::to_string(kMixedBankLanes)};
        json << ",\n  {\"bank\":" << jsonString(scenario.kind)
             << ",\"lanes\":" << kMixedBankLanes << ",\"tiers\":[";
        double bestSpeedup = 1.0;
        bool bankIdentical = true;
        bool firstTier = true;
        for (const KernelTier tier : tiers) {
            std::vector<SimResult> run =
                tier == KernelTier::Scalar
                    ? std::move(scalarRun)
                    : bestBankRun(scenario, packed, tier, reps);
            if (tier != KernelTier::Scalar &&
                !bankCountsMatch(run, scalarRun)) {
                bankIdentical = false;
                mismatch = true;
                BPSIM_WARN("bank tiers DIVERGED for "
                           << scenario.kind << " on "
                           << kernelTierName(tier));
            }
            const double rate = run[0].branchesPerSec();
            measured.push_back(
                {scenario.kind + "@" + kernelTierName(tier), rate});
            const double speedup =
                scalarRate == 0.0 ? 0.0 : rate / scalarRate;
            bestSpeedup = std::max(bestSpeedup, speedup);
            row.push_back(TextTable::fixed(rate / 1e6, 2));
            if (!firstTier)
                json << ",";
            firstTier = false;
            json << "{\"tier\":"
                 << jsonString(kernelTierName(run[0].kernelTier))
                 << ",\"requestedTier\":"
                 << jsonString(kernelTierName(tier))
                 << ",\"laneBranchesPerSec\":" << jsonNumber(rate)
                 << ",\"speedupVsScalar\":" << jsonNumber(speedup)
                 << "}";
            if (tier == KernelTier::Scalar)
                scalarRun = std::move(run);
        }
        row.push_back(TextTable::fixed(bestSpeedup, 2));
        bankTable.addRow(row);
        json << "],\"identical\":"
             << (bankIdentical ? "true" : "false") << "}";
    }
    json << "\n]\n";

    emitTable(args, bankTable,
              "Banked kernel lane-throughput per tier (best of " +
                  std::to_string(reps) + ", " +
                  std::to_string(kMixedBankLanes) + " lanes)");

    const std::string out = args.get("out");
    std::ofstream file(out);
    if (!file) {
        std::cerr << "cannot write " << out << "\n";
        return 1;
    }
    file << json.str();
    std::cout << "\nwrote " << out << "\n";

    bool regressed = false;
    if (!args.get("baseline").empty()) {
        regressed = !guardThroughput(args, args.get("baseline"),
                                     args.getDouble("tolerance"),
                                     measured);
    }

    return (mismatch || regressed) ? 1 : 0;
}
