/**
 * @file
 * Head-to-head wall time of a multi-configuration campaign on the
 * fused banked-replay path versus the classic per-job kernel path.
 * Not a paper figure — this measures the campaign engine itself, and
 * records the single-pass speedup that makes full figure sweeps
 * affordable.
 *
 * Representative campaign shapes run on one worker, so the numbers
 * isolate fusion (one trace pass for the whole group) from
 * thread-level parallelism:
 *
 *   ladder         the fig2 shape: one gshare rung per table size,
 *                  n = 10..17, over one gcc-like trace
 *   sweep          the gshare.best shape (paper §3.1): every history
 *                  length at one table size, n = 12, h = 0..12
 *   bimode-ladder  the fig3 shape: one bi-mode rung per
 *                  direction-bank size, d = 10..15, on the
 *                  two-gather vector path
 *   scheme-comparison  the §3 cross-scheme shape: two sizes of every
 *                  de-aliasing scheme (bimode, agree, gskew, yags,
 *                  filter, tournament) in one grid, so every
 *                  multi-read kernel fuses and runs in one campaign
 *
 * Each shape is timed best-of-N with fusion off and then with fusion
 * on once per available kernel tier (sim/simd/kernel_tier.hh), so
 * the report separates the fusion win (one trace pass) from the
 * vectorization win (SIMD lanes within the fused pass). The JSON
 * report (default BENCH_multiconfig.json) records one row per
 * scenario × tier. The binary re-checks that every fused run emits
 * campaign JSON byte-identical to the per-job path and exits
 * non-zero on any divergence, so a stale baseline can never hide a
 * fusion or tier bug. A forced --kernel-tier restricts the fused
 * runs to that tier alone.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/bench_common.hh"
#include "sim/simd/kernel_tier.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

struct Scenario
{
    std::string name;
    std::vector<std::string> configs;
};

struct Timed
{
    std::uint64_t nanos = 0;
    std::vector<JobResult> results;
};

/** Times one single-worker campaign run, best of @p reps. */
Timed
timeCampaign(const std::vector<std::string> &configs,
             const std::vector<BenchmarkTrace> &benchmarks, bool fuse,
             unsigned reps)
{
    Timed best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        Campaign campaign;
        campaign.addGrid(configs, benchmarks);
        campaign.setFusion(fuse);
        const auto start = std::chrono::steady_clock::now();
        std::vector<JobResult> results = campaign.run(1);
        const auto stop = std::chrono::steady_clock::now();
        const std::uint64_t nanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start)
                .count());
        if (rep == 0 || nanos < best.nanos) {
            best.nanos = nanos;
            best.results = std::move(results);
        }
    }
    return best;
}

std::string
resultsJson(const std::vector<JobResult> &results)
{
    std::ostringstream out;
    writeResultsJson(out, results);
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("perf_multiconfig",
                   "Fused banked-replay campaign vs per-job kernel "
                   "campaign wall time.");
    addCommonOptions(args);
    // Larger default than perf_replay: the trace must outgrow the
    // last-level cache for the per-job baseline to pay the per-pass
    // streaming cost it pays on real figure-sized traces.
    args.addOption("branches", "8000000",
                   "dynamic branch count of the timing trace");
    args.addOption("reps", "5", "timed repetitions per path (best-of)");
    args.addOption("out", "BENCH_multiconfig.json",
                   "path of the JSON report");
    if (!args.parse(argc, argv))
        return 0;
    const std::uint64_t divisor = applyCommonOptions(args);
    const unsigned reps = static_cast<unsigned>(
        std::max<std::uint64_t>(args.getUint("reps"), 1));

    // Fused runs are timed once per tier; a forced --kernel-tier
    // narrows the sweep to that tier alone (the override is already
    // process-wide via applyCommonOptions).
    std::vector<KernelTier> tiers;
    KernelTier forced = KernelTier::Auto;
    parseKernelTier(args.get("kernel-tier"), forced);
    if (forced != KernelTier::Auto)
        tiers.push_back(resolveKernelTier(forced));
    else
        tiers = availableKernelTiers();

    auto spec = findBenchmark("gcc");
    spec->dynamicBranches = std::max<std::uint64_t>(
        args.getUint("branches") / divisor, 50'000);
    TraceCache cache(traceStoreDir(args));
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {*spec});
    BPSIM_INFORM("timing trace: " << benchmarks[0].packed->size()
                 << " conditionals");

    std::vector<Scenario> scenarios;
    {
        Scenario ladder;
        ladder.name = "ladder";
        for (unsigned n = 10; n <= 17; ++n)
            ladder.configs.push_back("gshare:n=" + std::to_string(n));
        scenarios.push_back(std::move(ladder));

        Scenario sweep;
        sweep.name = "sweep";
        for (unsigned h = 0; h <= 12; ++h)
            sweep.configs.push_back("gshare:n=12,h=" +
                                    std::to_string(h));
        scenarios.push_back(std::move(sweep));

        // The fig3 shape: one bi-mode rung per direction-bank size —
        // the paper's own predictor on the two-gather vector path.
        Scenario bimode;
        bimode.name = "bimode-ladder";
        for (unsigned d = 10; d <= 15; ++d)
            bimode.configs.push_back("bimode:d=" + std::to_string(d));
        scenarios.push_back(std::move(bimode));

        // The §3 cross-scheme shape: two sizes of every de-aliasing
        // scheme in one grid. The campaign fuses each kind into its
        // own bank, so one scenario covers every multi-read vector
        // kernel (two-gather and three-gather alike) back to back.
        Scenario schemes;
        schemes.name = "scheme-comparison";
        schemes.configs = {
            "bimode:d=11",            "bimode:d=12",
            "agree:n=11,h=11,b=11",   "agree:n=12,h=12,b=12",
            "gskew:n=10,h=10",        "gskew:n=11,h=11",
            "yags:c=11,n=9",          "yags:c=12,n=10",
            "filter:n=11,h=9,b=11,k=3", "filter:n=12,h=10,b=12,k=3",
            "tournament:n=11",        "tournament:n=12",
        };
        scenarios.push_back(std::move(schemes));
    }

    TextTable table;
    table.setColumns({"scenario", "tier", "jobs", "per-job ms",
                      "fused ms", "speedup"});

    std::ostringstream json;
    json << "[";
    bool mismatch = false;
    bool first = true;
    for (const Scenario &scenario : scenarios) {
        setKernelTierOverride(KernelTier::Scalar);
        const Timed unfused =
            timeCampaign(scenario.configs, benchmarks, false, reps);
        const std::string unfused_json = resultsJson(unfused.results);

        for (const KernelTier tier : tiers) {
            setKernelTierOverride(tier);
            const Timed fused =
                timeCampaign(scenario.configs, benchmarks, true, reps);

            const bool identical =
                resultsJson(fused.results) == unfused_json;
            if (!identical) {
                mismatch = true;
                BPSIM_WARN("campaign paths DIVERGED for scenario "
                           << scenario.name << " tier "
                           << kernelTierName(tier));
            }

            const double speedup =
                fused.nanos == 0
                    ? 0.0
                    : static_cast<double>(unfused.nanos) /
                          static_cast<double>(fused.nanos);

            table.addRow({scenario.name, kernelTierName(tier),
                          std::to_string(scenario.configs.size()),
                          TextTable::fixed(unfused.nanos / 1e6, 2),
                          TextTable::fixed(fused.nanos / 1e6, 2),
                          TextTable::fixed(speedup, 2)});

            if (!first)
                json << ",";
            first = false;
            json << "\n  {\"scenario\":" << jsonString(scenario.name)
                 << ",\"tier\":"
                 << jsonString(kernelTierName(tier))
                 << ",\"jobs\":" << scenario.configs.size()
                 << ",\"branchesPerJob\":"
                 << benchmarks[0].packed->size()
                 << ",\"perJobNanos\":" << unfused.nanos
                 << ",\"fusedNanos\":" << fused.nanos
                 << ",\"speedup\":" << jsonNumber(speedup)
                 << ",\"identical\":" << (identical ? "true" : "false")
                 << "}";
        }
    }
    json << "\n]\n";
    // Leave the process-wide selection as the user asked for it.
    setKernelTierOverride(forced);

    emitTable(args, table, "Fused vs per-job campaign wall time "
                           "(best of " + std::to_string(reps) + ")");

    const std::string out = args.get("out");
    std::ofstream file(out);
    if (!file) {
        std::cerr << "cannot write " << out << "\n";
        return 1;
    }
    file << json.str();
    std::cout << "\nwrote " << out << "\n";

    return mismatch ? 1 : 0;
}
