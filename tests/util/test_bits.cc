/** @file Unit and property tests for util/bits.hh. */

#include <gtest/gtest.h>

#include "util/bits.hh"

namespace bpsim
{
namespace
{

TEST(Bits, MaskBitsSmall)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 0x1u);
    EXPECT_EQ(maskBits(2), 0x3u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(16), 0xffffu);
}

TEST(Bits, MaskBitsFullWidth)
{
    EXPECT_EQ(maskBits(63), ~std::uint64_t{0} >> 1);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
    // Widths beyond 64 saturate rather than shifting UB-wide.
    EXPECT_EQ(maskBits(65), ~std::uint64_t{0});
}

TEST(Bits, MaskBitsIsMonotone)
{
    for (unsigned n = 1; n <= 64; ++n)
        EXPECT_GT(maskBits(n), maskBits(n - 1)) << "n=" << n;
}

TEST(Bits, BitFieldExtracts)
{
    const std::uint64_t value = 0xdead'beef'1234'5678ULL;
    EXPECT_EQ(bitField(value, 0, 4), 0x8u);
    EXPECT_EQ(bitField(value, 4, 4), 0x7u);
    EXPECT_EQ(bitField(value, 0, 16), 0x5678u);
    EXPECT_EQ(bitField(value, 32, 16), 0xbeefu);
    EXPECT_EQ(bitField(value, 48, 16), 0xdeadu);
}

TEST(Bits, BitFieldZeroWidth)
{
    EXPECT_EQ(bitField(0xffffffffULL, 5, 0), 0u);
}

TEST(Bits, BitFieldComposition)
{
    // Recomposing adjacent fields yields the original low bits.
    const std::uint64_t value = 0x0123'4567'89ab'cdefULL;
    for (unsigned split = 1; split < 32; ++split) {
        const std::uint64_t low = bitField(value, 0, split);
        const std::uint64_t high = bitField(value, split, 32 - split);
        EXPECT_EQ((high << split) | low, bitField(value, 0, 32))
            << "split=" << split;
    }
}

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo((std::uint64_t{1} << 63) + 1));
}

TEST(Bits, PowersOfTwoSweep)
{
    for (unsigned n = 0; n < 64; ++n) {
        const std::uint64_t p = std::uint64_t{1} << n;
        EXPECT_TRUE(isPowerOfTwo(p)) << "n=" << n;
        if (p > 2) {
            EXPECT_FALSE(isPowerOfTwo(p - 1)) << "n=" << n;
        }
    }
}

TEST(Bits, Log2Exact)
{
    for (unsigned n = 0; n < 64; ++n)
        EXPECT_EQ(log2Exact(std::uint64_t{1} << n), n);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bits, FoldXorIdentityWhenNarrow)
{
    // Values already inside the field are unchanged.
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(foldXor(v, 6), v);
}

TEST(Bits, FoldXorCombinesChunks)
{
    EXPECT_EQ(foldXor(0xabcd, 8), 0xabu ^ 0xcdu);
    EXPECT_EQ(foldXor(0x0f0f0f, 8), 0x0fu ^ 0x0fu ^ 0x0fu);
}

TEST(Bits, FoldXorZeroWidth)
{
    EXPECT_EQ(foldXor(0x1234, 0), 0u);
}

TEST(Bits, FoldXorStaysInRange)
{
    for (std::uint64_t v = 0; v < 10'000; ++v) {
        const std::uint64_t folded = foldXor(v * 0x9e3779b9ULL, 10);
        EXPECT_LE(folded, maskBits(10));
    }
}

TEST(Bits, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(0x1, 8), 0x80u);
}

TEST(Bits, ReverseBitsInvolution)
{
    for (std::uint64_t v = 0; v < 4096; ++v)
        EXPECT_EQ(reverseBits(reverseBits(v, 12), 12), v);
}

} // namespace
} // namespace bpsim
