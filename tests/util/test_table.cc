/** @file Tests for the text table / CSV formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace bpsim
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setColumns({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "23"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name   | value"), std::string::npos) << out;
    EXPECT_NE(out.find("a      |     1"), std::string::npos) << out;
    EXPECT_NE(out.find("longer |    23"), std::string::npos) << out;
}

TEST(TextTable, RowCountExcludesRules)
{
    TextTable t;
    t.setColumns({"x"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setColumns({"bench", "misp"});
    t.addRow({"gcc", "9.72"});
    t.addRule();
    t.addRow({"go", "18.10"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "bench,misp\ngcc,9.72\ngo,18.10\n");
}

TEST(TextTable, CustomAlignment)
{
    TextTable t;
    t.setColumns({"l", "r"});
    t.setAlignment({Align::Right, Align::Left});
    t.addRow({"a", "b"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("a | b"), std::string::npos);
}

TEST(TextTable, FixedFormatting)
{
    EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fixed(3.0, 0), "3");
    EXPECT_EQ(TextTable::fixed(-1.005, 1), "-1.0");
    EXPECT_EQ(TextTable::fixed(0.125, 3), "0.125");
}

TEST(TextTable, GroupedFormatting)
{
    EXPECT_EQ(TextTable::grouped(0), "0");
    EXPECT_EQ(TextTable::grouped(999), "999");
    EXPECT_EQ(TextTable::grouped(1000), "1,000");
    EXPECT_EQ(TextTable::grouped(26'520'618), "26,520,618");
    EXPECT_EQ(TextTable::grouped(1'000'000'000ULL), "1,000,000,000");
}

TEST(CsvEscape, PlainFieldUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
    EXPECT_EQ(csvEscape("a b"), "a b");
}

TEST(CsvEscape, QuotesSpecials)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(TextTable, EmptyTablePrintsHeaderOnly)
{
    TextTable t;
    t.setColumns({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 0u);
}

} // namespace
} // namespace bpsim
