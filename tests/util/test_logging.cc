/** @file Tests for the logging / error-reporting helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace bpsim
{
namespace
{

TEST(Logging, VerboseToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(BPSIM_FATAL("bad user input " << 42),
                ::testing::ExitedWithCode(1), "bad user input 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(BPSIM_PANIC("invariant " << "broken"),
                 "invariant broken");
}

TEST(Logging, WarnDoesNotTerminate)
{
    BPSIM_WARN("just a warning");
    SUCCEED();
}

TEST(Logging, InformRespectsVerbosity)
{
    setVerbose(false);
    BPSIM_INFORM("should be suppressed");
    setVerbose(true);
    BPSIM_INFORM("should be printed");
    setVerbose(false);
    SUCCEED();
}

} // namespace
} // namespace bpsim
