/** @file Tests for JSON emission helpers and the JsonValue parser. */

#include <gtest/gtest.h>

#include <string>

#include "util/json.hh"

namespace bpsim
{
namespace
{

JsonValue
parseOk(const std::string &text)
{
    std::string error;
    const auto value = JsonValue::parse(text, error);
    EXPECT_TRUE(value.has_value()) << "'" << text << "': " << error;
    return value.value_or(JsonValue{});
}

std::string
parseError(const std::string &text)
{
    std::string error;
    const auto value = JsonValue::parse(text, error);
    EXPECT_FALSE(value.has_value()) << "'" << text << "' parsed";
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_TRUE(parseOk("  true  ").isBool());
}

TEST(JsonValue, ParsesStringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\\"b\\\\c\\n\\t\"").asString(),
              "a\"b\\c\n\t");
    // \u0041 = 'A'; \u00e9 = e-acute in two UTF-8 bytes.
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(JsonValue, ParsesArraysAndObjects)
{
    const JsonValue array = parseOk("[1, \"two\", [3], {}]");
    ASSERT_TRUE(array.isArray());
    ASSERT_EQ(array.elements().size(), 4u);
    EXPECT_DOUBLE_EQ(array.elements()[0].asNumber(), 1.0);
    EXPECT_EQ(array.elements()[1].asString(), "two");
    EXPECT_TRUE(array.elements()[2].isArray());
    EXPECT_TRUE(array.elements()[3].isObject());

    const JsonValue object =
        parseOk("{\"a\": 1, \"b\": {\"c\": [true]}}");
    ASSERT_TRUE(object.isObject());
    EXPECT_DOUBLE_EQ(object.getNumber("a"), 1.0);
    ASSERT_NE(object.get("b"), nullptr);
    EXPECT_TRUE(object.get("b")->get("c")->elements()[0].asBool());
    EXPECT_EQ(object.get("missing"), nullptr);
}

TEST(JsonValue, ObjectKeysKeepDocumentOrderAndLastDuplicate)
{
    const JsonValue object =
        parseOk("{\"z\": 1, \"a\": 2, \"z\": 3}");
    // Duplicate keys collapse to one entry holding the last value.
    ASSERT_EQ(object.keys().size(), 2u);
    EXPECT_EQ(object.keys()[0], "z");
    EXPECT_EQ(object.keys()[1], "a");
    EXPECT_DOUBLE_EQ(object.getNumber("z"), 3.0);
}

TEST(JsonValue, TypedLookupsFallBackOnMismatch)
{
    const JsonValue object = parseOk(
        "{\"s\":\"x\",\"n\":7,\"b\":true,\"neg\":-2}");
    EXPECT_EQ(object.getString("s"), "x");
    EXPECT_EQ(object.getString("n", "fb"), "fb");
    EXPECT_EQ(object.getUint("n"), 7u);
    EXPECT_EQ(object.getUint("s", 9), 9u);
    EXPECT_EQ(object.getUint("neg", 9), 9u); // negative is not uint
    EXPECT_TRUE(object.getBool("b"));
    EXPECT_TRUE(object.getBool("s", true));
}

TEST(JsonValue, GetUintRejectsOutOfRangeNumbers)
{
    // The number can come straight off the wire; a double outside
    // uint64_t's range must fall back, never hit an undefined cast.
    const JsonValue object = parseOk(
        "{\"huge\":1e300,\"edge\":18446744073709551616,"
        "\"big\":1.8e19}");
    EXPECT_EQ(object.getUint("huge", 9), 9u);
    EXPECT_EQ(object.getUint("edge", 9), 9u); // 2^64 exactly
    EXPECT_EQ(object.getUint("big", 9), 18000000000000000000u);
}

TEST(JsonValue, RejectsMalformedInput)
{
    parseError("");
    parseError("{");
    parseError("[1,");
    parseError("{\"a\" 1}");
    parseError("{\"a\":1,}");
    parseError("[1 2]");
    parseError("\"unterminated");
    parseError("tru");
    parseError("01");
    parseError("1 trailing");
    parseError("{\"a\":1}}");
    parseError("\"bad\\escape\"");
    parseError("\"\\u12\"");
}

TEST(JsonValue, RejectsPathologicalNesting)
{
    // 1000 open brackets: must error out, not blow the stack.
    std::string deep(1000, '[');
    parseError(deep);
    std::string deepClosed = deep + std::string(1000, ']');
    parseError(deepClosed);
}

TEST(JsonValue, RoundTripsEmitterOutput)
{
    // The result payloads the campaign service streams are emitter
    // output; the parser must read them back exactly.
    const std::string payload =
        "{\"ok\":true,\"result\":{\"benchmark\":\"go\","
        "\"mispredictionRate\":21.102196384345014,"
        "\"branches\":202287}}";
    const JsonValue value = parseOk(payload);
    EXPECT_TRUE(value.getBool("ok"));
    const JsonValue *result = value.get("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->getString("benchmark"), "go");
    EXPECT_DOUBLE_EQ(result->getNumber("mispredictionRate"),
                     21.102196384345014);
    EXPECT_EQ(result->getUint("branches"), 202287u);
}

} // namespace
} // namespace bpsim
