/** @file Tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.hh"

namespace bpsim
{
namespace
{

TEST(SplitMix64, IsDeterministic)
{
    SplitMix64 a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, SeedsProduceDistinctStreams)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next64() == b.next64();
    EXPECT_EQ(equal, 0);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                (1ULL << 40) + 17}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound) << "bound=" << bound;
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(77);
    for (int i = 0; i < 10'000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyMatches)
{
    Rng rng(101);
    for (double p : {0.1, 0.5, 0.9}) {
        int hits = 0;
        const int n = 50'000;
        for (int i = 0; i < n; ++i)
            hits += rng.nextBool(p);
        EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02) << "p=" << p;
    }
}

TEST(Rng, BernoulliDegenerate)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
        EXPECT_FALSE(rng.nextBool(-1.0));
        EXPECT_TRUE(rng.nextBool(2.0));
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeSingleton)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextRange(42, 42), 42);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p, 1'000'000));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.nextGeometric(0.001, 10), 10u);
}

TEST(Rng, GeometricDegenerate)
{
    Rng rng(29);
    EXPECT_EQ(rng.nextGeometric(1.0, 100), 0u);
    EXPECT_EQ(rng.nextGeometric(0.0, 100), 100u);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(41);
    const std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40'000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextWeighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedAllZeroFallsBack)
{
    Rng rng(41);
    EXPECT_EQ(rng.nextWeighted({0.0, 0.0}), 0u);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(55);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next64() == child.next64();
    EXPECT_EQ(equal, 0);
}

TEST(Zipf, RankZeroMostLikely)
{
    Rng rng(61);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50'000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, UniformWhenExponentZero)
{
    Rng rng(67);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Zipf, OffsetFlattensHead)
{
    Rng rng1(71), rng2(71);
    ZipfSampler sharp(1000, 1.5, 0.0);
    ZipfSampler flat(1000, 1.5, 20.0);
    int sharp_head = 0, flat_head = 0;
    for (int i = 0; i < 20'000; ++i) {
        sharp_head += sharp.sample(rng1) == 0;
        flat_head += flat.sample(rng2) == 0;
    }
    EXPECT_GT(sharp_head, 2 * flat_head);
}

TEST(Zipf, SingleRank)
{
    Rng rng(73);
    ZipfSampler zipf(1, 1.2);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

/** Property sweep: bounded sampling stays in range for many sizes. */
class ZipfRangeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ZipfRangeTest, SamplesInRange)
{
    const std::size_t n = GetParam();
    Rng rng(83 + n);
    ZipfSampler zipf(n, 1.3, 5.0);
    for (int i = 0; i < 500; ++i)
        EXPECT_LT(zipf.sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipfRangeTest,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 4096));

} // namespace
} // namespace bpsim
