/** @file Tests for the command-line argument parser. */

#include <gtest/gtest.h>

#include "util/args.hh"

namespace bpsim
{
namespace
{

ArgParser
makeParser()
{
    ArgParser parser("prog", "test program");
    parser.addOption("count", "10", "how many");
    parser.addOption("name", "default", "a name");
    parser.addOption("rate", "0.5", "a rate");
    parser.addFlag("verbose", "talk more");
    return parser;
}

TEST(Args, DefaultsApply)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(parser.parse(1, argv));
    EXPECT_EQ(parser.get("count"), "10");
    EXPECT_EQ(parser.getInt("count"), 10);
    EXPECT_EQ(parser.get("name"), "default");
    EXPECT_FALSE(parser.flag("verbose"));
}

TEST(Args, SpaceSeparatedValue)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count", "42"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_EQ(parser.getInt("count"), 42);
}

TEST(Args, EqualsValue)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count=7", "--name=gcc"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_EQ(parser.getInt("count"), 7);
    EXPECT_EQ(parser.get("name"), "gcc");
}

TEST(Args, FlagPresence)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_TRUE(parser.flag("verbose"));
}

TEST(Args, Positionals)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "one", "--count", "3", "two"};
    ASSERT_TRUE(parser.parse(5, argv));
    ASSERT_EQ(parser.positional().size(), 2u);
    EXPECT_EQ(parser.positional()[0], "one");
    EXPECT_EQ(parser.positional()[1], "two");
}

TEST(Args, DoubleParsing)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--rate=0.25"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 0.25);
}

TEST(Args, UintRejectsNegative)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count=-5"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EQ(parser.getInt("count"), -5);
    EXPECT_EXIT(parser.getUint("count"), ::testing::ExitedWithCode(1),
                "non-negative");
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Args, UsageMentionsEverything)
{
    ArgParser parser = makeParser();
    const std::string usage = parser.usage();
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("default: 10"), std::string::npos);
    EXPECT_NE(usage.find("test program"), std::string::npos);
}

TEST(ArgsDeath, UnknownOptionIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(ArgsDeath, MissingValueIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(ArgsDeath, FlagWithValueIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--verbose=yes"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "does not take a value");
}

TEST(ArgsDeath, NonNumericIntIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count=abc"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EXIT(parser.getInt("count"), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ArgsDeath, OverflowingIntIsFatal)
{
    // strtoll clamps 2^64 to LLONG_MAX with errno=ERANGE; silently
    // accepting the clamp would turn a typo into a huge setting.
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count=18446744073709551616"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EXIT(parser.getInt("count"), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgsDeath, UnderflowingIntIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--count=-99999999999999999999"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EXIT(parser.getInt("count"), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgsDeath, OverflowingDoubleIsFatal)
{
    ArgParser parser = makeParser();
    const char *argv[] = {"prog", "--rate=1e999"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EXIT(parser.getDouble("rate"), ::testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace bpsim
